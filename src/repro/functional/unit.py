"""Functional computation unit: polarity planes + analog deviation.

A :class:`FunctionalUnit` holds the positive and negative crossbar
planes of one tile of one bit slice and evaluates the signed partial
matrix-vector product, perturbed according to the selected
:class:`AnalogMode`:

* ``IDEAL`` — exact integers, no perturbation;
* ``MODEL`` — each plane's column outputs scaled by ``1 + delta`` with
  ``delta`` drawn uniformly from the accuracy model's error band
  ``[-eps, +eps]`` (the Eq.-15 band);
* ``SOLVER`` — the deviation measured per column from the real
  resistor network.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.errors import ConfigError, MappingError
from repro.functional.crossbar import FunctionalCrossbar
from repro.tech.memristor import MemristorModel


class AnalogMode(enum.Enum):
    """Fidelity of the analog computation path."""

    IDEAL = "ideal"
    MODEL = "model"
    SOLVER = "solver"


class FunctionalUnit:
    """One tile x one bit slice, with its polarity plane(s).

    Parameters
    ----------
    positive, negative:
        Level matrices of the two polarity planes (``negative`` is
        ``None`` for unsigned mappings), shape (rows, cols).
    device:
        Memristor model shared by the planes.
    """

    def __init__(
        self,
        positive: np.ndarray,
        negative: Optional[np.ndarray],
        device: MemristorModel,
    ) -> None:
        self.positive = FunctionalCrossbar(positive, device)
        self.negative = (
            FunctionalCrossbar(negative, device)
            if negative is not None
            else None
        )
        if self.negative is not None and (
            self.negative.levels.shape != self.positive.levels.shape
        ):
            raise MappingError("polarity planes must share a shape")
        self.device = device

    @property
    def rows(self) -> int:
        """Tile input count."""
        return self.positive.rows

    @property
    def cols(self) -> int:
        """Tile output count."""
        return self.positive.cols

    # ------------------------------------------------------------------
    def _plane_outputs(
        self,
        plane: FunctionalCrossbar,
        input_levels: np.ndarray,
        mode: AnalogMode,
        epsilon: float,
        rng: Optional[np.random.Generator],
        input_full_scale: int,
        segment_resistance: float,
        sense_resistance: float,
    ) -> np.ndarray:
        exact = plane.ideal_mvm(input_levels).astype(float)
        if mode is AnalogMode.IDEAL:
            return exact
        if mode is AnalogMode.MODEL:
            if rng is None:
                raise ConfigError("MODEL mode needs an rng")
            deltas = rng.uniform(-epsilon, epsilon, size=exact.shape)
            return exact * (1.0 + deltas)
        if mode is AnalogMode.SOLVER:
            errors = plane.solver_relative_errors(
                np.asarray(input_levels, dtype=float),
                input_full_scale,
                segment_resistance,
                sense_resistance,
            )
            return exact * (1.0 - errors)
        raise ConfigError(f"unknown analog mode {mode!r}")

    def partial_product(
        self,
        input_levels: np.ndarray,
        mode: AnalogMode = AnalogMode.IDEAL,
        epsilon: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        input_full_scale: int = 127,
        segment_resistance: float = 0.0,
        sense_resistance: float = 1000.0,
    ) -> np.ndarray:
        """Signed partial sums of this tile for one input vector.

        Returns floats (integers in IDEAL mode): ``pos - neg`` plane
        outputs, possibly perturbed by the analog path.
        """
        common = dict(
            mode=mode, epsilon=epsilon, rng=rng,
            input_full_scale=input_full_scale,
            segment_resistance=segment_resistance,
            sense_resistance=sense_resistance,
        )
        result = self._plane_outputs(self.positive, input_levels, **common)
        if self.negative is not None:
            result = result - self._plane_outputs(
                self.negative, input_levels, **common
            )
        return result
