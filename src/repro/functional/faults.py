"""Fault injection: stuck-at cells in the functional simulation.

Fabricated crossbars ship with defective cells — the dominant RRAM
yield failures are **stuck-at-ON** (cell fused at the lowest
resistance) and **stuck-at-OFF** (cell open at the highest).  A
mapped network meets these faults as corrupted weights.  This module
injects them into a :class:`~repro.functional.accelerator.
FunctionalAccelerator` (or any of its banks) and measures the
application-level damage:

* :func:`inject_stuck_faults` — flip a seeded random fraction of cells
  in every plane to their stuck level (in place, returns the count);
* :func:`fault_study` — accuracy-vs-fault-rate curve for a forward
  function and test set, the yield-analysis view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.errors import ConfigError
from repro.functional.accelerator import FunctionalAccelerator
from repro.functional.bank import FunctionalBank

FAULT_MODES = ("stuck_on", "stuck_off", "mixed")


def _iter_planes(bank: FunctionalBank):
    for grid in bank.units:
        for row in grid:
            for unit in row:
                yield unit.positive
                if unit.negative is not None:
                    yield unit.negative


def inject_stuck_faults(
    target,
    fault_rate: float,
    rng: np.random.Generator,
    mode: str = "mixed",
) -> int:
    """Corrupt a random fraction of cells across all planes, in place.

    Parameters
    ----------
    target:
        A :class:`FunctionalAccelerator` or :class:`FunctionalBank`.
    fault_rate:
        Probability that any individual cell is defective (0..1).
    mode:
        ``stuck_on`` pins faulty cells to the top conductance level,
        ``stuck_off`` to level 0, ``mixed`` splits 50/50.

    Returns the number of cells flipped.
    """
    if not 0 <= fault_rate <= 1:
        raise ConfigError("fault_rate must lie in [0, 1]")
    if mode not in FAULT_MODES:
        raise ConfigError(f"mode must be one of {FAULT_MODES}")
    banks: Sequence[FunctionalBank]
    if isinstance(target, FunctionalAccelerator):
        banks = target.banks
    elif isinstance(target, FunctionalBank):
        banks = [target]
    else:
        raise ConfigError(
            "target must be a FunctionalAccelerator or FunctionalBank"
        )

    flipped = 0
    for bank in banks:
        for plane in _iter_planes(bank):
            mask = rng.random(plane.levels.shape) < fault_rate
            count = int(mask.sum())
            if not count:
                continue
            top = plane.device.levels - 1
            if mode == "stuck_on":
                values = np.full(count, top)
            elif mode == "stuck_off":
                values = np.zeros(count, dtype=np.int64)
            else:
                values = rng.choice([0, top], size=count)
            plane.levels[mask] = values
            flipped += count
    return flipped


@dataclass(frozen=True)
class FaultPoint:
    """Accuracy at one fault rate."""

    fault_rate: float
    cells_flipped: int
    accuracy: float


def fault_study(
    build: Callable[[], FunctionalAccelerator],
    score: Callable[[FunctionalAccelerator], float],
    fault_rates: Sequence[float],
    rng: np.random.Generator,
    mode: str = "mixed",
) -> List[FaultPoint]:
    """Accuracy-vs-fault-rate curve.

    ``build`` constructs a fresh (fault-free) functional accelerator;
    ``score`` evaluates it (e.g. classification accuracy on a test
    set).  Each rate gets its own freshly-built instance so faults do
    not accumulate across points.
    """
    if not fault_rates:
        raise ConfigError("need at least one fault rate")
    points = []
    for rate in fault_rates:
        accelerator = build()
        flipped = inject_stuck_faults(accelerator, rate, rng, mode=mode)
        points.append(
            FaultPoint(
                fault_rate=float(rate),
                cells_flipped=flipped,
                accuracy=float(score(accelerator)),
            )
        )
    return points
