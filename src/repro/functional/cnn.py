"""Chained functional CNN: conv banks into a fully-connected head.

Completes the functional simulator for small end-to-end CNNs: a
:class:`FunctionalCnn` chains :class:`~repro.functional.conv.
FunctionalConvBank` stages, flattens the final feature map, and feeds
the fully-connected :class:`~repro.functional.bank.FunctionalBank`
head — the same bank cascade the performance model builds for a CNN
network description.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.functional.bank import FunctionalBank
from repro.functional.conv import FunctionalConvBank
from repro.functional.unit import AnalogMode
from repro.nn.layers import ConvLayer, FullyConnectedLayer
from repro.nn.networks import Network


class FunctionalCnn:
    """Functional simulation of a conv-then-dense network.

    Parameters
    ----------
    config:
        Design configuration shared by every bank.
    network:
        A network whose layers are conv stages optionally followed by
        fully-connected stages (the standard CNN shape).
    weights:
        Per layer: a ``(C_out, C_in, k, k)`` kernel tensor for conv
        layers, a ``(out, in)`` matrix for fully-connected layers.
    """

    def __init__(
        self,
        config: SimConfig,
        network: Network,
        weights: Sequence[np.ndarray],
    ) -> None:
        if len(weights) != network.depth:
            raise ConfigError("one weight tensor per layer is required")
        seen_fc = False
        self.stages: List[Union[FunctionalConvBank, FunctionalBank]] = []
        for layer, tensor in zip(network.layers, weights):
            if isinstance(layer, ConvLayer):
                if seen_fc:
                    raise ConfigError("conv after dense is unsupported")
                self.stages.append(
                    FunctionalConvBank(layer, np.asarray(tensor), config)
                )
            elif isinstance(layer, FullyConnectedLayer):
                seen_fc = True
                self.stages.append(
                    FunctionalBank(
                        np.asarray(tensor), config,
                        activation=layer.activation,
                    )
                )
            else:  # pragma: no cover - no other layer kinds exist
                raise ConfigError(f"unsupported layer kind {layer.kind}")
        self.config = config
        self.network = network

    # ------------------------------------------------------------------
    def forward(
        self,
        feature_map: np.ndarray,
        mode: AnalogMode = AnalogMode.IDEAL,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """One input feature map -> final output vector."""
        signal: np.ndarray = np.asarray(feature_map, dtype=float)
        for stage in self.stages:
            if isinstance(stage, FunctionalConvBank):
                signal = stage.forward(signal, mode=mode, rng=rng)
            else:
                signal = stage.forward(
                    signal.reshape(-1), mode=mode, rng=rng
                )
        return signal

    def reference_forward(self, feature_map: np.ndarray) -> np.ndarray:
        """The fixed-point reference of the whole chain (IDEAL target)."""
        from repro.functional.bank import _ACTIVATIONS
        from repro.nn.quantize import dequantize, quantize

        bits = self.config.signal_bits
        signal: np.ndarray = np.asarray(feature_map, dtype=float)
        for stage in self.stages:
            if isinstance(stage, FunctionalConvBank):
                signal = stage.reference_forward(signal)
            else:
                flat = signal.reshape(-1)
                driven = dequantize(
                    quantize(flat, bits, signed=True), bits, signed=True
                )
                product = stage.effective_weights() @ driven
                activated = _ACTIVATIONS[stage.activation](product)
                signal = dequantize(
                    quantize(activated, bits, signed=True),
                    bits, signed=True,
                )
        return signal
