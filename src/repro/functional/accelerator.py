"""Functional accelerator: whole fully-connected networks, end to end."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.functional.bank import FunctionalBank, _ACTIVATIONS
from repro.functional.unit import AnalogMode
from repro.nn.layers import FullyConnectedLayer
from repro.nn.networks import Network
from repro.nn.quantize import dequantize, quantize


class FunctionalAccelerator:
    """Functional simulation of a fully-connected network.

    Parameters
    ----------
    config:
        Design configuration shared by every bank.
    network:
        The network description (fully-connected layers only).
    weights:
        One float ``(out, in)`` matrix per layer.
    """

    def __init__(
        self,
        config: SimConfig,
        network: Network,
        weights: Sequence[np.ndarray],
    ) -> None:
        if len(weights) != network.depth:
            raise ConfigError("one weight matrix per layer is required")
        for layer in network.layers:
            if not isinstance(layer, FullyConnectedLayer):
                raise ConfigError(
                    "functional simulation supports FC layers only"
                )
        self.config = config
        self.network = network
        self.banks = [
            FunctionalBank(matrix, config, activation=layer.activation)
            for layer, matrix in zip(network.layers, weights)
        ]

    # ------------------------------------------------------------------
    def forward(
        self,
        inputs: np.ndarray,
        mode: AnalogMode = AnalogMode.IDEAL,
        rng: Optional[np.random.Generator] = None,
    ) -> List[np.ndarray]:
        """Run one sample; returns every layer's float output."""
        signal = np.asarray(inputs, dtype=float)
        outputs = []
        for bank in self.banks:
            signal = bank.forward(signal, mode=mode, rng=rng)
            outputs.append(signal)
        return outputs

    def reference_forward(self, inputs: np.ndarray) -> List[np.ndarray]:
        """The fixed-point reference the IDEAL mode must match exactly.

        Uses each bank's *effective* (mapped) weights with the same
        quantize/activate/quantize chain, but computed with plain
        floating-point matrix products — no crossbars involved.
        """
        signal = np.asarray(inputs, dtype=float)
        bits = self.config.signal_bits
        outputs = []
        for bank in self.banks:
            levels = quantize(signal, bits, signed=True)
            driven = dequantize(levels, bits, signed=True)
            product = driven @ bank.effective_weights().T
            activated = _ACTIVATIONS[bank.activation](product)
            signal = dequantize(
                quantize(activated, bits, signed=True), bits, signed=True
            )
            outputs.append(signal)
        return outputs

    # ------------------------------------------------------------------
    def relative_output_error(
        self,
        inputs: np.ndarray,
        mode: AnalogMode = AnalogMode.MODEL,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Observed relative error of the final output vs IDEAL mode."""
        ideal = self.forward(inputs, mode=AnalogMode.IDEAL)[-1]
        noisy = self.forward(inputs, mode=mode, rng=rng)[-1]
        scale = np.max(np.abs(ideal))
        if scale == 0:
            return 0.0
        return float(np.mean(np.abs(ideal - noisy)) / scale)
