"""Functional computation bank: a whole layer through mapped tiles.

Mirrors :class:`~repro.arch.bank.ComputationBank`'s datapath with real
numbers: the layer's float weight matrix is quantized and mapped onto
polarity planes and bit slices (:mod:`repro.nn.quantize`), tiled to the
crossbar size, and evaluated per input vector:

1. every tile computes its (possibly perturbed) partial sums;
2. the adder tree merges row-block partials (exact digital addition);
3. the shift-add merger reassembles bit slices;
4. the result is rescaled to floats, the neuron function applied, and
   the output re-quantized to the signal precision.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.accuracy.model import AccuracyModel
from repro.config import SimConfig
from repro.errors import ConfigError, MappingError
from repro.functional.unit import AnalogMode, FunctionalUnit
from repro.nn.quantize import dequantize, quantize, weight_to_cell_levels

_ACTIVATIONS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "relu": lambda x: np.maximum(x, 0.0),
    "none": lambda x: x,
    "if": lambda x: x,
}


class FunctionalBank:
    """One layer's functional datapath.

    Parameters
    ----------
    weights:
        Float weight matrix, shape ``(out_features, in_features)``.
    config:
        Design configuration (crossbar size, precisions, device, ...).
    activation:
        Neuron function name (``sigmoid`` / ``relu`` / ``none`` / ``if``).
    """

    def __init__(
        self,
        weights: np.ndarray,
        config: SimConfig,
        activation: str = "sigmoid",
    ) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2:
            raise MappingError("weights must be a 2-D matrix")
        if activation not in _ACTIVATIONS:
            raise ConfigError(f"unknown activation {activation!r}")
        self.config = config
        self.activation = activation
        self.out_features, self.in_features = weights.shape
        self.device = config.device
        self.signed = config.weight_polarity == 2

        # Map to per-slice polarity planes (full matrices, (out, in)).
        self._slices = weight_to_cell_levels(
            weights, config.weight_bits, self.device, signed=self.signed
        )
        self.slice_bits = min(
            self.device.precision_bits,
            max(config.weight_bits - (1 if self.signed else 0), 1),
        )

        # Tile the (in x out) orientation into crossbar-sized units.
        size = config.crossbar_size
        self.row_blocks = math.ceil(self.in_features / size)
        self.col_blocks = math.ceil(self.out_features / size)
        self.units: List[List[List[FunctionalUnit]]] = []
        for slice_index, (pos, neg) in enumerate(self._slices):
            pos_t, neg_t = pos.T, neg.T  # (in, out)
            grid = []
            for i in range(self.row_blocks):
                row = []
                r0, r1 = i * size, min((i + 1) * size, self.in_features)
                for j in range(self.col_blocks):
                    c0, c1 = j * size, min((j + 1) * size, self.out_features)
                    row.append(
                        FunctionalUnit(
                            pos_t[r0:r1, c0:c1],
                            neg_t[r0:r1, c0:c1] if self.signed else None,
                            self.device,
                        )
                    )
                grid.append(row)
            self.units.append(grid)

        # Analog parameters for MODEL/SOLVER modes.
        model = AccuracyModel(config)
        tile_rows = min(size, self.in_features)
        self.epsilon = model.crossbar_epsilon(
            rows=tile_rows, cols=min(size, self.out_features), case="worst"
        )
        self.segment_resistance = model.segment_resistance
        self.sense_resistance = model.sense_resistance

    # ------------------------------------------------------------------
    @property
    def num_units(self) -> int:
        """Tiles x slices (matches the performance-model mapping)."""
        return self.row_blocks * self.col_blocks * len(self._slices)

    def effective_weights(self) -> np.ndarray:
        """The float weights the mapped arrays actually represent.

        Reconstructs ``(pos - neg)`` across slices and rescales by the
        weight full scale — the algebraic ground truth the IDEAL mode
        must reproduce exactly.
        """
        merged = np.zeros((self.out_features, self.in_features),
                          dtype=np.int64)
        for index, (pos, neg) in enumerate(self._slices):
            merged += (pos.astype(np.int64) - neg.astype(np.int64)) << (
                index * self.slice_bits
            )
        scale = 2 ** (self.config.weight_bits - 1) if self.signed else (
            2**self.config.weight_bits - 1
        )
        return merged / scale

    # ------------------------------------------------------------------
    def forward_levels(
        self,
        input_levels: np.ndarray,
        mode: AnalogMode = AnalogMode.IDEAL,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Input signal levels -> output signal levels.

        Accepts a single vector of ``in_features`` levels or a batch
        with the features on the last axis (IDEAL/MODEL modes only —
        the solver path is one vector at a time).
        """
        input_levels = np.asarray(input_levels)
        if input_levels.shape[-1] != self.in_features:
            raise MappingError(
                f"expected {self.in_features} input levels, "
                f"got {input_levels.shape}"
            )
        if input_levels.ndim > 1 and mode is AnalogMode.SOLVER:
            raise MappingError("SOLVER mode takes one vector at a time")
        size = self.config.crossbar_size
        full_scale = 2 ** (self.config.signal_bits - 1)
        out_shape = input_levels.shape[:-1] + (self.out_features,)

        merged = np.zeros(out_shape, dtype=float)
        for slice_index, grid in enumerate(self.units):
            slice_sum = np.zeros(out_shape, dtype=float)
            for i, row in enumerate(grid):
                r0 = i * size
                chunk = input_levels[..., r0:r0 + row[0].rows]
                for j, unit in enumerate(row):
                    c0 = j * size
                    slice_sum[..., c0:c0 + unit.cols] += (
                        unit.partial_product(
                            chunk,
                            mode=mode,
                            epsilon=self.epsilon,
                            rng=rng,
                            input_full_scale=full_scale,
                            segment_resistance=self.segment_resistance,
                            sense_resistance=self.sense_resistance,
                        )
                    )
            merged += slice_sum * (2 ** (slice_index * self.slice_bits))

        # Rescale integer partial sums to float products.
        weight_scale = (
            2 ** (self.config.weight_bits - 1)
            if self.signed
            else 2**self.config.weight_bits - 1
        )
        product = merged / (weight_scale * full_scale)
        activated = _ACTIVATIONS[self.activation](product)
        return quantize(activated, self.config.signal_bits, signed=True)

    def forward(
        self,
        inputs: np.ndarray,
        mode: AnalogMode = AnalogMode.IDEAL,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """One float input vector -> float output vector."""
        levels = quantize(
            np.asarray(inputs, dtype=float), self.config.signal_bits,
            signed=True,
        )
        out_levels = self.forward_levels(levels, mode=mode, rng=rng)
        return dequantize(out_levels, self.config.signal_bits, signed=True)
