"""Functional simulation: compute real outputs through the mapped design.

MNSIM proper is a performance/accuracy *estimator*; this package adds
the complementary functional view: given actual weights and inputs, run
the exact datapath the hierarchy models — fixed-point quantization,
polarity split, bit slicing onto device conductance levels, per-tile
matrix-vector products, shift-add and adder-tree merging, neuron
functions — and optionally inject the analog error the accuracy model
predicts (or measure it exactly with the circuit-level solver).

Three fidelity modes (:class:`~repro.functional.unit.AnalogMode`):

* ``IDEAL`` — integer-exact: validates the mapping algebra (the
  functional output must equal the fixed-point reference network);
* ``MODEL`` — per-tile analog deviation drawn from the behavior-level
  accuracy model's error band;
* ``SOLVER`` — each tile's deviation measured by solving the real
  resistor network (slow; small networks only).
"""

from repro.functional.crossbar import FunctionalCrossbar
from repro.functional.unit import AnalogMode, FunctionalUnit
from repro.functional.bank import FunctionalBank
from repro.functional.conv import FunctionalConvBank
from repro.functional.cnn import FunctionalCnn
from repro.functional.accelerator import FunctionalAccelerator
from repro.functional.faults import (
    FaultPoint,
    fault_study,
    inject_stuck_faults,
)

__all__ = [
    "FunctionalCrossbar",
    "AnalogMode",
    "FunctionalUnit",
    "FunctionalBank",
    "FunctionalConvBank",
    "FunctionalCnn",
    "FunctionalAccelerator",
    "FaultPoint",
    "fault_study",
    "inject_stuck_faults",
]
