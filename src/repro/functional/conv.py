"""Functional convolution bank: CNN layers through mapped crossbars.

A conv layer's kernels flatten to a ``(C_out, C_in * k * k)`` matrix
(Sec. II.B.3); the crossbars then compute one output spatial position
per pass over the im2col window — exactly the dataflow the performance
model's ``compute_passes`` counts.  :class:`FunctionalConvBank` reuses
:class:`~repro.functional.bank.FunctionalBank` for the matrix part and
adds the window extraction, spatial loop, and in-bank max pooling.

Intended for small feature maps (the spatial loop is Python-level); it
exists to validate the CNN datapath, not to be a fast CNN engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import SimConfig
from repro.errors import MappingError
from repro.functional.bank import FunctionalBank
from repro.functional.unit import AnalogMode
from repro.nn.layers import ConvLayer


class FunctionalConvBank:
    """One convolutional layer, functionally simulated.

    Parameters
    ----------
    layer:
        The conv layer description (geometry, pooling, activation).
    kernels:
        Float kernel tensor, shape ``(C_out, C_in, k, k)``.
    config:
        Design configuration.
    """

    def __init__(
        self,
        layer: ConvLayer,
        kernels: np.ndarray,
        config: SimConfig,
    ) -> None:
        kernels = np.asarray(kernels, dtype=float)
        expected = (layer.out_channels, layer.in_channels,
                    layer.kernel, layer.kernel)
        if kernels.shape != expected:
            raise MappingError(
                f"kernels must have shape {expected}, got {kernels.shape}"
            )
        self.layer = layer
        self.config = config
        matrix = kernels.reshape(layer.out_channels, -1)
        self.matrix_bank = FunctionalBank(
            matrix, config, activation=layer.activation
        )

    # ------------------------------------------------------------------
    def _window(self, padded: np.ndarray, y: int, x: int) -> np.ndarray:
        k = self.layer.kernel
        return padded[:, y:y + k, x:x + k].reshape(-1)

    def forward(
        self,
        feature_map: np.ndarray,
        mode: AnalogMode = AnalogMode.IDEAL,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """One input feature map -> pooled output feature map.

        ``feature_map`` has shape ``(C_in, H, W)`` with ``H == W ==
        layer.input_size``; the result has shape ``(C_out, out, out)``
        with ``out == layer.output_size``.
        """
        feature_map = np.asarray(feature_map, dtype=float)
        size = self.layer.input_size
        if feature_map.shape != (self.layer.in_channels, size, size):
            raise MappingError(
                f"feature map must be (C_in, {size}, {size}), "
                f"got {feature_map.shape}"
            )
        pad = self.layer.padding
        padded = np.pad(
            feature_map, ((0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
        conv_size = self.layer.conv_output_size
        stride = self.layer.stride

        conv_out = np.empty(
            (self.layer.out_channels, conv_size, conv_size)
        )
        for y in range(conv_size):
            for x in range(conv_size):
                window = self._window(padded, y * stride, x * stride)
                conv_out[:, y, x] = self.matrix_bank.forward(
                    window, mode=mode, rng=rng
                )
        return self._pool(conv_out)

    def _pool(self, conv_out: np.ndarray) -> np.ndarray:
        window = self.layer.pooling
        if window == 1:
            return conv_out
        out = self.layer.output_size
        pooled = np.empty((self.layer.out_channels, out, out))
        for y in range(out):
            for x in range(out):
                region = conv_out[
                    :,
                    y * window:(y + 1) * window,
                    x * window:(x + 1) * window,
                ]
                pooled[:, y, x] = region.max(axis=(1, 2))
        return pooled

    # ------------------------------------------------------------------
    def reference_forward(self, feature_map: np.ndarray) -> np.ndarray:
        """Plain-numpy fixed-point convolution with the *effective*
        (mapped) kernels — the IDEAL mode's exact target."""
        from repro.functional.bank import _ACTIVATIONS
        from repro.nn.quantize import dequantize, quantize

        feature_map = np.asarray(feature_map, dtype=float)
        pad = self.layer.padding
        padded = np.pad(
            feature_map, ((0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
        bits = self.config.signal_bits
        effective = self.matrix_bank.effective_weights()
        activation = _ACTIVATIONS[self.layer.activation]
        conv_size = self.layer.conv_output_size
        stride = self.layer.stride

        conv_out = np.empty(
            (self.layer.out_channels, conv_size, conv_size)
        )
        for y in range(conv_size):
            for x in range(conv_size):
                window = self._window(padded, y * stride, x * stride)
                driven = dequantize(
                    quantize(window, bits, signed=True), bits, signed=True
                )
                product = effective @ driven
                conv_out[:, y, x] = dequantize(
                    quantize(activation(product), bits, signed=True),
                    bits, signed=True,
                )
        return self._pool(conv_out)
