"""Functional view of one crossbar plane: levels, conductances, MVM.

A :class:`FunctionalCrossbar` holds one tile of one bit slice of one
polarity: an integer level matrix (``in_features x out_features`` after
transposition onto the array: inputs drive rows, outputs leave columns)
plus the device model that turns levels into conductances.

Two evaluation paths:

* :meth:`ideal_mvm` — the integer matrix-vector product the analog
  array *represents* (exact, used as the algebraic reference);
* :meth:`solver_relative_errors` — per-column relative deviation of the
  real resistor network (wire resistance + sinh nonlinearity) from the
  ideal divider, measured with :mod:`repro.spice`.
"""

from __future__ import annotations



import numpy as np

from repro.errors import MappingError
from repro.spice.solver import CrossbarNetwork, ideal_output_voltages
from repro.tech.memristor import MemristorModel


class FunctionalCrossbar:
    """One programmed crossbar plane.

    Parameters
    ----------
    levels:
        Integer conductance levels, shape ``(rows, cols)`` = (inputs,
        outputs); values in ``0 .. device.levels - 1``.
    device:
        The memristor model (level-to-conductance map, nonlinearity).
    """

    def __init__(self, levels: np.ndarray, device: MemristorModel) -> None:
        levels = np.asarray(levels)
        if levels.ndim != 2:
            raise MappingError("levels must be a 2-D (rows x cols) array")
        if levels.size == 0:
            raise MappingError("crossbar cannot be empty")
        if np.any(levels < 0) or np.any(levels >= device.levels):
            raise MappingError(
                f"levels must lie in 0..{device.levels - 1}"
            )
        self.levels = levels.astype(np.int64)
        self.device = device

    @property
    def rows(self) -> int:
        """Input (wordline) count."""
        return self.levels.shape[0]

    @property
    def cols(self) -> int:
        """Output (bitline) count."""
        return self.levels.shape[1]

    # ------------------------------------------------------------------
    def ideal_mvm(self, input_levels: np.ndarray) -> np.ndarray:
        """Exact integer matrix-vector product ``levels.T @ inputs``.

        ``input_levels`` may be signed (negative inputs are realised by
        a second drive phase in hardware; algebraically they pass
        through).
        """
        input_levels = np.asarray(input_levels)
        if input_levels.shape[-1] != self.rows:
            raise MappingError(
                f"input length {input_levels.shape[-1]} != rows {self.rows}"
            )
        return input_levels @ self.levels

    def resistances(self) -> np.ndarray:
        """Per-cell programmed resistances (ohms)."""
        return self.device.resistance_of_level(self.levels)

    # ------------------------------------------------------------------
    def solver_relative_errors(
        self,
        input_levels: np.ndarray,
        input_full_scale: int,
        segment_resistance: float,
        sense_resistance: float,
    ) -> np.ndarray:
        """Per-column relative deviation of the real network.

        Drives the array with voltages proportional to the input
        levels (split into positive and negative phases, as hardware
        does for signed inputs), solves the resistor network — both
        phases share one :class:`CrossbarNetwork` and go through the
        batched ``solve_many`` path, so the system is assembled (and,
        for ideal devices, factorized) once — and returns
        ``(ideal - actual) / ideal`` per column (0 where the ideal
        output is ~0).
        """
        input_levels = np.asarray(input_levels, dtype=float)
        if input_levels.shape != (self.rows,):
            raise MappingError("solver mode takes one input vector")
        resist = self.resistances()
        scale = self.device.read_voltage / max(input_full_scale, 1)

        phases = (
            (np.maximum(input_levels, 0), +1.0),
            (np.maximum(-input_levels, 0), -1.0),
        )
        active = [(phase, sign) for phase, sign in phases if np.any(phase)]
        total_ideal = np.zeros(self.cols)
        total_actual = np.zeros(self.cols)
        if active:
            voltages = np.stack([phase * scale for phase, _ in active])
            signs = np.array([sign for _, sign in active])
            network = CrossbarNetwork(
                resist, segment_resistance, sense_resistance,
                device=self.device,
            )
            batch = network.solve_many(voltages)
            ideal = ideal_output_voltages(resist, voltages, sense_resistance)
            total_ideal = signs @ ideal
            total_actual = signs @ batch.output_voltages

        errors = np.zeros(self.cols)
        mask = np.abs(total_ideal) > 1e-15
        errors[mask] = (
            (total_ideal[mask] - total_actual[mask]) / total_ideal[mask]
        )
        return errors
