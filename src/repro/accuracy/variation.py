"""Device-variation modelling (Sec. VI.D, Eq. 16).

The paper models device variation as a bounded multiplicative noise on the
actual resistance: ``(1 +/- sigma) R_act`` with ``sigma`` up to 30 %.  Two
views are provided:

* :func:`variation_error_bounds` — the closed-form worst-case bounds of
  Eq. 16, evaluating the analog error rate at both variation extremes;
* :func:`sample_resistances` — seeded Monte-Carlo resistance matrices for
  the circuit-level solver, enabling variation-aware validation runs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.accuracy.interconnect import (
    DEFAULT_SENSE_RESISTANCE,
    analog_error_rate,
)
from repro.tech.memristor import MemristorModel


def variation_error_bounds(
    rows: int,
    cols: int,
    segment_resistance: float,
    device: MemristorModel,
    case: str = "worst",
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
) -> Tuple[float, float]:
    """Signed analog error rates at the two variation extremes.

    Returns ``(eps_low, eps_high)`` for ``(1 - sigma) R_act`` and
    ``(1 + sigma) R_act`` respectively; identical when ``sigma == 0``.
    The *worst* variation-aware error is ``max(abs(eps_low),
    abs(eps_high))``.
    """
    eps_low = analog_error_rate(
        rows, cols, segment_resistance, device, case, sense_resistance,
        sigma_sign=-1.0,
    )
    eps_high = analog_error_rate(
        rows, cols, segment_resistance, device, case, sense_resistance,
        sigma_sign=+1.0,
    )
    return (eps_low, eps_high)


def worst_variation_error(
    rows: int,
    cols: int,
    segment_resistance: float,
    device: MemristorModel,
    case: str = "worst",
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
) -> float:
    """Magnitude of the worst-case error over the variation band."""
    eps_low, eps_high = variation_error_bounds(
        rows, cols, segment_resistance, device, case, sense_resistance
    )
    return max(abs(eps_low), abs(eps_high))


def sample_resistances(
    ideal_resistances: np.ndarray,
    sigma: float,
    rng: np.random.Generator,
    distribution: str = "uniform",
) -> np.ndarray:
    """Monte-Carlo sample of per-cell resistances with variation.

    Parameters
    ----------
    ideal_resistances:
        Programmed (ideal) resistance matrix.
    sigma:
        Maximum fractional deviation (uniform) or standard deviation
        (normal, truncated at 3 sigma).
    rng:
        A seeded :class:`numpy.random.Generator` (callers own the seed,
        keeping every experiment reproducible).
    distribution:
        ``"uniform"`` draws from ``[1 - sigma, 1 + sigma]``;
        ``"normal"`` from ``N(1, sigma)`` truncated to the same support
        style at 3 sigma.
    """
    ideal = np.asarray(ideal_resistances, dtype=float)
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0:
        return ideal.copy()
    if distribution == "uniform":
        factors = rng.uniform(1.0 - sigma, 1.0 + sigma, size=ideal.shape)
    elif distribution == "normal":
        factors = rng.normal(1.0, sigma, size=ideal.shape)
        factors = np.clip(factors, 1.0 - 3.0 * sigma, 1.0 + 3.0 * sigma)
    else:
        raise ValueError(
            f"distribution must be 'uniform' or 'normal', got {distribution!r}"
        )
    return ideal * factors
