"""Monte-Carlo accuracy simulation against the circuit-level solver.

The closed-form model gives worst/average-case error rates; this module
provides the *distributional* view: sample weight matrices (optionally
with device variation per Eq. 16), run the circuit-level solver, and
collect the empirical distribution of relative output errors.  It both
validates the closed-form bounds (the worst case must dominate the
samples) and supports variation studies the paper defers to the
``Memristor_Model`` configuration.

Sampling runs through :mod:`repro.runtime`: pass ``seed=`` (instead of
a shared ``rng``) and each trial draws from its own
``np.random.SeedSequence(seed, spawn_key=(trial,))`` stream, which
makes the result *independent of the execution schedule* — ``jobs=N``
parallel runs reproduce the serial samples bit-for-bit, and trials are
individually cacheable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.accuracy.interconnect import DEFAULT_SENSE_RESISTANCE
from repro.accuracy.variation import sample_resistances
from repro.errors import ConfigError
from repro.obs import trace as obs_trace
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import JobSpec, content_key
from repro.runtime.metrics import RunMetrics
from repro.runtime.pool import RunPolicy, run_jobs
from repro.spice.solver import (
    CrossbarNetwork,
    ideal_output_voltages,
    solve_batch,
)
from repro.tech.memristor import MemristorModel


@dataclass(frozen=True)
class MonteCarloResult:
    """Empirical error distribution over sampled crossbar solves."""

    samples: np.ndarray  # per-column relative errors, flattened

    @property
    def mean_abs_error(self) -> float:
        """Mean magnitude of the relative output error."""
        return float(np.mean(np.abs(self.samples)))

    @property
    def max_abs_error(self) -> float:
        """Largest observed relative output error."""
        return float(np.max(np.abs(self.samples)))

    def percentile(self, q: float) -> float:
        """Percentile of the |error| distribution (q in 0..100)."""
        return float(np.percentile(np.abs(self.samples), q))


def _draw_trial(
    device: MemristorModel,
    size: int,
    sigma: float,
    input_mode: str,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One trial's random draws, in the fixed (contractual) order.

    The draw order — levels, variation sample, inputs — is the
    reproducibility contract shared by the point-wise and batched
    workers: each trial is a pure function of its spawn-keyed stream,
    so grouping trials differently can never change a sample.
    """
    levels = rng.integers(0, device.levels, size=(size, size))
    programmed = device.resistance_of_level(levels)
    actual = sample_resistances(programmed, sigma, rng)
    if input_mode == "full":
        inputs = np.full(size, device.read_voltage)
    else:
        inputs = rng.uniform(0, device.read_voltage, size=size)
    return programmed, actual, inputs


def _single_trial(
    device: MemristorModel,
    size: int,
    segment_resistance: float,
    sense_resistance: float,
    sigma: float,
    input_mode: str,
    rng: np.random.Generator,
    inputs_per_trial: int = 1,
) -> np.ndarray:
    """One sampled crossbar solve; returns the finite relative errors.

    With ``inputs_per_trial > 1`` the sampled array is driven by a whole
    batch of input vectors through
    :meth:`~repro.spice.solver.CrossbarNetwork.solve_many`, which
    factorizes the (ideal-device) system once per trial instead of once
    per vector.
    """
    programmed, actual, inputs = _draw_trial(
        device, size, sigma, input_mode, rng
    )
    network = CrossbarNetwork(
        actual, segment_resistance, sense_resistance, device=device
    )
    if inputs_per_trial == 1:
        solution = network.solve(inputs)
        ideal = ideal_output_voltages(programmed, inputs, sense_resistance)
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = (ideal - solution.output_voltages) / ideal
        return rel[np.isfinite(rel)]
    extra = rng.uniform(
        0, device.read_voltage, size=(inputs_per_trial - 1, size)
    )
    batch_inputs = np.vstack((inputs[np.newaxis, :], extra))
    batch = network.solve_many(batch_inputs)
    ideal = ideal_output_voltages(
        programmed, batch_inputs, sense_resistance
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = (ideal - batch.output_voltages) / ideal
    return rel[np.isfinite(rel)]


def _run_trial(task: Tuple) -> np.ndarray:
    """Worker: one seeded trial (runs in a pool process)."""
    (device, size, segment_resistance, sense_resistance, sigma,
     input_mode, seed, trial, inputs_per_trial) = task
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(trial,))
    )
    with obs_trace.span("mc.trial", trial=trial, size=size):
        return _single_trial(
            device, size, segment_resistance, sense_resistance, sigma,
            input_mode, rng, inputs_per_trial,
        )


def _run_trial_batch(tasks: Sequence[Tuple]) -> List[np.ndarray]:
    """Batched worker: a whole group of seeded trials in one solve.

    Each trial's draws replay exactly as in :func:`_run_trial` (its own
    spawn-keyed stream, the :func:`_draw_trial` order), the stacked
    systems are solved through
    :func:`~repro.spice.solver.solve_batch` — bit-identical per member
    to :meth:`~repro.spice.solver.CrossbarNetwork.solve` — and the
    error extraction is the same per-trial arithmetic as
    :func:`_single_trial`.  Results are therefore byte-identical to the
    point-wise worker for any grouping, which is what lets
    ``RunPolicy.batch_within_chunk`` default to on without perturbing
    samples or cache contents.
    """
    inputs_per_trial = tasks[0][8]
    if inputs_per_trial != 1 or len({
        (task[0], task[1], task[8]) for task in tasks
    }) > 1:
        # Multi-vector trials already batch internally via solve_many;
        # heterogeneous groups (different device/size) cannot share a
        # stacked solve.  Both fall back to per-trial execution, which
        # is the identical point-wise computation.
        return [_run_trial(task) for task in tasks]
    programmed_grids: List[np.ndarray] = []
    networks: List[CrossbarNetwork] = []
    input_vectors: List[np.ndarray] = []
    for task in tasks:
        (device, size, segment_resistance, sense_resistance, sigma,
         input_mode, seed, trial, _ipt) = task
        rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(trial,))
        )
        programmed, actual, inputs = _draw_trial(
            device, size, sigma, input_mode, rng
        )
        programmed_grids.append(programmed)
        networks.append(CrossbarNetwork(
            actual, segment_resistance, sense_resistance, device=device
        ))
        input_vectors.append(inputs)
    size = tasks[0][1]
    with obs_trace.span("mc.batch", trials=len(tasks), size=size):
        batch = solve_batch(networks, np.stack(input_vectors))
    errors: List[np.ndarray] = []
    for index, task in enumerate(tasks):
        sense_resistance = task[3]
        ideal = ideal_output_voltages(
            programmed_grids[index], input_vectors[index],
            sense_resistance,
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = (ideal - batch.output_voltages[index]) / ideal
        errors.append(rel[np.isfinite(rel)])
    return errors


def run_monte_carlo(
    device: MemristorModel,
    size: int,
    segment_resistance: float,
    rng: Optional[np.random.Generator] = None,
    trials: int = 10,
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
    sigma: Optional[float] = None,
    input_mode: str = "random",
    *,
    seed: Optional[int] = None,
    jobs: int = 1,
    inputs_per_trial: int = 1,
    cache: Optional[ResultCache] = None,
    metrics: Optional[RunMetrics] = None,
    policy: Optional[RunPolicy] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    should_cancel: Optional[Callable[[], bool]] = None,
) -> MonteCarloResult:
    """Sample crossbar solves and collect relative output errors.

    Parameters
    ----------
    device:
        Memristor model (its nonlinearity is applied in the solver).
    size:
        Square crossbar size.
    segment_resistance:
        Wire segment resistance ``r``.
    rng:
        Seeded generator shared across trials (the legacy serial
        protocol); mutually exclusive with ``seed``.
    trials:
        Number of sampled weight matrices.
    sigma:
        Device-variation magnitude; defaults to ``device.sigma``.
    input_mode:
        ``"random"`` draws uniform inputs; ``"full"`` drives every row
        at the read voltage (the worst-case protocol).
    seed:
        Trial-independent reproducibility: trial ``i`` draws from
        ``SeedSequence(seed, spawn_key=(i,))``, so results are
        identical for any ``jobs`` and individually cacheable.
    jobs:
        Worker processes for the trial sweep (requires ``seed``).
    inputs_per_trial:
        Input vectors solved per sampled weight matrix (batched through
        ``solve_many``, which factorizes the system once per trial).
        Values above 1 require ``input_mode="random"``; the default of
        1 reproduces the original one-vector-per-trial protocol
        bit-for-bit.
    cache / metrics / policy:
        Engine knobs, as in :func:`repro.dse.explorer.explore`.
    progress / should_cancel:
        Engine hooks forwarded to :func:`repro.runtime.pool.run_jobs`
        (requires ``seed=``; the legacy ``rng`` path ignores them).
    """
    if trials < 1:
        raise ConfigError("trials must be >= 1")
    if input_mode not in ("random", "full"):
        raise ConfigError("input_mode must be 'random' or 'full'")
    if inputs_per_trial < 1:
        raise ConfigError("inputs_per_trial must be >= 1")
    if inputs_per_trial > 1 and input_mode != "random":
        raise ConfigError(
            "inputs_per_trial > 1 requires input_mode='random' (a batch "
            "of identical full-scale vectors would resample one point)"
        )
    if (rng is None) == (seed is None):
        raise ConfigError("provide exactly one of rng= or seed=")
    effective_jobs = policy.worker_count if policy is not None else jobs
    if effective_jobs != 1 and seed is None:
        raise ConfigError(
            "parallel Monte-Carlo (jobs != 1) requires seed= for "
            "schedule-independent reproducibility"
        )
    sigma = device.sigma if sigma is None else sigma

    if seed is None:
        # Legacy protocol: one shared generator, strictly sequential.
        with obs_trace.span("mc.run", trials=trials, size=size):
            errors = [
                _single_trial(device, size, segment_resistance,
                              sense_resistance, sigma, input_mode, rng,
                              inputs_per_trial)
                for _ in range(trials)
            ]
        return MonteCarloResult(samples=np.concatenate(errors))

    specs = []
    for trial in range(trials):
        task = (device, size, segment_resistance, sense_resistance,
                sigma, input_mode, seed, trial, inputs_per_trial)
        # Keys for the default single-vector protocol predate the
        # batching knob; keep them unchanged so existing cache entries
        # stay valid.
        key_parts = [
            "montecarlo-trial", device, size, segment_resistance,
            sense_resistance, sigma, input_mode, seed, trial,
        ]
        if inputs_per_trial != 1:
            key_parts.append(inputs_per_trial)
        specs.append(JobSpec(
            kind="montecarlo-trial",
            payload=task,
            key=content_key(*key_parts),
        ))
    # Report the total up front so progress consumers (the service's
    # ETA estimator) know the work size before the first chunk lands.
    if progress is not None:
        progress(0, len(specs))
    with obs_trace.span("mc.run", trials=trials, size=size):
        errors = run_jobs(
            _run_trial,
            specs,
            policy=policy if policy is not None else RunPolicy(jobs=jobs),
            cache=cache,
            encode=lambda arr: [float(v) for v in arr],
            decode=lambda data: np.asarray(data, dtype=float),
            metrics=metrics,
            progress=progress,
            should_cancel=should_cancel,
            batch_worker=_run_trial_batch,
        )
    return MonteCarloResult(samples=np.concatenate(errors))


def bound_check(
    result: MonteCarloResult, worst_case_bound: float, slack: float = 1.3
) -> bool:
    """Does the closed-form worst-case bound dominate the samples?

    ``slack`` tolerates the bound being a lumped approximation; a
    return of False flags a model/solver inconsistency.
    """
    if worst_case_bound < 0:
        raise ConfigError("worst_case_bound must be non-negative")
    return result.max_abs_error <= worst_case_bound * slack + 1e-6
