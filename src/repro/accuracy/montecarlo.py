"""Monte-Carlo accuracy simulation against the circuit-level solver.

The closed-form model gives worst/average-case error rates; this module
provides the *distributional* view: sample weight matrices (optionally
with device variation per Eq. 16), run the circuit-level solver, and
collect the empirical distribution of relative output errors.  It both
validates the closed-form bounds (the worst case must dominate the
samples) and supports variation studies the paper defers to the
``Memristor_Model`` configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.accuracy.interconnect import DEFAULT_SENSE_RESISTANCE
from repro.accuracy.variation import sample_resistances
from repro.errors import ConfigError
from repro.spice.solver import CrossbarNetwork, ideal_output_voltages
from repro.tech.memristor import MemristorModel


@dataclass(frozen=True)
class MonteCarloResult:
    """Empirical error distribution over sampled crossbar solves."""

    samples: np.ndarray  # per-column relative errors, flattened

    @property
    def mean_abs_error(self) -> float:
        """Mean magnitude of the relative output error."""
        return float(np.mean(np.abs(self.samples)))

    @property
    def max_abs_error(self) -> float:
        """Largest observed relative output error."""
        return float(np.max(np.abs(self.samples)))

    def percentile(self, q: float) -> float:
        """Percentile of the |error| distribution (q in 0..100)."""
        return float(np.percentile(np.abs(self.samples), q))


def run_monte_carlo(
    device: MemristorModel,
    size: int,
    segment_resistance: float,
    rng: np.random.Generator,
    trials: int = 10,
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
    sigma: Optional[float] = None,
    input_mode: str = "random",
) -> MonteCarloResult:
    """Sample crossbar solves and collect relative output errors.

    Parameters
    ----------
    device:
        Memristor model (its nonlinearity is applied in the solver).
    size:
        Square crossbar size.
    segment_resistance:
        Wire segment resistance ``r``.
    rng:
        Seeded generator; callers own reproducibility.
    trials:
        Number of sampled weight matrices.
    sigma:
        Device-variation magnitude; defaults to ``device.sigma``.
    input_mode:
        ``"random"`` draws uniform inputs; ``"full"`` drives every row
        at the read voltage (the worst-case protocol).
    """
    if trials < 1:
        raise ConfigError("trials must be >= 1")
    if input_mode not in ("random", "full"):
        raise ConfigError("input_mode must be 'random' or 'full'")
    sigma = device.sigma if sigma is None else sigma

    errors = []
    for _ in range(trials):
        levels = rng.integers(0, device.levels, size=(size, size))
        programmed = np.vectorize(device.resistance_of_level)(levels)
        actual = sample_resistances(programmed, sigma, rng)
        if input_mode == "full":
            inputs = np.full(size, device.read_voltage)
        else:
            inputs = rng.uniform(0, device.read_voltage, size=size)
        network = CrossbarNetwork(
            actual, segment_resistance, sense_resistance, device=device
        )
        solution = network.solve(inputs)
        ideal = ideal_output_voltages(programmed, inputs, sense_resistance)
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = (ideal - solution.output_voltages) / ideal
        errors.append(rel[np.isfinite(rel)])
    return MonteCarloResult(samples=np.concatenate(errors))


def bound_check(
    result: MonteCarloResult, worst_case_bound: float, slack: float = 1.3
) -> bool:
    """Does the closed-form worst-case bound dominate the samples?

    ``slack`` tolerates the bound being a lumped approximation; a
    return of False flags a model/solver inconsistency.
    """
    if worst_case_bound < 0:
        raise ConfigError("worst_case_bound must be non-negative")
    return result.max_abs_error <= worst_case_bound * slack + 1e-6
