"""Layer-by-layer error propagation (Eq. 15 of the paper).

If the previous layer's digital output carries a relative error rate
``delta_prev`` and the current layer's crossbar computation adds a rate
``eps_cur``, the analog result of the current layer is bounded by::

    (1 - delta)(1 - eps) V_idl  <=  V_act  <=  (1 + delta)(1 + eps) V_idl

so the combined analog deviation rate is ``(1 + delta)(1 + eps) - 1``.
That combined rate is pushed through the quantization model (Eq. 12-14)
to get the layer's digital error rate, which in turn feeds the next
layer.  MNSIM evaluates the whole accelerator this way.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.accuracy.quantization import avg_error_rate, max_error_rate


def combine_error_rates(delta_prev: float, eps_current: float) -> float:
    """Combined analog deviation per Eq. 15: ``(1+d)(1+e) - 1``."""
    delta_prev = abs(float(delta_prev))
    eps_current = abs(float(eps_current))
    return (1.0 + delta_prev) * (1.0 + eps_current) - 1.0


def propagate_layers(
    layer_epsilons: Iterable[float],
    k: int,
    case: str = "worst",
) -> List[float]:
    """Digital error rate after each layer for a cascade of crossbars.

    Parameters
    ----------
    layer_epsilons:
        The analog computing error rate of each layer's crossbars
        (signed or unsigned; magnitudes are used).
    k:
        Read-circuit quantization levels (``2**signal_bits``).
    case:
        ``"worst"`` applies Eq. 13 per layer, ``"average"`` Eq. 14.

    Returns
    -------
    list of float
        The digital error rate delta after layer 1, 2, ... N.
    """
    if case == "worst":
        to_digital = max_error_rate
    elif case == "average":
        to_digital = avg_error_rate
    else:
        raise ValueError(f"case must be 'worst' or 'average', got {case!r}")

    deltas: List[float] = []
    delta = 0.0
    for eps in layer_epsilons:
        combined = combine_error_rates(delta, eps)
        delta = to_digital(k, combined)
        deltas.append(delta)
    return deltas


def final_error_rates(
    layer_epsilons: Iterable[float], k: int
) -> Tuple[float, float]:
    """Convenience: ``(worst, average)`` error rate after the last layer."""
    epsilons = list(layer_epsilons)
    if not epsilons:
        return (0.0, 0.0)
    worst = propagate_layers(epsilons, k, case="worst")[-1]
    average = propagate_layers(epsilons, k, case="average")[-1]
    return (worst, average)
