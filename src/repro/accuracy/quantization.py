"""Digital read-deviation model (Eq. 12-14 of the paper).

The read circuit linearly quantizes the analog result into ``k`` levels.
An analog deviation rate ``eps`` displaces the signal across quantization
boundaries, producing digital deviations:

* worst case — the ideal signal sits just under the top boundary and is
  read low: ``MaxDigitalDeviation = floor((k - 1.5) eps + 0.5)`` (Eq. 12)
  and ``MaxErrorRate = MaxDigitalDeviation / (k - 1)`` (Eq. 13);
* average case — level ``i`` deviates by ``floor(i eps + 0.5)`` and the
  mean over all levels gives Eq. 14.

All functions accept a *signed* ``eps`` and use its magnitude, matching
the paper's treatment of deviation as a symmetric band (Eq. 15).
"""

from __future__ import annotations

import math

import numpy as np


def _check(k: int, eps: float) -> float:
    if k < 2:
        raise ValueError("quantization needs at least 2 levels")
    eps = abs(float(eps))
    if not math.isfinite(eps):
        raise ValueError("eps must be finite")
    return eps


def max_digital_deviation(k: int, eps: float) -> int:
    """Worst-case digital deviation in levels (Eq. 12)."""
    eps = _check(k, eps)
    return int(math.floor((k - 1.5) * eps + 0.5))


def max_error_rate(k: int, eps: float) -> float:
    """Worst-case digital error rate (Eq. 13), in [0, 1]."""
    deviation = max_digital_deviation(k, eps)
    return min(1.0, deviation / (k - 1))


def avg_digital_deviation(k: int, eps: float) -> float:
    """Average digital deviation over all ``k`` levels (Eq. 14)."""
    eps = _check(k, eps)
    levels = np.arange(k, dtype=float)
    return float(np.floor(levels * eps + 0.5).sum() / k)


def avg_error_rate(k: int, eps: float) -> float:
    """Average digital error rate: Eq. 14 normalised by full scale."""
    deviation = avg_digital_deviation(k, eps)
    return min(1.0, deviation / (k - 1))
