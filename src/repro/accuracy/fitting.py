"""Fit the accuracy model's wire term against circuit-level simulation.

This module reproduces the paper's calibration step for Fig. 5: "we use
M, N, and r as variables to simulate the error of output voltages on
SPICE, and fit the relationship according to Equ. (11) to obtain the
accuracy module", reporting a fit RMSE (the paper claims < 0.01).

:func:`fit_wire_term` runs the internal circuit solver
(:class:`~repro.spice.solver.CrossbarNetwork`) over a grid of crossbar
sizes and wire resistances, extracts the worst-column output error, and
least-squares fits the two constants of the effective wire term::

    W = kappa * r * (M + N)**beta

used by :func:`repro.accuracy.interconnect.analog_error_rate`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

from repro.accuracy.interconnect import (
    DEFAULT_SENSE_RESISTANCE,
    analog_error_rate,
)
from repro.spice.solver import CrossbarNetwork, ideal_output_voltages
from repro.tech.memristor import MemristorModel

DEFAULT_FIT_SIZES = (8, 16, 32, 64, 128)


@dataclass(frozen=True)
class FitPoint:
    """One calibration sample: a (wire resistance, size) solver run."""

    segment_resistance: float
    size: int
    solver_error: float
    model_error: float


@dataclass(frozen=True)
class WireFit:
    """Result of the wire-term calibration.

    ``kappa`` / ``beta`` are the fitted constants; ``rmse`` is the
    root-mean-squared residual between the analytic model and the
    circuit-level solver over all calibration points (the Fig. 5 metric).
    """

    kappa: float
    beta: float
    rmse: float
    points: Tuple[FitPoint, ...]

    @property
    def max_abs_residual(self) -> float:
        """Largest model-vs-solver deviation across the fit points."""
        return max(
            abs(p.model_error - p.solver_error) for p in self.points
        )


def solver_worst_column_error(
    device: MemristorModel,
    size: int,
    segment_resistance: float,
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
) -> float:
    """Signed relative error of the worst (last) column from the solver.

    Runs the paper's worst case: a ``size x size`` array with every cell
    at the minimum resistance and all inputs at full scale.
    """
    resistances = np.full((size, size), device.r_min)
    inputs = np.full(size, device.read_voltage)
    network = CrossbarNetwork(
        resistances, segment_resistance, sense_resistance, device=device
    )
    solution = network.solve(inputs)
    ideal = ideal_output_voltages(resistances, inputs, sense_resistance)
    return float((ideal[-1] - solution.output_voltages[-1]) / ideal[-1])


def fit_wire_term(
    device: MemristorModel,
    segment_resistances: Sequence[float],
    sizes: Sequence[int] = DEFAULT_FIT_SIZES,
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
    initial_guess: Tuple[float, float] = (0.5, 1.8),
) -> WireFit:
    """Calibrate ``(kappa, beta)`` against the circuit-level solver.

    Parameters
    ----------
    device:
        Memristor model used for the calibration runs.
    segment_resistances:
        Wire segment resistances to sweep (one per interconnect node).
    sizes:
        Square crossbar sizes to sweep.
    sense_resistance:
        Read-circuit sense resistance.
    initial_guess:
        Starting ``(kappa, beta)`` for the least-squares solve.
    """
    samples: List[Tuple[float, int, float]] = []
    for r in segment_resistances:
        for size in sizes:
            solver_eps = solver_worst_column_error(
                device, size, r, sense_resistance
            )
            samples.append((r, size, solver_eps))

    def residuals(params: np.ndarray) -> List[float]:
        kappa, beta = params
        out = []
        for r, size, solver_eps in samples:
            model_eps = analog_error_rate(
                size, size, r, device,
                case="worst",
                sense_resistance=sense_resistance,
                wire_fit=(kappa, beta),
            )
            out.append(model_eps - solver_eps)
        return out

    result = least_squares(
        residuals,
        x0=np.asarray(initial_guess, dtype=float),
        bounds=([1e-3, 1.0], [10.0, 2.5]),
    )
    kappa, beta = (float(result.x[0]), float(result.x[1]))

    points = []
    for r, size, solver_eps in samples:
        model_eps = analog_error_rate(
            size, size, r, device,
            case="worst",
            sense_resistance=sense_resistance,
            wire_fit=(kappa, beta),
        )
        points.append(
            FitPoint(
                segment_resistance=r,
                size=size,
                solver_error=solver_eps,
                model_error=model_eps,
            )
        )
    residual_values = [p.model_error - p.solver_error for p in points]
    rmse = math.sqrt(
        sum(v * v for v in residual_values) / len(residual_values)
    )
    return WireFit(kappa=kappa, beta=beta, rmse=rmse, points=tuple(points))
