"""Analog error model of one crossbar column (Eq. 9-11, Eq. 16).

With equal input voltages the output of a column is the divider of Eq. 9::

    V_o = V_i * R_s / (R_parallel + R_s)

Folding the per-segment wire resistance into the column (Eq. 10) gives
``R_parallel ~ (R + (M+N) r) / M``, and re-evaluating each cell at its
operating voltage replaces the ideal resistance ``R_idl`` with the
nonlinear ``R_act``.  The signed relative output error (Eq. 11 divided by
the ideal output) is then::

    eps = ((M+N) r + R_act - R_idl) / (R_act + (M+N) r + R_s M)

The wire term is positive and grows with crossbar size; the nonlinearity
term is negative and grows as crossbars *shrink* (a small column divides
less of the input to the output, biasing every cell harder).  Their
cancellation produces the U-shaped error-vs-size curve of Table V, with
the minimum near size 64 for the reference RRAM at the 45 nm wire node.

Like the paper, the wire term is *fitted* against circuit-level
simulation ("we use M, N, and r as variables to simulate the error of
output voltages on SPICE, and fit the relationship according to
Equ. (11)"): the effective series wire resistance of the worst column is

    W = kappa * r * (M + N)**beta

with ``kappa ~ 0.22`` and ``beta ~ 1.99`` obtained by least squares
against :mod:`repro.spice` (see :mod:`repro.accuracy.fitting`); the
near-quadratic exponent reflects the accumulation of IR drop along the
shared word/bit lines.  The fit RMSE is ~1e-4, well inside the paper's
reported 0.01.

Device variation (Eq. 16) enters as a ``(1 +/- sigma)`` factor on
``R_act``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tech.memristor import MemristorModel

# Equivalent sensing resistance of the reference read circuit (ohms).  A
# fixed R_s (small against the cell resistances) presents a stable load to
# every column; it is exposed as a parameter everywhere for customization.
DEFAULT_SENSE_RESISTANCE = 1000.0

# Fitted effective-wire-term constants (see module docstring and
# repro.accuracy.fitting.fit_wire_term, which re-derives them from the
# circuit-level solver).
WIRE_FIT_COEFFICIENT = 0.22
WIRE_FIT_EXPONENT = 2.0

_CASES = ("worst", "average")


def _case_parameters(
    device: MemristorModel, case: str
) -> Tuple[float, float]:
    """Return ``(R_idl, V_in)`` for the requested estimation case.

    Worst case (Sec. VI.C): every cell at the minimum resistance, inputs
    at full scale.  Average case: harmonic-mean resistance (the same
    substitution the power model makes) and half-scale inputs.
    """
    if case == "worst":
        return device.r_min, device.read_voltage
    if case == "average":
        return device.harmonic_mean_resistance, device.read_voltage / 2.0
    raise ValueError(f"case must be one of {_CASES}, got {case!r}")


def _wire_term(
    rows: int,
    cols: int,
    segment_resistance: float,
    kappa: float = WIRE_FIT_COEFFICIENT,
    beta: float = WIRE_FIT_EXPONENT,
) -> float:
    """Effective series wire resistance of the worst column.

    The fitted generalisation ``kappa * r * (M+N)**beta`` of the paper's
    ``(M+N) r`` term (see module docstring).
    """
    if rows < 1 or cols < 1:
        raise ValueError("crossbar dimensions must be >= 1")
    if segment_resistance < 0:
        raise ValueError("segment_resistance must be non-negative")
    return kappa * segment_resistance * float(rows + cols) ** beta


def cell_operating_voltage(
    rows: int,
    cols: int,
    segment_resistance: float,
    device: MemristorModel,
    case: str = "worst",
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
    wire_fit: Optional[Tuple[float, float]] = None,
) -> float:
    """Ideal-operating-point voltage across one cell (Sec. VI.A step 1).

    Computed with the *ideal* resistances (linearised network); the
    nonlinear ``R_act`` is then evaluated at this voltage.
    """
    r_idl, v_in = _case_parameters(device, case)
    wire = _wire_term(rows, cols, segment_resistance, *(wire_fit or ()))
    denominator = r_idl + wire + sense_resistance * rows
    return v_in * r_idl / denominator


def _actual_resistance(
    rows: int,
    cols: int,
    segment_resistance: float,
    device: MemristorModel,
    case: str,
    sense_resistance: float,
    sigma_sign: float,
    wire_fit: Optional[Tuple[float, float]] = None,
) -> Tuple[float, float, float, float]:
    """Return ``(R_idl, R_act, wire, V_in)`` with nonlinearity and
    variation applied to ``R_act``."""
    r_idl, v_in = _case_parameters(device, case)
    wire = _wire_term(rows, cols, segment_resistance, *(wire_fit or ()))
    v_cell = cell_operating_voltage(
        rows, cols, segment_resistance, device, case, sense_resistance,
        wire_fit,
    )
    r_act = device.actual_resistance(r_idl, v_cell)
    if sigma_sign:
        r_act *= 1.0 + sigma_sign * device.sigma
    return r_idl, r_act, wire, v_in


def output_voltage_ideal(
    rows: int,
    device: MemristorModel,
    case: str = "worst",
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
) -> float:
    """Ideal column output voltage (Eq. 9 with r = 0, ohmic cells)."""
    r_idl, v_in = _case_parameters(device, case)
    return v_in * sense_resistance * rows / (r_idl + sense_resistance * rows)


def output_voltage_actual(
    rows: int,
    cols: int,
    segment_resistance: float,
    device: MemristorModel,
    case: str = "worst",
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
    sigma_sign: float = 0.0,
    wire_fit: Optional[Tuple[float, float]] = None,
) -> float:
    """Column output with wire resistance and nonlinearity (Eq. 9 + 10)."""
    r_idl, r_act, wire, v_in = _actual_resistance(
        rows, cols, segment_resistance, device, case, sense_resistance,
        sigma_sign, wire_fit,
    )
    rs_m = sense_resistance * rows
    return v_in * rs_m / (r_act + wire + rs_m)


def voltage_deviation(
    rows: int,
    cols: int,
    segment_resistance: float,
    device: MemristorModel,
    case: str = "worst",
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
    sigma_sign: float = 0.0,
    wire_fit: Optional[Tuple[float, float]] = None,
) -> float:
    """``V_o,idl - V_o,act`` per Eq. 11 (Eq. 16 when ``sigma_sign != 0``).

    Positive when the wire term dominates (output sags below ideal),
    negative when the nonlinearity dominates (cells conduct harder than
    ideal and the output overshoots).
    """
    ideal = output_voltage_ideal(rows, device, case, sense_resistance)
    actual = output_voltage_actual(
        rows, cols, segment_resistance, device, case, sense_resistance,
        sigma_sign, wire_fit,
    )
    return ideal - actual


def analog_error_rate(
    rows: int,
    cols: int,
    segment_resistance: float,
    device: MemristorModel,
    case: str = "worst",
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
    sigma_sign: float = 0.0,
    wire_fit: Optional[Tuple[float, float]] = None,
) -> float:
    """Signed relative output error ``(V_idl - V_act) / V_idl``.

    ``wire_fit`` optionally overrides the fitted ``(kappa, beta)`` wire
    constants (used during calibration, :mod:`repro.accuracy.fitting`).
    This is the ``epsilon`` fed into the digital-deviation formulas
    (Eq. 12-14).  Callers interested in magnitude take ``abs()``.
    """
    r_idl, r_act, wire, _v_in = _actual_resistance(
        rows, cols, segment_resistance, device, case, sense_resistance,
        sigma_sign, wire_fit,
    )
    rs_m = sense_resistance * rows
    return (wire + r_act - r_idl) / (r_act + wire + rs_m)


def solver_reference_errors(
    device: MemristorModel,
    size: int,
    segment_resistance: float,
    input_vectors: np.ndarray,
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
) -> np.ndarray:
    """Circuit-level signed relative errors for a batch of input vectors.

    The empirical counterpart of :func:`analog_error_rate`: builds the
    paper's worst-case array (every cell at ``R_min``), drives it with
    each row of ``input_vectors`` (shape ``(K, size)``) through the
    batched :meth:`~repro.spice.solver.CrossbarNetwork.solve_many`
    path, and returns the per-column signed relative deviation from the
    ideal divider, shape ``(K, size)``.  Useful for validating the
    Eq. 11 closed form over many operating points at the cost of a
    single assembly instead of ``K`` independent solves.
    """
    # Imported here to keep the closed-form module import-light; the
    # solver pulls in scipy.
    from repro.spice.solver import CrossbarNetwork, ideal_output_voltages

    input_vectors = np.atleast_2d(np.asarray(input_vectors, dtype=float))
    resistances = np.full((size, size), device.r_min)
    network = CrossbarNetwork(
        resistances, segment_resistance, sense_resistance, device=device
    )
    batch = network.solve_many(input_vectors)
    ideal = ideal_output_voltages(
        resistances, input_vectors, sense_resistance
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        errors = (ideal - batch.output_voltages) / ideal
    return np.where(np.isfinite(errors), errors, 0.0)
