"""Behavior-level computing-accuracy model (Sec. VI of the paper).

The model replaces the circuit-level solve of ``2MN`` nonlinear Kirchhoff
equations with three approximations:

1. **Decouple the nonlinearity** — find the operating point with ideal
   (ohmic) resistances, then re-evaluate each cell at that voltage
   (:func:`~repro.accuracy.interconnect.cell_operating_voltage` /
   ``R_act``).
2. **Resistance-only interconnect** — Eq. 9-11 collapse the crossbar into a
   column divider with an ``(M+N)r`` wire term
   (:func:`~repro.accuracy.interconnect.analog_error_rate`).
3. **Average / worst case only** — Eq. 12-14 convert the analog deviation
   into digital read error rates (:mod:`~repro.accuracy.quantization`),
   Eq. 15 propagates them layer by layer
   (:mod:`~repro.accuracy.propagation`), and Eq. 16 adds device variation
   (:mod:`~repro.accuracy.variation`).

:class:`~repro.accuracy.model.AccuracyModel` is the high-level entry point
used by the hierarchy and the design-space explorer.
"""

from repro.accuracy.interconnect import (
    DEFAULT_SENSE_RESISTANCE,
    analog_error_rate,
    cell_operating_voltage,
    output_voltage_actual,
    output_voltage_ideal,
    voltage_deviation,
)
from repro.accuracy.quantization import (
    avg_digital_deviation,
    avg_error_rate,
    max_digital_deviation,
    max_error_rate,
)
from repro.accuracy.propagation import combine_error_rates, propagate_layers
from repro.accuracy.fitting import WireFit, fit_wire_term, solver_worst_column_error
from repro.accuracy.variation import sample_resistances, variation_error_bounds
from repro.accuracy.model import AccuracyModel, LayerAccuracy
from repro.accuracy.montecarlo import MonteCarloResult, bound_check, run_monte_carlo
from repro.accuracy.sensitivity import (
    SensitivityReport,
    sensitivity_analysis,
    sensitivity_sweep,
)

__all__ = [
    "DEFAULT_SENSE_RESISTANCE",
    "analog_error_rate",
    "cell_operating_voltage",
    "output_voltage_actual",
    "output_voltage_ideal",
    "voltage_deviation",
    "avg_digital_deviation",
    "avg_error_rate",
    "max_digital_deviation",
    "max_error_rate",
    "combine_error_rates",
    "propagate_layers",
    "WireFit",
    "fit_wire_term",
    "solver_worst_column_error",
    "sample_resistances",
    "variation_error_bounds",
    "AccuracyModel",
    "LayerAccuracy",
    "MonteCarloResult",
    "run_monte_carlo",
    "bound_check",
    "SensitivityReport",
    "sensitivity_analysis",
    "sensitivity_sweep",
]
