"""Sensitivity analysis of the accuracy model.

Design guidance beyond single-point estimates: how strongly does the
crossbar error rate respond to each physical parameter?  The analysis
perturbs one parameter at a time around a design point and reports the
normalised sensitivity

    S_x = (d eps / eps) / (d x / x)

so ``S = 1`` means a 1 % parameter change moves the error by 1 %.  The
dominant knob changes across the U-curve: wire resistance dominates for
large crossbars, the device nonlinearity for small ones — the same
dichotomy the paper uses to explain Table V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.accuracy.interconnect import (
    DEFAULT_SENSE_RESISTANCE,
    analog_error_rate,
)
from repro.errors import ConfigError
from repro.tech.memristor import MemristorModel

PARAMETERS = ("segment_resistance", "sense_resistance", "nonlinearity_v0",
              "r_min")


@dataclass(frozen=True)
class SensitivityReport:
    """Normalised sensitivities of |eps| at one design point."""

    size: int
    epsilon: float
    sensitivities: Dict[str, float]

    def dominant(self) -> str:
        """The parameter with the largest |sensitivity|."""
        return max(
            self.sensitivities, key=lambda k: abs(self.sensitivities[k])
        )


def _epsilon(
    device: MemristorModel,
    size: int,
    segment_resistance: float,
    sense_resistance: float,
) -> float:
    return analog_error_rate(
        size, size, segment_resistance, device,
        sense_resistance=sense_resistance,
    )


def sensitivity_analysis(
    device: MemristorModel,
    size: int,
    segment_resistance: float,
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
    relative_step: float = 0.01,
) -> SensitivityReport:
    """Central-difference sensitivities of the signed error rate.

    Parameters
    ----------
    device:
        The memristor model at the design point.
    size:
        Square crossbar size.
    segment_resistance:
        Wire segment resistance ``r``.
    relative_step:
        Relative perturbation per parameter (default 1 %).
    """
    if size < 1:
        raise ConfigError("size must be >= 1")
    if not 0 < relative_step < 0.5:
        raise ConfigError("relative_step must lie in (0, 0.5)")

    base = _epsilon(device, size, segment_resistance, sense_resistance)
    if base == 0.0:
        raise ConfigError(
            "error rate is exactly zero at this point; sensitivities "
            "are undefined (perturb the design point)"
        )

    def central(plus: float, minus: float) -> float:
        return (plus - minus) / (2 * relative_step * base)

    h = relative_step
    sensitivities = {}

    sensitivities["segment_resistance"] = central(
        _epsilon(device, size, segment_resistance * (1 + h),
                 sense_resistance),
        _epsilon(device, size, segment_resistance * (1 - h),
                 sense_resistance),
    ) if segment_resistance > 0 else 0.0

    sensitivities["sense_resistance"] = central(
        _epsilon(device, size, segment_resistance,
                 sense_resistance * (1 + h)),
        _epsilon(device, size, segment_resistance,
                 sense_resistance * (1 - h)),
    )

    v0 = device.nonlinearity_v0
    if v0 != float("inf"):
        sensitivities["nonlinearity_v0"] = central(
            _epsilon(device.with_overrides(nonlinearity_v0=v0 * (1 + h)),
                     size, segment_resistance, sense_resistance),
            _epsilon(device.with_overrides(nonlinearity_v0=v0 * (1 - h)),
                     size, segment_resistance, sense_resistance),
        )
    else:
        sensitivities["nonlinearity_v0"] = 0.0

    sensitivities["r_min"] = central(
        _epsilon(device.with_overrides(r_min=device.r_min * (1 + h)),
                 size, segment_resistance, sense_resistance),
        _epsilon(device.with_overrides(r_min=device.r_min * (1 - h)),
                 size, segment_resistance, sense_resistance),
    )

    return SensitivityReport(
        size=size, epsilon=base, sensitivities=sensitivities
    )


def sensitivity_sweep(
    device: MemristorModel,
    sizes,
    segment_resistance: float,
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
):
    """Sensitivity reports across crossbar sizes.

    Shows the regime change along the Table-V U-curve: the wire term
    dominates the large-size branch, the device nonlinearity the
    small-size branch.
    """
    return [
        sensitivity_analysis(
            device, size, segment_resistance, sense_resistance
        )
        for size in sizes
    ]
