"""High-level accuracy model: configuration in, network error rates out.

:class:`AccuracyModel` connects the pieces of this package to a
:class:`~repro.config.SimConfig`: it derives the wire segment resistance
from the interconnect node and cell pitch, evaluates the per-crossbar
analog error (worst and average case, variation-aware when the
configuration carries a ``device_sigma``), and propagates it across the
network's layers per Eq. 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.accuracy.interconnect import (
    DEFAULT_SENSE_RESISTANCE,
    analog_error_rate,
)
from repro.accuracy.propagation import propagate_layers
from repro.accuracy.variation import worst_variation_error
from repro.config import SimConfig


@dataclass(frozen=True)
class LayerAccuracy:
    """Accuracy summary for a cascade of neuromorphic layers.

    Attributes
    ----------
    analog_epsilon_worst / analog_epsilon_average:
        Per-crossbar analog error-rate magnitude in the two cases.
    worst_by_layer / average_by_layer:
        Digital error rate after each layer (Eq. 15 propagation).
    """

    analog_epsilon_worst: float
    analog_epsilon_average: float
    worst_by_layer: List[float]
    average_by_layer: List[float]

    @property
    def worst_error_rate(self) -> float:
        """Final worst-case digital error rate of the accelerator."""
        return self.worst_by_layer[-1] if self.worst_by_layer else 0.0

    @property
    def average_error_rate(self) -> float:
        """Final average digital error rate of the accelerator."""
        return self.average_by_layer[-1] if self.average_by_layer else 0.0

    @property
    def relative_accuracy(self) -> float:
        """``1 - average_error_rate`` (the paper's "relative accuracy")."""
        return 1.0 - self.average_error_rate


class AccuracyModel:
    """Evaluate the computing accuracy of a configured design.

    Parameters
    ----------
    config:
        The design configuration (crossbar size, wire node, device, ...).
    sense_resistance:
        Equivalent sensing resistance of the read circuit.
    """

    def __init__(
        self,
        config: SimConfig,
        sense_resistance: float = DEFAULT_SENSE_RESISTANCE,
    ) -> None:
        self.config = config
        self.sense_resistance = sense_resistance
        self.device = config.device
        pitch = self.device.cell_pitch(config.cell_type)
        self.segment_resistance = config.wire.segment_resistance(pitch)

    # ------------------------------------------------------------------
    def crossbar_epsilon(
        self,
        rows: Optional[int] = None,
        cols: Optional[int] = None,
        case: str = "worst",
    ) -> float:
        """Analog error-rate magnitude of one crossbar.

        Defaults to the configured (square) crossbar size.  When the
        configuration carries a nonzero ``device_sigma`` the worst value
        over the variation band (Eq. 16) is returned.
        """
        rows = self.config.crossbar_size if rows is None else rows
        cols = self.config.crossbar_size if cols is None else cols
        if self.device.sigma > 0:
            return worst_variation_error(
                rows, cols, self.segment_resistance, self.device, case,
                self.sense_resistance,
            )
        return abs(
            analog_error_rate(
                rows, cols, self.segment_resistance, self.device, case,
                self.sense_resistance,
            )
        )

    def signed_crossbar_epsilon(
        self,
        rows: Optional[int] = None,
        cols: Optional[int] = None,
        case: str = "worst",
    ) -> float:
        """Signed analog error rate (sign reveals which term dominates)."""
        rows = self.config.crossbar_size if rows is None else rows
        cols = self.config.crossbar_size if cols is None else cols
        return analog_error_rate(
            rows, cols, self.segment_resistance, self.device, case,
            self.sense_resistance,
        )

    # ------------------------------------------------------------------
    def network_accuracy(
        self,
        num_layers: Optional[int] = None,
        layer_sizes: Optional[Sequence] = None,
    ) -> LayerAccuracy:
        """Propagated accuracy of a multi-layer network.

        Either pass ``num_layers`` (all layers use the configured crossbar
        size) or ``layer_sizes`` — per-layer effective crossbar fills,
        each an int (square fill) or a ``(rows, cols)`` pair for layers
        that map onto rectangular tile regions.
        """
        if layer_sizes is None:
            if num_layers is None:
                num_layers = self.config.network_depth or 1
            layer_sizes = [self.config.crossbar_size] * num_layers
        if not layer_sizes:
            raise ValueError("network needs at least one layer")

        shapes = [
            (size, size) if isinstance(size, int) else (
                int(size[0]), int(size[1])
            )
            for size in layer_sizes
        ]
        worst_eps = [
            self.crossbar_epsilon(rows=rows, cols=cols, case="worst")
            for rows, cols in shapes
        ]
        avg_eps = [
            self.crossbar_epsilon(rows=rows, cols=cols, case="average")
            for rows, cols in shapes
        ]
        k = self.config.read_levels
        return LayerAccuracy(
            analog_epsilon_worst=worst_eps[0],
            analog_epsilon_average=avg_eps[0],
            worst_by_layer=propagate_layers(worst_eps, k, case="worst"),
            average_by_layer=propagate_layers(avg_eps, k, case="average"),
        )
