"""Performance accounting: the quantities MNSIM reports and how they compose.

Every module in the library reduces to a :class:`Performance` record holding
the four metrics of the paper — **area**, **dynamic energy per operation**,
**leakage power**, and **worst-case latency** — plus helpers that implement
the paper's aggregation rule (Sec. IV.A): a higher level's performance is the
composition of its children, with latency combined *serially* along the
critical path and *in parallel* across replicated structures.

:class:`ReportNode` builds the hierarchical report tree that the examples
print, mirroring the Accelerator -> Bank -> Unit -> module structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.units import fmt_si


@dataclass(frozen=True)
class Performance:
    """Area / energy / leakage / latency of one module or subtree.

    Attributes
    ----------
    area:
        Silicon area in m^2.
    dynamic_energy:
        Dynamic energy in joules consumed by one operation (for the
        accelerator level: one input sample).
    leakage_power:
        Static power in watts.
    latency:
        Worst-case latency in seconds of one operation (Sec. IV.A).
    """

    area: float = 0.0
    dynamic_energy: float = 0.0
    leakage_power: float = 0.0
    latency: float = 0.0

    def __post_init__(self) -> None:
        for name in ("area", "dynamic_energy", "leakage_power", "latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def serial(self, other: "Performance") -> "Performance":
        """Compose with a module later on the same critical path.

        Areas, energies and leakage add; latencies add (cascade).
        """
        return Performance(
            area=self.area + other.area,
            dynamic_energy=self.dynamic_energy + other.dynamic_energy,
            leakage_power=self.leakage_power + other.leakage_power,
            latency=self.latency + other.latency,
        )

    def parallel(self, other: "Performance") -> "Performance":
        """Compose with a module operating concurrently.

        Areas, energies and leakage add; latency is the max (worst case).
        """
        return Performance(
            area=self.area + other.area,
            dynamic_energy=self.dynamic_energy + other.dynamic_energy,
            leakage_power=self.leakage_power + other.leakage_power,
            latency=max(self.latency, other.latency),
        )

    def replicate(self, count: int) -> "Performance":
        """``count`` concurrent copies of this module (same latency)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return Performance(
            area=self.area * count,
            dynamic_energy=self.dynamic_energy * count,
            leakage_power=self.leakage_power * count,
            latency=self.latency if count else 0.0,
        )

    def repeat(self, times: int) -> "Performance":
        """The same hardware used ``times`` sequential cycles.

        Area and leakage are unchanged; energy and latency multiply.
        """
        if times < 0:
            raise ValueError("times must be non-negative")
        return Performance(
            area=self.area,
            dynamic_energy=self.dynamic_energy * times,
            leakage_power=self.leakage_power,
            latency=self.latency * times,
        )

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def total_energy(self, duration: Optional[float] = None) -> float:
        """Dynamic + leakage energy over ``duration`` (default: latency)."""
        if duration is None:
            duration = self.latency
        return self.dynamic_energy + self.leakage_power * duration

    @property
    def average_power(self) -> float:
        """Average power (W) over one operation; 0 if latency is 0."""
        if self.latency == 0:
            return self.leakage_power
        return self.total_energy() / self.latency

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return (
            f"area={fmt_si(self.area, 'm^2')}, "
            f"energy={fmt_si(self.dynamic_energy, 'J')}, "
            f"leakage={fmt_si(self.leakage_power, 'W')}, "
            f"latency={fmt_si(self.latency, 's')}"
        )


def serial_sum(parts: Iterable[Performance]) -> Performance:
    """Serial composition (latencies add) of an iterable of parts."""
    total = Performance()
    for part in parts:
        total = total.serial(part)
    return total


def parallel_sum(parts: Iterable[Performance]) -> Performance:
    """Parallel composition (latency = max) of an iterable of parts."""
    total = Performance()
    for part in parts:
        total = total.parallel(part)
    return total


@dataclass
class ReportNode:
    """A node of the hierarchical performance report.

    ``name`` identifies the module (e.g. ``"bank[2]/adder_tree"``);
    ``performance`` is the aggregate for this subtree; ``children`` hold
    sub-reports; ``notes`` carry free-form annotations (parallelism degree,
    crossbar count, ...).
    """

    name: str
    performance: Performance
    children: List["ReportNode"] = field(default_factory=list)
    notes: str = ""

    def add(self, child: "ReportNode") -> "ReportNode":
        """Append a child node and return it (builder convenience)."""
        self.children.append(child)
        return child

    def find(self, name: str) -> Optional["ReportNode"]:
        """Depth-first search for a node by exact name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def render(self, indent: int = 0, max_depth: Optional[int] = None) -> str:
        """Human-readable tree rendering of this report."""
        pad = "  " * indent
        note = f"  [{self.notes}]" if self.notes else ""
        lines = [f"{pad}{self.name}: {self.performance}{note}"]
        if max_depth is None or indent < max_depth:
            for child in self.children:
                lines.append(child.render(indent + 1, max_depth))
        return "\n".join(lines)


def format_run_metrics(metrics) -> str:
    """Render engine run metrics (``repro.runtime``) as a table.

    Accepts a :class:`~repro.runtime.metrics.RunMetrics` or its
    :meth:`to_dict` mapping; used by ``repro runtime-stats`` and
    available to any report that wants to surface sweep cost.
    """
    data = metrics.to_dict() if hasattr(metrics, "to_dict") else dict(metrics)
    rows = [
        ["execution mode", str(data.get("mode", "serial"))],
        ["worker processes", str(data.get("workers", 1))],
    ]
    for name, value in sorted(dict(data.get("counters", {})).items()):
        rows.append([name.replace("_", " "), str(value)])
    for name, seconds in sorted(dict(data.get("stages", {})).items()):
        rows.append([f"{name} time", fmt_si(float(seconds), "s")])
    rows.append(["total time", fmt_si(float(data.get("total_seconds", 0.0)), "s")])
    throughput = float(data.get("jobs_per_second", 0.0))
    if throughput:
        rows.append(["throughput", f"{throughput:,.1f} jobs/s"])
    return format_table(["runtime metric", "value"], rows)


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Render a simple aligned ASCII table (used by benches and examples)."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*(str(c) for c in row)) for row in rows)
    return "\n".join(lines)
