"""Grandfathered-findings baseline for ``repro lint``.

The lint gate fails CI on *new* findings only: violations that predate
the rule (and have been argued safe) live in a checked-in baseline
file and are subtracted from every run.  The intended workflow:

1. a new rule lands and surfaces existing violations;
2. real bugs are fixed in the same PR; the few deliberate cases are
   grandfathered with ``repro lint --update-baseline`` plus a
   hand-written one-line justification in the file;
3. from then on the baseline only ever shrinks — deleting an entry is
   a cleanup, adding one needs the justification to survive review.

Fingerprints are **location-free**: ``rule : module : message``, with
an occurrence index to tell apart repeated identical findings in one
module.  Moving a function around, reformatting, or adding unrelated
code therefore never churns the baseline; fixing or duplicating a
violation does.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.analysis.core import Finding

__all__ = ["Baseline", "fingerprint_findings", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "lint-baseline.json"

_FORMAT_VERSION = 1


def fingerprint_findings(
    findings: Sequence[Finding],
) -> List[Tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    The occurrence index disambiguates identical (rule, module,
    message) triples: findings are sorted by location first, so the
    n-th occurrence keeps its fingerprint as long as the *count* of
    identical findings before it is unchanged.
    """
    ordered = sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    )
    seen: Dict[Tuple[str, str, str], int] = {}
    result: List[Tuple[Finding, str]] = []
    for finding in ordered:
        identity = (finding.rule, finding.module, finding.message)
        occurrence = seen.get(identity, 0)
        seen[identity] = occurrence + 1
        digest = hashlib.sha256(
            f"{finding.rule}:{finding.module}:{finding.message}"
            f":{occurrence}".encode("utf-8")
        ).hexdigest()[:16]
        result.append((finding, digest))
    return result


@dataclass
class Baseline:
    """The set of grandfathered findings, keyed by fingerprint."""

    entries: Dict[str, dict] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version in {path}: "
                f"{payload.get('version')!r}"
            )
        return cls(entries={
            entry["fingerprint"]: entry for entry in payload["entries"]
        })

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": sorted(
                self.entries.values(),
                key=lambda e: (e["rule"], e["module"], e["fingerprint"]),
            ),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # ------------------------------------------------------------------
    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, grandfathered)."""
        new: List[Finding] = []
        matched: List[Finding] = []
        for finding, digest in fingerprint_findings(findings):
            (matched if digest in self.entries else new).append(finding)
        return new, matched

    def stale_fingerprints(
        self, findings: Sequence[Finding]
    ) -> List[str]:
        """Baseline entries whose violation no longer exists (fixed)."""
        live = {digest for _, digest in fingerprint_findings(findings)}
        return sorted(fp for fp in self.entries if fp not in live)

    def update_from(
        self,
        findings: Sequence[Finding],
        *,
        justification: str = "grandfathered by --update-baseline",
        prune: bool = True,
    ) -> None:
        """Absorb every current finding; keep hand-written justifications
        for entries that already existed, drop fixed ones when ``prune``.

        Justifications are matched by fingerprint first, then by
        ``(rule, message)`` for entries whose fingerprint no longer
        matches anything live: a module rename changes the fingerprint
        (the module is part of the hash) but not the violation, and
        silently downgrading its hand-written justification to the
        default would lose the argument that got it grandfathered.
        """
        paired = fingerprint_findings(findings)
        live = {digest for _, digest in paired}
        orphans: Dict[Tuple[str, str], List[dict]] = {}
        for digest in sorted(self.entries):
            if digest in live:
                continue
            entry = self.entries[digest]
            orphans.setdefault(
                (entry["rule"], entry["message"]), []
            ).append(entry)
        fresh: Dict[str, dict] = {}
        for finding, digest in paired:
            existing = self.entries.get(digest)
            if existing is None:
                moved = orphans.get((finding.rule, finding.message))
                if moved:
                    existing = moved.pop(0)
            fresh[digest] = {
                "fingerprint": digest,
                "rule": finding.rule,
                "module": finding.module,
                "message": finding.message,
                "justification": (
                    existing["justification"] if existing
                    else justification
                ),
            }
        if prune:
            self.entries = fresh
        else:
            self.entries.update(fresh)
