"""Project-specific static analysis (``repro lint``).

An AST-based lint framework encoding the correctness invariants this
repo's subsystems rely on — determinism of cached/seeded paths,
cache-key purity, fork-safe module state, broad-except hygiene, and
units discipline — as machine-checked rules instead of tribal
knowledge.  See DESIGN.md S20 for the catalogue and the
rule-authoring / baseline workflow, and :mod:`repro.analysis.rules`
for the implementations.

Public surface:

* :func:`analyze_paths` / :func:`analyze_source` — run rules, get
  :class:`Finding` lists (what the pytest gate uses);
* :class:`Baseline` — the grandfather list CI subtracts;
* :func:`run_lint` — the ``repro lint`` subcommand body.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    fingerprint_findings,
)
from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    register,
)
from repro.analysis.lint import add_lint_arguments, run_lint
from repro.analysis.report import render_json, render_tree

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "Baseline",
    "Finding",
    "ModuleInfo",
    "Rule",
    "add_lint_arguments",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "fingerprint_findings",
    "register",
    "render_json",
    "render_tree",
    "run_lint",
]
