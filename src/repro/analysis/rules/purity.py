"""R2 — cache-key purity.

Job keys are content hashes of a canonical JSON serialization
(:func:`repro.runtime.jobs.canonical`).  The serializer raises on
unknown types at runtime, but only on the code path actually executed
— a lambda smuggled into a key expression in a rarely-hit branch is a
latent crash, and worse, anything whose ``repr``/identity leaks into a
key makes the key unstable across processes (the PR 1 bug family).

This rule inspects every call to the key-construction entry points
(``canonical``, ``canonical_json``, ``content_key``,
``network_fingerprint``) and flags arguments that can never serialize
stably:

* ``lambda`` expressions and references to locally-defined functions;
* generator expressions (consumed once, identity-keyed);
* open file handles created inline via ``open(...)``.

Values should come from plain data: dataclass fields, numbers,
strings, tuples — the vocabulary ``canonical()`` documents.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.core import Finding, ModuleInfo, Rule, register
from repro.analysis.rules._ast_util import dotted_chain, walk_functions

_KEY_FNS = {"canonical", "canonical_json", "content_key",
            "network_fingerprint"}


def _is_key_call(node: ast.Call) -> bool:
    chain = dotted_chain(node.func)
    return chain is not None and chain[-1] in _KEY_FNS


@register
class CacheKeyPurityRule(Rule):
    rule_id = "R2"
    name = "cache-purity"
    description = (
        "Arguments to canonical()/content_key() must be serializable "
        "data — no lambdas, function refs, generators, or open handles."
    )
    scope = ("repro",)

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        function_names: Set[str] = {
            fn.name for fn in walk_functions(info.tree)
        }
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call) or not _is_key_call(node):
                continue
            arguments = [a.value if isinstance(a, ast.Starred) else a
                         for a in node.args]
            arguments += [kw.value for kw in node.keywords]
            for argument in arguments:
                yield from self._check_argument(info, argument,
                                                function_names)

    def _check_argument(
        self, info: ModuleInfo, argument: ast.AST, function_names: Set[str]
    ) -> Iterator[Finding]:
        for sub in ast.walk(argument):
            if isinstance(sub, ast.Lambda):
                yield info.finding(
                    self, sub,
                    "lambda passed into a cache-key expression; keys "
                    "must be built from serializable data, not code",
                )
            elif isinstance(sub, ast.GeneratorExp):
                yield info.finding(
                    self, sub,
                    "generator expression in a cache-key expression; "
                    "materialize it (tuple/list) so the key is stable "
                    "and re-hashable",
                )
            elif (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "open"):
                yield info.finding(
                    self, sub,
                    "open() handle in a cache-key expression; hash "
                    "the file's content or path string instead",
                )
            elif (isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and sub.id in function_names):
                yield info.finding(
                    self, sub,
                    f"function reference {sub.id!r} in a cache-key "
                    "expression; pass the data it produces, not the "
                    "callable",
                )
