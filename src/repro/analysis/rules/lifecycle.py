"""R8 — thread and executor lifecycle (graph-backed).

A non-daemon ``threading.Thread`` that is never joined keeps the
interpreter alive after ``main`` returns; a ``ProcessPoolExecutor`` or
``ThreadingHTTPServer`` created outside a ``with`` block / try-finally
shutdown path leaks worker processes and listening sockets on every
exception between creation and teardown.  Both already carry repo
conventions (the job manager joins its executor threads in
``shutdown``; the runtime pool funnels every executor through
``_shutdown_pool``), so the rule enforces them:

* **threads** — a ``threading.Thread(...)`` construction without
  ``daemon=True`` needs *join evidence*: some ``.join(...)`` attribute
  call in the enclosing class (any method) or, for module-level code,
  anywhere in the module.  Daemon threads are exempt — dying with the
  process is their documented contract.
* **executors / servers** — constructing ``ProcessPoolExecutor`` /
  ``ThreadPoolExecutor`` / ``ThreadingHTTPServer``-family classes
  (including project subclasses, resolved through the index's base
  chains — this is why the rule needs the graph) is legal only when
  the instance is (a) a ``with`` context manager, (b) bound to a name
  or ``self`` attribute on which a ``shutdown()`` / ``close()`` /
  ``server_close()`` / ``terminate()`` call exists in the same class
  or module, or (c) immediately returned by a factory in a module
  that contains such a shutdown call (the warm-pool pattern:
  ``_acquire_pool`` returns, ``_shutdown_pool`` releases).  Anything
  else is a leak-on-exception and is flagged.

The evidence is intentionally name-based rather than flow-based
(``executor.shutdown`` anywhere in the module clears ``executor =
ProcessPoolExecutor(...)``); the rule aims at create-and-forget, not
at proving the teardown runs on every path.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, Rule, register
from repro.analysis.rules._ast_util import dotted_chain

#: Constructors owning OS resources that need an explicit teardown.
_EXECUTOR_NAMES = {
    "ProcessPoolExecutor", "ThreadPoolExecutor",
}
_SERVER_NAMES = {
    "ThreadingHTTPServer", "HTTPServer", "TCPServer", "UDPServer",
    "ThreadingTCPServer", "ThreadingUDPServer",
}

_SHUTDOWN_METHODS = {
    "shutdown", "close", "server_close", "terminate", "join",
}


def _receiver_text(node: ast.AST) -> Optional[str]:
    """``executor`` / ``self._pool`` as text, else None."""
    chain = dotted_chain(node)
    if chain is None:
        return None
    return ".".join(chain)


class _ModuleShutdowns:
    """Names on which a shutdown-ish method is called, per scope."""

    def __init__(self, tree: ast.Module) -> None:
        #: class name -> receiver texts; "" is module scope (module
        #: functions and top level).
        self.by_scope: Dict[str, Set[str]] = {"": set()}
        self.join_scopes: Dict[str, bool] = {"": False}
        self._scan(tree, "")
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self.by_scope[node.name] = set()
                self.join_scopes[node.name] = False
                self._scan(node, node.name)

    def _scan(self, root: ast.AST, scope: str) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method not in _SHUTDOWN_METHODS:
                continue
            receiver = node.func.value
            # ``", ".join(parts)`` is string plumbing, not lifecycle.
            if isinstance(receiver, (ast.Constant, ast.JoinedStr)):
                continue
            if method == "join":
                self.join_scopes[scope] = True
                continue
            text = _receiver_text(receiver)
            if text is not None:
                self.by_scope[scope].add(text)

    def has_shutdown_for(self, scope: str, name: Optional[str]) -> bool:
        candidates = self.by_scope.get(scope, set()) | self.by_scope[""]
        if name is None:
            return bool(candidates)
        return name in candidates

    def has_join(self, scope: str) -> bool:
        return self.join_scopes.get(scope, False) or self.join_scopes[""]


@register
class ThreadLifecycleRule(Rule):
    rule_id = "R8"
    name = "thread-lifecycle"
    description = (
        "Non-daemon threads need a reachable join; executors and "
        "HTTP servers need a with-block or shutdown/close path "
        "(subclasses resolved through the project index)."
    )
    scope = ()
    needs_graph = True

    def check_project(self, project) -> Iterator[Finding]:
        for module_name in sorted(project.modules):
            info = project.modules[module_name]
            shutdowns = _ModuleShutdowns(info.tree)
            resource_classes = self._resource_classes(project, info)
            for function in sorted(
                project.functions_in(module_name),
                key=lambda f: f.qualname,
            ):
                scope = ""
                if function.cls is not None:
                    cls = project.classes.get(function.cls)
                    if cls is not None:
                        scope = cls.name
                yield from self._check_function(
                    project, info, function, scope, shutdowns,
                    resource_classes,
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _resource_classes(project, info) -> Dict[str, str]:
        """Project classes in scope here whose base chain reaches an
        executor/server type, mapped to the matched base name."""
        out: Dict[str, str] = {}
        for cls in project.classes.values():
            for base in project.base_chain(cls.qualname):
                leaf = base.rsplit(".", 1)[-1]
                if leaf in _SERVER_NAMES | _EXECUTOR_NAMES:
                    out[cls.qualname] = leaf
                    break
        return out

    def _check_function(
        self, project, info, function, scope, shutdowns,
        resource_classes,
    ) -> Iterator[Finding]:
        with_exprs, returned = self._contexts(function.node)
        for call in function.calls:
            if call.chain is None:
                continue
            leaf = call.chain[-1]
            resource: Optional[str] = None
            if leaf in _EXECUTOR_NAMES | _SERVER_NAMES and (
                len(call.chain) > 1 or call.kind == "class"
                or leaf == call.chain[0]
            ):
                resource = leaf
            elif call.kind == "class" and call.target in resource_classes:
                resource = resource_classes[call.target]
            if resource is None:
                if leaf == "Thread" and call.chain[0] in (
                    "Thread", "threading"
                ):
                    yield from self._check_thread(
                        info, function, call, scope, shutdowns
                    )
                continue
            if id(call.node) in with_exprs:
                continue
            bound = self._binding(function.node, call.node)
            if bound is not None and shutdowns.has_shutdown_for(
                scope, bound
            ):
                continue
            if id(call.node) in returned or (
                bound is not None and bound in self._returned_names(
                    function.node
                )
            ):
                if shutdowns.has_shutdown_for(scope, None):
                    continue  # factory paired with a teardown path
            yield info.finding(
                self, call.node,
                f"{resource} constructed in {function.name}() outside "
                "a with-block and without a shutdown/close path for "
                "its binding; leaks workers/sockets on any exception "
                "before teardown (wrap in with/try-finally, or pair "
                "the factory with an explicit shutdown helper)",
            )

    def _check_thread(
        self, info, function, call, scope, shutdowns,
    ) -> Iterator[Finding]:
        for keyword in call.node.keywords:
            if keyword.arg == "daemon" and (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return
        if shutdowns.has_join(scope):
            return
        owner = scope or "module"
        yield info.finding(
            self, call.node,
            f"non-daemon Thread created in {function.name}() with no "
            f".join() anywhere in the enclosing {owner}; the thread "
            "outlives its owner and blocks interpreter exit (join it "
            "in a shutdown path, or make it daemon=True with a "
            "documented reason)",
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _contexts(root: ast.AST) -> Tuple[Set[int], Set[int]]:
        """ids of Call nodes that are withitem contexts / returned."""
        with_exprs: Set[int] = set()
        returned: Set[int] = set()
        for node in ast.walk(root):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        with_exprs.add(id(expr))
            elif isinstance(node, ast.Return) and isinstance(
                node.value, ast.Call
            ):
                returned.add(id(node.value))
        return with_exprs, returned

    @staticmethod
    def _binding(root: ast.AST, call: ast.Call) -> Optional[str]:
        """The name/self-attr a constructor call is assigned to."""
        for node in ast.walk(root):
            if isinstance(node, ast.Assign) and node.value is call:
                for target in node.targets:
                    text = _receiver_text(target)
                    if text is not None:
                        return text
            elif isinstance(node, ast.AnnAssign) and node.value is call:
                return _receiver_text(node.target)
        return None

    @staticmethod
    def _returned_names(root: ast.AST) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(root):
            if isinstance(node, ast.Return) and isinstance(
                node.value, ast.Name
            ):
                out.add(node.value.id)
        return out
