"""R5 — units discipline in the circuit and technology models.

The library computes in SI base units everywhere and converts at the
edges through the named constants of :mod:`repro.units` (``NM``,
``NS``, ``UJ`` ...) or :func:`repro.units.to_unit` /
:func:`repro.units.from_unit`.  A bare ``* 1e-9`` buried in a model is
how unit bugs hide: the reader cannot tell nanometres from nanowatts
from nanoseconds, and a mis-scaled constant shifts every downstream
area/energy table while remaining dimensionally invisible (the
``fo4_delay = fo4_ps * 1e-12`` idiom this rule was written against).

Flagged, inside the ``circuits``/``tech`` packages: a bare
power-of-ten literal from the SI-prefix ladder (1e-15 … 1e9) used as a
multiplication/division operand.  The fix is the named constant —
``fo4_ps * PS`` says what the scale *means* and grep-ably ties every
conversion to one module.  Non-prefix numerics (model coefficients,
``3.1e-3`` with an embedded mantissa) are left alone.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, register

#: SI-prefix scales with their repro.units spelling (for the hint).
_SCALE_NAMES = {
    1e-15: "FF (femto)",
    1e-12: "PS/PJ/PF (pico)",
    1e-9: "NM/NS/NJ/NW (nano)",
    1e-6: "UM/US/UJ/UW (micro)",
    1e-3: "MM/MS/MJ/MW (milli)",
    1e3: "KOHM/KHZ (kilo)",
    1e6: "MOHM/MHZ (mega)",
    1e9: "GHZ (giga)",
}


@register
class UnitsDisciplineRule(Rule):
    rule_id = "R5"
    name = "units"
    description = (
        "Scale factors in circuits/tech arithmetic must be named "
        "repro.units constants, not magic powers of ten."
    )
    scope = ("repro.circuits", "repro.tech")

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Mult, ast.Div)):
                continue
            for operand in (node.left, node.right):
                if (isinstance(operand, ast.Constant)
                        and isinstance(operand.value, float)
                        and operand.value in _SCALE_NAMES):
                    hint = _SCALE_NAMES[operand.value]
                    yield info.finding(
                        self, operand,
                        f"magic scale literal {operand.value:g} in "
                        f"unit arithmetic; use the named repro.units "
                        f"constant ({hint}) so the dimension is "
                        "explicit",
                    )
