"""R3 — fork-safety of module-level mutable state.

The job engine dispatches work to ``ProcessPoolExecutor`` workers; on
fork-start platforms every worker inherits a snapshot of the parent's
module globals at fork time.  Any module-level state that is *mutated
at runtime* in the parent therefore leaks into workers in a
half-consistent state — the PR 3 bug (a live contextvar span and a
populated trace buffer inherited by every worker, corrupting merged
traces) is the canonical example.  The fix convention from that PR: a
worker entry hook (``activate()`` in :mod:`repro.obs.trace`) that
resets the inherited state before any work runs.

This rule generalizes the convention.  In worker-imported packages it
collects module-level names that are

* bound to a mutable container (``{}``/``[]``/``set()``/``dict()``/
  ``deque()``/``ContextVar(...)``/``itertools.count()`` ...), **and**
  mutated inside some function (``.append``/``.clear``/``[k] = v``/
  ``next(...)`` ...), or
* rebound through a ``global`` statement in any function,

and requires each to be referenced from a *reset hook* — a function
whose name contains ``activate``/``reset``/``clear``/``shutdown``/
``teardown``.  Registries filled only at import time (decorator
population, model tables) are read-only afterwards and are not
flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Set

from repro.analysis.core import Finding, ModuleInfo, Rule, register
from repro.analysis.rules._ast_util import dotted_chain, walk_functions

_RESET_HOOK_RE = re.compile(
    r"(activate|reset|clear|shutdown|teardown)", re.IGNORECASE
)

#: Constructors whose result is mutable shared state worth tracking.
_MUTABLE_CTORS = {
    "dict", "list", "set", "defaultdict", "deque", "Counter",
    "OrderedDict", "ContextVar", "count",
}

#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = {
    "append", "extend", "add", "update", "clear", "pop", "popitem",
    "remove", "discard", "insert", "setdefault", "appendleft", "set",
    "reset",
}


def _is_mutable_initializer(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = dotted_chain(node.func)
        return chain is not None and chain[-1] in _MUTABLE_CTORS
    return False


@register
class ForkSafetyRule(Rule):
    rule_id = "R3"
    name = "fork-safety"
    description = (
        "Runtime-mutated module globals in worker-imported packages "
        "must be reset by an activate()-style hook."
    )
    # Everything a worker function's import closure can pull in: the
    # engine itself, the solver stack, observability, and the model
    # layers the campaign/Monte-Carlo workers execute.
    scope = (
        "repro.runtime",
        "repro.obs",
        "repro.spice",
        "repro.faults",
        "repro.accuracy",
        "repro.dse",
        "repro.functional",
        "repro.nn",
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        module_state: Dict[str, ast.AST] = {}
        for statement in info.tree.body:
            targets = []
            if isinstance(statement, ast.Assign):
                targets, value = statement.targets, statement.value
            elif isinstance(statement, ast.AnnAssign) and statement.value:
                targets, value = [statement.target], statement.value
            else:
                continue
            for target in targets:
                if (isinstance(target, ast.Name)
                        and _is_mutable_initializer(value)):
                    module_state[target.id] = statement

        rebindable: Dict[str, ast.AST] = {}
        mutated: Set[str] = set()
        hook_refs: Set[str] = set()
        for function in walk_functions(info.tree):
            is_hook = bool(_RESET_HOOK_RE.search(function.name))
            for node in ast.walk(function):
                if isinstance(node, ast.Global):
                    for name in node.names:
                        rebindable.setdefault(name, function)
                        if is_hook:
                            hook_refs.add(name)
                elif isinstance(node, ast.Name):
                    if is_hook:
                        hook_refs.add(node.id)
                elif isinstance(node, ast.Call):
                    receiver = None
                    if (isinstance(node.func, ast.Attribute)
                            and isinstance(node.func.value, ast.Name)
                            and node.func.attr in _MUTATING_METHODS):
                        receiver = node.func.value.id
                    elif (isinstance(node.func, ast.Name)
                            and node.func.id == "next"
                            and node.args
                            and isinstance(node.args[0], ast.Name)):
                        receiver = node.args[0].id
                    if receiver is not None:
                        mutated.add(receiver)
                elif (isinstance(node, ast.Subscript)
                        and isinstance(node.ctx, (ast.Store, ast.Del))
                        and isinstance(node.value, ast.Name)):
                    mutated.add(node.value.id)

        candidates: Dict[str, ast.AST] = {}
        for name, statement in module_state.items():
            if name in mutated:
                candidates[name] = statement
        for name, function in rebindable.items():
            if name not in candidates and not name.startswith("__"):
                candidates[name] = module_state.get(name, function)

        for name in sorted(candidates):
            if name in hook_refs:
                continue
            node = candidates[name]
            yield info.finding(
                self, node,
                f"module-level mutable state {name!r} is mutated at "
                "runtime but no activate/reset-style hook references "
                "it; forked workers inherit it mid-flight (add it to "
                "the module's reset hook, see repro.obs.trace.activate)",
            )
