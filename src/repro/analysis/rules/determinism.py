"""R1 — determinism in cached and trial paths.

The job engine's result cache replays results purely from the content
hash of a job's inputs (:mod:`repro.runtime.jobs`), and the fault /
Monte-Carlo campaigns promise byte-identical output for a given seed.
Both guarantees die silently the moment a module on those paths reads
the wall clock or draws from a process-global RNG: the result varies
between runs while the cache key says it cannot.

This rule flags, in the scoped packages:

* wall-clock reads — ``time.time()`` / ``time.time_ns()`` and
  ``datetime`` ``now()/utcnow()/today()``.  The monotonic clocks
  (``time.monotonic``, ``time.perf_counter``) stay legal: they are
  used for timeouts and latency measurement, never for results;
* the stdlib process-global RNG — any ``random.<fn>()`` draw;
* numpy's legacy global RNG — ``np.random.rand()`` and friends.
  The modern seeded API (``np.random.default_rng``,
  ``np.random.SeedSequence``, ``Generator`` methods on an injected
  ``rng``) is the sanctioned replacement and is not flagged.

Scope: the packages reachable from cache-key construction and the
seeded trial paths (engine, campaigns, accuracy sampling, DSE, the
config objects their keys serialize, and the service layer whose job
ids are payload fingerprints).  Presentation-layer wall-clock
use (e.g. trace timestamps in :mod:`repro.obs`) is deliberately out of
scope — it never feeds a cache key or a result.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, register
from repro.analysis.rules._ast_util import call_chain

_WALL_CLOCK = {"time", "time_ns"}
_DATETIME_FNS = {"now", "utcnow", "today"}

#: Legacy numpy global-RNG entry points (np.random.<fn>).  The seeded
#: object API (default_rng / SeedSequence / Generator) is allowed.
_NP_LEGACY = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "seed", "get_state", "set_state", "normal", "uniform",
    "choice", "shuffle", "permutation", "standard_normal", "lognormal",
    "exponential", "poisson", "binomial", "beta", "gamma",
}

#: Draws on the stdlib process-global ``random`` module.
_PY_RANDOM = {
    "random", "randint", "randrange", "uniform", "normalvariate",
    "gauss", "choice", "choices", "shuffle", "sample", "seed",
    "betavariate", "expovariate", "lognormvariate", "triangular",
    "getrandbits", "randbytes",
}


@register
class DeterminismRule(Rule):
    rule_id = "R1"
    name = "determinism"
    description = (
        "No wall clock or unseeded global RNG in modules feeding cache "
        "keys or seeded trials; use an injected SeedSequence/Generator."
    )
    scope = (
        "repro.runtime",
        "repro.faults",
        "repro.accuracy",
        "repro.dse",
        "repro.config",
        "repro.nn",
        "repro.functional",
        "repro.service",
        "repro.campaign",
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_chain(node)
            if chain is None or len(chain) < 2:
                continue
            base, fn = chain[-2], chain[-1]
            if base == "time" and fn in _WALL_CLOCK:
                yield info.finding(
                    self, node,
                    f"wall-clock read time.{fn}() in a determinism-"
                    "scoped module; results and cache keys must not "
                    "depend on it (monotonic/perf_counter are fine "
                    "for timeouts)",
                )
            elif base in ("datetime", "date") and fn in _DATETIME_FNS:
                yield info.finding(
                    self, node,
                    f"wall-clock read {base}.{fn}() in a determinism-"
                    "scoped module; pass timestamps in explicitly",
                )
            elif base == "random" and fn in _NP_LEGACY | _PY_RANDOM:
                yield info.finding(
                    self, node,
                    f"global-RNG draw {'.'.join(chain)}() — use an "
                    "injected np.random.Generator seeded via "
                    "SeedSequence so trials replay deterministically",
                )
