"""R9 — cross-module determinism taint (graph-backed R1 upgrade).

R1 flags wall-clock reads and unseeded-RNG draws, but only inside the
modules it scopes — a helper in an unscoped module that returns
``time.time()`` is invisible to it, and so is a scoped module calling
that helper (the call is just a name).  The result cache and the
content-addressed job ids only stay sound if *no path* from a
nondeterministic source reaches cache-key construction, which is a
property of the call graph, not of any single module.

The query: for every **source call site** (``time.time()`` /
``datetime.now()`` / global-RNG draw — the same vocabulary as R1) in
function ``F``, walk *up* the caller chain from ``F`` (the value
returns to its callers) and, from each ancestor ``H``, *down* into
``H``'s callees looking for a **sink** — a call to ``canonical()`` /
``canonical_json()`` / ``content_key()`` / ``fingerprint()``
(resolved to :mod:`repro.runtime.jobs` / payload methods where
possible, matched by name otherwise).  If the combined distance (hops
up + hops down, where a direct sink call in ``H`` is distance 0) is
within ``MAX_HOPS`` = 3, the source is *key-adjacent*: its value
plausibly flows into a fingerprint, and the finding reports the
mixing function and the hop count.

This is deliberately flow-insensitive: it proves adjacency, not a
concrete data path, so a function that reads the clock for a metadata
column *and* computes a content key would trip it even if the two
values never meet.  False negatives are equally explicit: taint does
not cross method calls on receiver *variables* (``cache.put(...)``
leaves ``ResultCache.put_many``'s wall-clock read unreachable from
engine code — the R1 baseline entry covers that site), does not cross
callback registrations or context-manager protocols, and a chain
longer than 3 hops is invisible.  The bound keeps the query both fast
and reviewable (DESIGN.md S25).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.core import Finding, Rule, register
from repro.analysis.rules._ast_util import call_chain
from repro.analysis.rules.determinism import (
    _DATETIME_FNS,
    _NP_LEGACY,
    _PY_RANDOM,
    _WALL_CLOCK,
)

#: Combined up+down call-graph distance a source may sit from a sink.
MAX_HOPS = 3

#: Cache-key sink callables, by suffix name.  ``fingerprint`` covers
#: SimulationPayload.fingerprint / CampaignConfig.fingerprint (job
#: ids); the jobs trio covers every engine cache key.
_SINK_NAMES = {"canonical", "canonical_json", "content_key",
               "fingerprint"}


def _source_calls(node: ast.AST) -> Iterator[Tuple[ast.Call, str]]:
    """(call, description) for R1-vocabulary sources under ``node``,
    not descending into nested function definitions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(child))
        if not isinstance(child, ast.Call):
            continue
        chain = call_chain(child)
        if chain is None or len(chain) < 2:
            continue
        base, fn = chain[-2], chain[-1]
        if base == "time" and fn in _WALL_CLOCK:
            yield child, f"time.{fn}()"
        elif base in ("datetime", "date") and fn in _DATETIME_FNS:
            yield child, f"{base}.{fn}()"
        elif base == "random" and fn in _NP_LEGACY | _PY_RANDOM:
            yield child, f"{'.'.join(chain)}()"


@register
class DeterminismTaintRule(Rule):
    rule_id = "R9"
    name = "determinism-taint"
    description = (
        "Wall-clock/global-RNG sources must not be call-graph "
        "adjacent (<= 3 hops) to canonical()/content_key()/"
        "fingerprint() cache-key sinks, across module boundaries."
    )
    scope = ()  # project-wide: the whole point is seeing past R1 scope
    needs_graph = True

    def check_project(self, project) -> Iterator[Finding]:
        sink_distance = self._sink_distances(project)
        for qualname in sorted(project.functions):
            function = project.functions[qualname]
            info = project.modules.get(function.module)
            if info is None:
                continue
            sources = list(_source_calls(function.node))
            if not sources:
                continue
            hit = self._nearest_sink(project, qualname, sink_distance)
            if hit is None:
                continue
            mixer, sink_name, hops = hit
            for call, description in sources:
                yield info.finding(
                    self, call,
                    f"nondeterministic source {description} in "
                    f"{_short(qualname)} is call-graph adjacent to "
                    f"cache-key sink {sink_name}() via "
                    f"{_short(mixer)} ({hops} hop(s), max "
                    f"{MAX_HOPS}); results and cache keys must be "
                    "pure functions of the payload — pass timestamps "
                    "in explicitly or draw from an injected seeded "
                    "Generator",
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _sink_distances(project) -> Dict[str, Tuple[int, str]]:
        """function qualname -> (downward hops to a sink call, sink
        name); 0 means the function's own body calls a sink."""
        direct: Dict[str, str] = {}
        for qualname, function in project.functions.items():
            for call in function.calls:
                name = None
                if call.target is not None:
                    leaf = call.target.rsplit(".", 1)[-1]
                    if leaf in _SINK_NAMES:
                        name = leaf
                if name is None and call.chain is not None:
                    if call.chain[-1] in _SINK_NAMES:
                        name = call.chain[-1]
                if name is not None:
                    direct[qualname] = name
                    break
        distances: Dict[str, Tuple[int, str]] = {
            qualname: (0, name) for qualname, name in direct.items()
        }
        frontier = list(direct)
        for hop in range(1, MAX_HOPS + 1):
            next_frontier: List[str] = []
            for qualname in frontier:
                _, name = distances[qualname]
                for caller in project.callers(qualname):
                    if caller not in distances:
                        distances[caller] = (hop, name)
                        next_frontier.append(caller)
            frontier = next_frontier
        return distances

    @staticmethod
    def _nearest_sink(
        project, start: str,
        sink_distance: Dict[str, Tuple[int, str]],
    ) -> Optional[Tuple[str, str, int]]:
        """(mixer, sink name, total hops) for the closest sink whose
        mixing ancestor is within MAX_HOPS of ``start``."""
        best: Optional[Tuple[str, str, int]] = None
        ancestors = project.reachable(
            start, max_hops=MAX_HOPS, reverse=True
        )
        for ancestor, up in ancestors.items():
            entry = sink_distance.get(ancestor)
            if entry is None:
                continue
            down, name = entry
            total = up + down
            if total > MAX_HOPS:
                continue
            if best is None or total < best[2]:
                best = (ancestor, name, total)
        return best


def _short(qualname: str) -> str:
    """Drop the shared ``repro.`` prefix for readable messages."""
    return qualname[6:] if qualname.startswith("repro.") else qualname
