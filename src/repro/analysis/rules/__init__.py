"""Built-in rule set; importing this package registers every rule.

Rule catalogue (see DESIGN.md S20 for the full rationale):

====  ===============  ====================================================
id    name             invariant
====  ===============  ====================================================
R1    determinism      no wall clock / unseeded RNG in cached or trial
                       paths — randomness flows from an injected
                       ``SeedSequence``
R2    cache-purity     values fed to ``canonical()``/``content_key()``
                       must be serializable data, not closures/handles
R3    fork-safety      module-level mutable state in worker-imported
                       packages needs an ``activate()``-style reset hook
R4    except-hygiene   no bare/broad ``except`` without logging, a
                       metrics counter, or a re-raise
R5    units            scale arithmetic in ``circuits``/``tech`` uses
                       named ``repro.units`` constants, not magic
                       powers of ten
R6    hot-loop-solve   no point-wise ``.solve()``/``.solve_many()``
                       calls inside loops in ``accuracy``/``dse``/
                       ``faults`` — batch through ``solve_batch``
====  ===============  ====================================================
"""

from repro.analysis.rules import (  # noqa: F401  (registration imports)
    determinism,
    exceptions,
    forksafety,
    hotloop,
    purity,
    units,
)
