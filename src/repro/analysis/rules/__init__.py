"""Built-in rule set; importing this package registers every rule.

Rule catalogue (see DESIGN.md S20 for the full rationale):

====  ===============  ====================================================
id    name             invariant
====  ===============  ====================================================
R1    determinism      no wall clock / unseeded RNG in cached or trial
                       paths — randomness flows from an injected
                       ``SeedSequence``
R2    cache-purity     values fed to ``canonical()``/``content_key()``
                       must be serializable data, not closures/handles
R3    fork-safety      module-level mutable state in worker-imported
                       packages needs an ``activate()``-style reset hook
R4    except-hygiene   no bare/broad ``except`` without logging, a
                       metrics counter, or a re-raise
R5    units            scale arithmetic in ``circuits``/``tech`` uses
                       named ``repro.units`` constants, not magic
                       powers of ten
R6    hot-loop-solve   no point-wise ``.solve()``/``.solve_many()``
                       calls inside loops in ``accuracy``/``dse``/
                       ``faults`` — batch through ``solve_batch``
R7*   lock-discipline  attributes written under a class's lock are not
                       touched bare elsewhere; ``Condition.wait``
                       needs ``wait_for``/a predicate loop; notify
                       holds the lock (call-graph aware)
R8*   thread-lifecycle non-daemon threads are joined; executors and
                       HTTP servers have a with/shutdown path
                       (subclasses via the class hierarchy)
R9*   determinism-     wall-clock/global-RNG sources stay >= 4 call
      taint            hops away from ``canonical()``/``content_key``/
                       ``fingerprint()`` sinks, project-wide
====  ===============  ====================================================

Rules marked ``*`` are project rules (``needs_graph = True``): they
run in the project-analysis pass over the whole-project semantic
index (:mod:`repro.analysis.graph`, DESIGN.md S25) instead of one
module at a time.
"""

from repro.analysis.rules import (  # noqa: F401  (registration imports)
    determinism,
    exceptions,
    forksafety,
    hotloop,
    lifecycle,
    locks,
    purity,
    tainting,
    units,
)
