"""R4 — broad-except hygiene.

A behaviour-level simulator that swallows exceptions silently produces
*wrong numbers*, not crashes — the worst failure mode for a tool whose
output is design decisions.  PR 3 established the convention for the
few places that legitimately catch everything (worker teardown, pickle
probes): every bare/broad handler must leave a trace — a log line, a
metrics counter, or a re-raise.  This rule enforces it.

Flagged: ``except:``, ``except Exception``, ``except BaseException``
(alone or in a tuple) whose handler body contains none of

* a ``raise`` statement,
* a logging call (``_log.warning(...)``, ``logging.error(...)``,
  ``logger.exception(...)`` — any attribute call whose receiver name
  looks like a logger and whose method is a logging level),
* a metrics increment (``metrics.count(...)``, ``...inc(...)``,
  ``...observe(...)``).

Narrow excepts (``except ValueError``) are the preferred fix and are
never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, register

_BROAD = {"Exception", "BaseException"}
_LOG_METHODS = {"debug", "info", "warning", "error", "exception",
                "critical", "log"}
_LOG_RECEIVERS = ("log", "logger", "logging")
_METRIC_METHODS = {"count", "inc", "observe"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in types:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _BROAD:
            return True
    return False


def _handler_is_accounted(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func,
                                                     ast.Attribute):
            method = node.func.attr
            if method in _METRIC_METHODS:
                return True
            if method in _LOG_METHODS:
                receiver = node.func.value
                base = receiver.id if isinstance(receiver, ast.Name) else (
                    receiver.attr if isinstance(receiver, ast.Attribute)
                    else ""
                )
                if any(part in base.lower() for part in _LOG_RECEIVERS):
                    return True
    return False


@register
class ExceptHygieneRule(Rule):
    rule_id = "R4"
    name = "except-hygiene"
    description = (
        "Bare/broad except blocks must log, count a metric, or "
        "re-raise — silent swallowing corrupts results invisibly."
    )
    scope = ("repro",)

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and not _handler_is_accounted(node):
                caught = ("bare except" if node.type is None
                          else "broad except")
                yield info.finding(
                    self, node,
                    f"{caught} without logging, a metrics counter, or "
                    "a re-raise; narrow the exception type or account "
                    "for the swallow (PR-3 convention)",
                )
