"""R7 — lock discipline inside threaded classes (graph-backed).

The service layer shipped exactly one concurrency bug family twice:
state shared between threads guarded by a lock in one method and
touched bare in another, and condition variables used without a
predicate.  The PR 6 ``JobManager.events_since`` long-poll used a bare
``Condition.wait`` on a condition shared by every job, so any *other*
job's event woke it into an early empty return — found by hand only in
PR 9.  Per-module rules cannot express the invariant because the
evidence spans methods: whether ``self._queue`` may be touched without
``self._lock`` in ``_drain`` depends on who calls ``_drain`` and
under what lock — a call-graph question.

For every class that creates a ``threading.Lock`` / ``RLock`` /
``Condition`` instance attribute — directly or in a base class,
resolved through the project index's class hierarchy — this rule
checks:

* **guarded-attribute discipline** — an instance attribute *written*
  inside a ``with self.<lock>`` block in any method is shared mutable
  state; reading or writing it outside a lock-held region in another
  method races.  Mutating-method calls and subscript stores
  (``self._jobs[k] = v``, ``self._queue.append``) count as writes.
  ``__init__`` is exempt (it runs before the object escapes).
* **lock-held helper methods** — a method whose intra-class call
  sites (via the project call graph) all sit inside lock-held
  regions, and which is never called from outside the class, is
  itself lock-held (the ``# Caller holds the lock`` convention made
  machine-checkable); its bare accesses and ``notify`` calls are
  legal.  Computed as a greatest fixpoint so helper chains
  (``cancel -> _finish -> _append_event``) resolve.
* **bare Condition.wait** — ``self.<cond>.wait(...)`` outside any
  enclosing ``while`` loop returns spuriously and on every broadcast;
  require ``wait_for`` or an explicit predicate loop.
* **notify outside the lock** — ``notify`` / ``notify_all`` on a
  condition attribute in a region that does not hold the lock (and in
  a method not proven lock-held) raises ``RuntimeError`` at runtime or,
  worse, races the waiter's predicate read.

All lock attributes of a class are treated as one lock: the repo's
convention is a single ``Lock`` plus ``Condition(self._lock)`` views
of it (``JobManager._lock`` / ``_wake``), and distinguishing them
without alias analysis would only manufacture false positives.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, Rule, register
from repro.analysis.rules._ast_util import dotted_chain

#: threading constructors whose instances guard shared state.
_LOCK_CTORS = {"Lock", "RLock", "Condition"}
_COND_CTOR = "Condition"

#: Receiver-method calls that mutate the receiver in place.
_MUTATING_METHODS = {
    "append", "extend", "add", "update", "clear", "pop", "popitem",
    "remove", "discard", "insert", "setdefault", "appendleft",
    "popleft", "sort",
}

_NOTIFY_METHODS = {"notify", "notify_all"}


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


class _Access:
    """One interesting event inside a method body."""

    __slots__ = ("attr", "node", "held", "kind", "in_while")

    def __init__(self, attr: str, node: ast.AST, held: bool,
                 kind: str, in_while: bool = False) -> None:
        self.attr = attr
        self.node = node
        self.held = held          # lexically inside ``with self.<lock>``
        self.kind = kind          # read | write | wait | notify | call
        self.in_while = in_while  # some ancestor while within the method


class _MethodScan:
    """Lexical scan of one method: accesses + self-call sites."""

    def __init__(self, locks: Set[str]) -> None:
        self.locks = locks
        self.accesses: List[_Access] = []
        #: (method name, call site held?)
        self.self_calls: List[Tuple[str, bool]] = []

    def scan(self, method: ast.AST) -> None:
        for statement in getattr(method, "body", []):
            self._visit(statement, held=False, in_while=False)

    def _with_holds(self, node: ast.AST) -> bool:
        for item in getattr(node, "items", []):
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.locks:
                return True
        return False

    def _visit(self, node: ast.AST, *, held: bool,
               in_while: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def is its own execution context: calls through
            # it are not charged to this method's lock region.  Its
            # body is still scanned (unheld) so bare accesses surface.
            for child in node.body:
                self._visit(child, held=False, in_while=False)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held or self._with_holds(node)
            for item in node.items:
                self._expr(item.context_expr, held, in_while)
            for child in node.body:
                self._visit(child, held=inner, in_while=in_while)
            return
        if isinstance(node, ast.While):
            self._expr(node.test, held, True)
            for child in [*node.body, *node.orelse]:
                self._visit(child, held=held, in_while=True)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, held, in_while)
            else:
                self._visit(child, held=held, in_while=in_while)

    def _expr(self, node: ast.AST, held: bool, in_while: bool) -> None:
        stack: List[ast.AST] = [node]
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.Lambda, ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                continue  # separate execution context (see _visit)
            stack.extend(ast.iter_child_nodes(child))
            if isinstance(child, ast.Call):
                self._call(child, held, in_while)
            elif isinstance(child, ast.Attribute):
                attr = _self_attr(child)
                if attr is None or attr in self.locks:
                    continue
                kind = (
                    "write"
                    if isinstance(child.ctx, (ast.Store, ast.Del))
                    else "read"
                )
                self.accesses.append(
                    _Access(attr, child, held, kind, in_while)
                )
            elif (isinstance(child, ast.Subscript)
                    and isinstance(child.ctx, (ast.Store, ast.Del))):
                attr = _self_attr(child.value)
                if attr is not None and attr not in self.locks:
                    self.accesses.append(
                        _Access(attr, child, held, "write", in_while)
                    )

    def _call(self, node: ast.Call, held: bool, in_while: bool) -> None:
        chain = dotted_chain(node.func)
        if chain is None:
            return
        # self.method(...) — a candidate lock-held helper call site.
        if len(chain) == 2 and chain[0] == "self":
            self.self_calls.append((chain[1], held))
            return
        # self.<attr>.<method>(...)
        if len(chain) == 3 and chain[0] == "self":
            attr, method = chain[1], chain[2]
            if attr in self.locks:
                if method == "wait":
                    self.accesses.append(
                        _Access(attr, node, held, "wait", in_while)
                    )
                elif method in _NOTIFY_METHODS:
                    self.accesses.append(
                        _Access(attr, node, held, "notify", in_while)
                    )
                return
            if method in _MUTATING_METHODS:
                self.accesses.append(
                    _Access(attr, node, held, "write", in_while)
                )


@register
class LockDisciplineRule(Rule):
    rule_id = "R7"
    name = "lock-discipline"
    description = (
        "Attributes written under a class's lock must not be touched "
        "bare elsewhere; Condition.wait needs wait_for/a predicate "
        "loop; notify requires the lock (call-graph aware)."
    )
    scope = ()  # any class creating threading locks, anywhere in repro
    needs_graph = True

    def check_project(self, project) -> Iterator[Finding]:
        for cls_qualname in sorted(project.classes):
            cls = project.classes[cls_qualname]
            yield from self._check_class(project, cls)

    # ------------------------------------------------------------------
    def _check_class(self, project, cls) -> Iterator[Finding]:
        info = project.modules.get(cls.module)
        if info is None:
            return
        locks, conds = self._lock_attrs(project, cls)
        if not locks:
            return

        scans: Dict[str, _MethodScan] = {}
        for method_name, method_qualname in cls.methods.items():
            function = project.functions.get(method_qualname)
            if function is None:
                continue
            scan = _MethodScan(locks)
            scan.scan(function.node)
            scans[method_name] = scan

        held_methods = self._lock_held_methods(project, cls, scans)

        guarded: Dict[str, str] = {}  # attr -> first guarding method
        for method_name, scan in sorted(scans.items()):
            if method_name == "__init__":
                continue
            effective = method_name in held_methods
            for access in scan.accesses:
                if access.kind == "write" and (
                    access.held or effective
                ):
                    guarded.setdefault(access.attr, method_name)

        for method_name, scan in sorted(scans.items()):
            if method_name == "__init__":
                continue
            held_method = method_name in held_methods
            reported: Set[str] = set()
            for access in scan.accesses:
                if access.kind in ("read", "write"):
                    if (access.attr in guarded
                            and not access.held
                            and not held_method
                            and access.attr not in reported):
                        reported.add(access.attr)
                        yield info.finding(
                            self, access.node,
                            f"attribute '{access.attr}' of "
                            f"{cls.name} is written under the lock "
                            f"(e.g. in {guarded[access.attr]}()) but "
                            f"accessed without it in {method_name}(); "
                            "take the lock or prove every caller "
                            "holds it",
                        )
                elif access.kind == "wait":
                    if access.attr in conds and not access.in_while:
                        yield info.finding(
                            self, access.node,
                            f"bare Condition.wait on "
                            f"self.{access.attr} in {cls.name}."
                            f"{method_name}(): any notify_all (or a "
                            "spurious wakeup) returns it early with "
                            "the predicate still false — use "
                            "wait_for(predicate, timeout) or an "
                            "explicit while-predicate loop",
                        )
                elif access.kind == "notify":
                    if not access.held and not held_method:
                        yield info.finding(
                            self, access.node,
                            f"self.{access.attr}."
                            f"{_notify_name(access.node)}() in "
                            f"{cls.name}.{method_name}() outside the "
                            "owning lock: notify requires the lock "
                            "held (RuntimeError at runtime, and the "
                            "waiter's predicate read races)",
                        )

    # ------------------------------------------------------------------
    @staticmethod
    def _lock_attrs(project, cls) -> Tuple[Set[str], Set[str]]:
        """Instance attrs bound to threading Lock/RLock/Condition.

        Walks the project base chain so a lock created in a base
        (``_Metric.__init__`` sets ``self._lock``) guards subclass
        methods too — inheritance must not launder the discipline.
        """
        locks: Set[str] = set()
        conds: Set[str] = set()
        methods: List[str] = []
        for base_qualname in project.base_chain(cls.qualname):
            base = project.classes.get(base_qualname)
            if base is not None:
                methods.extend(base.methods.values())
        for method_qualname in methods:
            function = project.functions.get(method_qualname)
            if function is None:
                continue
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                chain = dotted_chain(node.value.func)
                if chain is None or chain[-1] not in _LOCK_CTORS:
                    continue
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    locks.add(attr)
                    if chain[-1] == _COND_CTOR:
                        conds.add(attr)
        return locks, conds

    @staticmethod
    def _lock_held_methods(
        project, cls, scans: Dict[str, _MethodScan],
    ) -> Set[str]:
        """Greatest fixpoint of "every call site holds the lock".

        A method qualifies when it has at least one intra-class call
        site, every such site is lexically inside a ``with self.<lock>``
        block or in a method itself proven lock-held, and the project
        call graph records no caller outside the class.
        """
        sites: Dict[str, List[Tuple[str, bool]]] = {}
        for caller_name, scan in scans.items():
            for callee_name, held in scan.self_calls:
                sites.setdefault(callee_name, []).append(
                    (caller_name, held)
                )

        external: Set[str] = set()
        for method_name, method_qualname in cls.methods.items():
            for caller in project.callers(method_qualname):
                caller_info = project.functions.get(caller)
                if caller_info is None or caller_info.cls != cls.qualname:
                    external.add(method_name)

        held = {
            name for name in scans
            if name in sites and name not in external
            and name != "__init__"
        }
        changed = True
        while changed:
            changed = False
            for name in sorted(held):
                ok = all(
                    site_held or caller in held
                    for caller, site_held in sites.get(name, [])
                )
                if not ok:
                    held.discard(name)
                    changed = True
        return held


def _notify_name(node: ast.Call) -> str:
    chain = dotted_chain(node.func)
    return chain[-1] if chain else "notify"
