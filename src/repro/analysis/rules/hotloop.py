"""R6 — no point-wise solves in the evaluation layers' hot loops.

The batched evaluation path (DESIGN.md S22) exists because looping
``network.solve(...)`` / ``network.solve_many(...)`` point-wise rebuilds
and re-stamps each trial's system one at a time — exactly the pattern
:func:`repro.spice.solver.solve_batch` amortises by stacking stamp
values and rewriting all CSC arrays in one ``np.add.reduceat`` sweep.
A solve call re-introduced inside a loop in the Monte-Carlo, DSE, or
fault layers silently regresses those sweeps back onto the slow path
while producing identical numbers, so nothing but a benchmark would
catch it.

Flagged, inside ``repro.accuracy`` / ``repro.dse`` / ``repro.faults``:
an attribute call named ``solve`` or ``solve_many`` lexically inside a
``for`` / ``while`` body (or a comprehension).  Calls in nested
function definitions are not charged to the enclosing loop — the
function may be a worker executed elsewhere.  Hoist the call, batch
through ``solve_batch``, or suppress with ``# lint: allow=R6 <reason>``
where a single point-wise solve is genuinely required.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.core import Finding, ModuleInfo, Rule, register

_SOLVE_NAMES = ("solve", "solve_many")

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSION_NODES = (
    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp
)
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _solve_calls_within(root: ast.AST) -> Iterator[ast.Call]:
    """Solve-attribute calls under ``root``, skipping nested defs.

    Nested loops are *not* skipped — a call there is still inside the
    outer loop — but each call is reported once by the outer walk's
    de-duplication.
    """
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        # The root itself may be the call (a comprehension's element)
        # or a nested def (skipped wholesale, root or not).
        if isinstance(node, _SCOPE_NODES):
            continue
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SOLVE_NAMES
        ):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class PointwiseSolveInLoopRule(Rule):
    rule_id = "R6"
    name = "hot-loop-solve"
    description = (
        "No point-wise .solve()/.solve_many() calls inside loops in "
        "the accuracy/dse/faults layers; batch via solve_batch."
    )
    scope = ("repro.accuracy", "repro.dse", "repro.faults")

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        seen: Set[Tuple[int, int]] = set()
        for node in ast.walk(info.tree):
            if isinstance(node, _LOOP_NODES):
                bodies: List[ast.AST] = [*node.body, *node.orelse]
                kind = "while" if isinstance(node, ast.While) else "for"
            elif isinstance(node, _COMPREHENSION_NODES):
                if isinstance(node, ast.DictComp):
                    bodies = [node.key, node.value]
                else:
                    bodies = [node.elt]
                # Condition/iterable expressions run per element too.
                for comp in node.generators:
                    bodies.extend(comp.ifs)
                kind = "comprehension"
            else:
                continue
            for body in bodies:
                for call in _solve_calls_within(body):
                    location = (call.lineno, call.col_offset)
                    if location in seen:
                        continue
                    seen.add(location)
                    yield info.finding(
                        self, call,
                        f"point-wise .{call.func.attr}() call inside "
                        f"a {kind} body re-solves one system per "
                        "iteration; stack the members and go through "
                        "spice.solver.solve_batch (or hoist the call "
                        "out of the loop)",
                    )
