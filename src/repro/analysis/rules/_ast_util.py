"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

__all__ = ["dotted_chain", "call_chain", "walk_functions"]


def dotted_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name bases.

    Only pure Name/Attribute chains resolve — ``x().y`` or
    ``d["k"].y`` return None, which rules treat as "not a module
    access" rather than guessing.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def call_chain(node: ast.Call) -> Optional[Tuple[str, ...]]:
    """The dotted chain of a call's callee (None when not dotted)."""
    return dotted_chain(node.func)


def walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Every function/async-function definition in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
