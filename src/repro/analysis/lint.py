"""The ``repro lint`` entry point: analyze, subtract baseline, report.

Exit codes follow the CLI convention documented in
:func:`repro.cli.main`: ``0`` clean (modulo baseline), ``2`` new
findings (configuration-class failure — the code violates a project
invariant).  ``--update-baseline`` rewrites the baseline from the
current findings and always exits 0; hand-edit the justifications
afterwards, they survive later updates.
"""

from __future__ import annotations

import argparse
import logging
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.core import (
    all_rules,
    analyze_paths,
    iter_python_files,
)
from repro.analysis.report import render_json, render_tree

__all__ = ["add_lint_arguments", "run_lint"]

_log = logging.getLogger("repro.analysis")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` subcommand's flags to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files/directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("tree", "json"), default="tree",
        help="report style (tree for terminals, json for CI)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} "
        "when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, including grandfathered ones",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings "
        "(exits 0); add justifications by hand afterwards",
    )
    parser.add_argument(
        "--rules", action="store_true", dest="list_rules",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--select", metavar="IDS", default=None,
        help="comma-separated rule ids to run (e.g. R1,R4)",
    )
    parser.add_argument(
        "--graph", action=argparse.BooleanOptionalAction, default=True,
        help="run the project-analysis pass (call graph, R7-R9); "
        "--no-graph restricts to per-module rules",
    )


def _select_rules(spec: Optional[str]):
    rules = all_rules()
    if not spec:
        return rules
    wanted = {part.strip().upper() for part in spec.split(",") if part}
    unknown = wanted - {rule.rule_id for rule in rules}
    if unknown:
        raise SystemExit(
            f"unknown rule id(s): {', '.join(sorted(unknown))}"
        )
    return [rule for rule in rules if rule.rule_id in wanted]


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` with parsed ``args``; returns exit code."""
    if getattr(args, "list_rules", False):
        for rule in all_rules():
            scope = ", ".join(rule.scope) if rule.scope else "all modules"
            print(f"{rule.rule_id} {rule.name}: {rule.description}")
            print(f"   scope: {scope}")
        return 0

    paths: Sequence[str] = args.paths
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        raise SystemExit(
            f"lint path(s) not found: {', '.join(missing)} "
            "(run from the repository root, or pass explicit paths)"
        )
    checked = len(list(iter_python_files(paths)))
    stats: dict = {}
    findings = analyze_paths(
        paths, rules=_select_rules(args.select),
        graph=getattr(args, "graph", True), stats=stats,
    )

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE_NAME).exists():
        baseline_path = DEFAULT_BASELINE_NAME

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE_NAME
        baseline = Baseline.load(target)
        baseline.update_from(findings)
        baseline.save(target)
        _log.info(
            "baseline %s updated: %d entr%s", target,
            len(baseline.entries),
            "y" if len(baseline.entries) == 1 else "ies",
        )
        return 0

    grandfathered: List = []
    if baseline_path and not args.no_baseline:
        baseline = Baseline.load(baseline_path)
        findings, grandfathered = baseline.split(findings)
        # Stale-entry hints only make sense when every rule ran: a
        # --select/--no-graph run simply didn't look for the others.
        full_run = not args.select and getattr(args, "graph", True)
        for stale in baseline.stale_fingerprints(
            findings + grandfathered
        ) if full_run else []:
            entry = baseline.entries[stale]
            _log.info(
                "baseline entry %s (%s in %s) is fixed — remove it",
                stale, entry["rule"], entry["module"],
            )

    if args.format == "json":
        print(render_json(
            findings, grandfathered=grandfathered,
            checked_files=checked, baseline_path=baseline_path,
            stats=stats,
        ))
    else:
        print(render_tree(
            findings, grandfathered=grandfathered,
            checked_files=checked, stats=stats,
        ))
    return 2 if findings else 0
