"""AST-based static-analysis core: findings, rules, module loading.

The framework exists because every runtime subsystem in this repo
(job engine, result cache, tracing, fault campaigns) shipped with a
hand-found bug in the same small family — cache-key instability,
fork-inherited module state, silent broad excepts.  Each family is now
encoded once as a :class:`Rule` and enforced on every PR instead of
re-discovered by test failure (see DESIGN.md S20).

A rule is a class with a stable ``rule_id`` (``R1`` ...), a ``scope``
of dotted-module prefixes it applies to, and a ``check`` method that
yields :class:`Finding` objects for one parsed module.  Rules register
themselves into :data:`REGISTRY` via the :func:`register` decorator at
import time (:mod:`repro.analysis.rules` pulls them all in).

Findings are deliberately *line-number independent* in identity: the
baseline (:mod:`repro.analysis.baseline`) fingerprints ``rule + module
+ message + occurrence``, so moving code around never churns the
grandfather list.

Inline suppression: a ``# lint: allow=R3 <reason>`` comment on the
flagged line (or the line above it) silences the named rule(s) there;
a comma-separated list (``allow=R1,R7``) names several rules and
``allow=*`` silences everything.  Suppressions are for invariants a
human has argued are safe — the reason text is mandatory by
convention and checked in review, not by the tool.

Rules come in two shapes.  Per-module rules implement ``check`` and
see one :class:`ModuleInfo` at a time.  Project rules set
``needs_graph = True`` and implement ``check_project`` against a
:class:`repro.analysis.graph.ProjectIndex` built once over *every*
analyzed module — call graph, import resolution, class hierarchy —
so they can reason across modules (lock discipline, thread lifecycle,
cross-module determinism taint; DESIGN.md S25).  Both shapes share
scope filtering, suppressions, fingerprints, and the baseline.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type, Union

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "REGISTRY",
    "register",
    "all_rules",
    "parse_module",
    "parse_source",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]

#: ``# lint: allow=R1,R4 optional free-text reason``
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*allow=([A-Za-z0-9*,]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location.

    ``message`` must be location-free (no line numbers, no absolute
    paths) — it participates in the baseline fingerprint, which is
    meant to survive unrelated edits to the file.
    """

    rule: str
    name: str
    path: str
    module: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule}[{self.name}] {self.message}"
        )


@dataclass
class ModuleInfo:
    """A parsed module plus the metadata rules need to judge it."""

    path: Path
    rel_path: str
    module: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` is allowed at ``line`` (same or previous
        line carrying a ``# lint: allow=`` comment)."""
        for candidate in (line, line - 1):
            allowed = self.suppressions.get(candidate)
            if allowed and ("*" in allowed or rule_id in allowed):
                return True
        return False

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.rule_id,
            name=rule.name,
            path=self.rel_path,
            module=self.module,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class Rule:
    """Base class for one invariant check.

    Subclasses set ``rule_id`` (stable, ``R<n>``), ``name`` (short
    slug used in output), ``description`` (one line, shown by
    ``repro lint --rules``) and ``scope`` — dotted-module prefixes the
    rule applies to (empty tuple = every module).
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""
    scope: Sequence[str] = ()
    #: Project rules need the whole-project index (call graph, class
    #: hierarchy); they implement ``check_project`` instead of
    #: ``check`` and run in the project-analysis pass.
    needs_graph: bool = False

    def applies_to(self, module: str) -> bool:
        if not self.scope:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def check_project(self, project) -> Iterator[Finding]:  # pragma: no cover
        """Project-pass body for ``needs_graph`` rules: yield findings
        over a :class:`repro.analysis.graph.ProjectIndex`."""
        raise NotImplementedError

    def run(self, info: ModuleInfo) -> Iterator[Finding]:
        """``check`` filtered through scope and inline suppressions."""
        if self.needs_graph or not self.applies_to(info.module):
            return
        for found in self.check(info):
            if not info.is_suppressed(found.line, found.rule):
                yield found

    def run_project(self, project) -> Iterator[Finding]:
        """``check_project`` filtered through scope and suppressions.

        Scope applies to the module the finding is *reported in* (the
        evidence may span modules); suppressions come from that
        module's own ``# lint: allow=`` comments, so graph-backed
        findings are silenced exactly like per-module ones.
        """
        if not self.needs_graph:
            return
        for found in self.check_project(project):
            if not self.applies_to(found.module):
                continue
            info = project.modules.get(found.module)
            if info is not None and info.is_suppressed(
                found.line, found.rule
            ):
                continue
            yield found


#: rule_id -> rule instance, in registration order.
REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of ``rule_cls`` to the
    registry (last registration of an id wins, so tests can shadow)."""
    instance = rule_cls()
    if not instance.rule_id or not instance.name:
        raise ValueError(f"{rule_cls.__name__} must set rule_id and name")
    REGISTRY[instance.rule_id] = instance
    return rule_cls


def all_rules() -> List[Rule]:
    """Registered rules, importing the built-in set on first use."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return list(REGISTRY.values())


# ----------------------------------------------------------------------
# Module loading
# ----------------------------------------------------------------------
def _module_name(rel_path: Path) -> str:
    """Dotted module name for a repo-relative file path.

    ``src/repro/runtime/cache.py`` -> ``repro.runtime.cache``.  Files
    outside a ``src`` root keep their path parts from the last
    ``repro`` component, else all their relative parts — so fixture
    package trees under a temp root get real dotted names and the
    project index can resolve their imports.
    """
    parts = list(rel_path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts) or rel_path.stem


def _scan_suppressions(source: str) -> Dict[int, Set[str]]:
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = {part for part in match.group(1).split(",") if part}
            suppressions[lineno] = rules
    return suppressions


def parse_source(
    source: str,
    *,
    module: str,
    path: Union[str, Path] = "<memory>",
) -> ModuleInfo:
    """Parse in-memory source (fixture snippets, tests)."""
    return ModuleInfo(
        path=Path(path),
        rel_path=str(path),
        module=module,
        source=source,
        tree=ast.parse(source, filename=str(path)),
        suppressions=_scan_suppressions(source),
    )


def parse_module(path: Path, root: Optional[Path] = None) -> ModuleInfo:
    """Parse one file; ``root`` anchors the reported relative path.

    Parsed modules are memoized on ``(path, root, mtime, size)`` so a
    multi-rule run — and especially the project pass, which revisits
    every module to build the index — parses each file exactly once
    per content version.  Edited files re-parse on the next call.
    """
    path = path.resolve()
    root = (root or Path.cwd()).resolve()
    stat = path.stat()
    cache_key = (str(path), str(root))
    cached = _MODULE_CACHE.get(cache_key)
    signature = (stat.st_mtime_ns, stat.st_size)
    if cached is not None and cached[0] == signature:
        return cached[1]
    try:
        rel = path.relative_to(root)
    except ValueError:
        rel = Path(path.name)
    source = path.read_text(encoding="utf-8")
    info = parse_source(source, module=_module_name(rel), path=path)
    info.rel_path = rel.as_posix()
    _MODULE_CACHE[cache_key] = (signature, info)
    return info


#: (path, root) -> ((mtime_ns, size), parsed ModuleInfo)
_MODULE_CACHE: Dict[tuple, tuple] = {}


def iter_python_files(paths: Iterable[Union[str, Path]]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates: Iterable[Path] = sorted(entry.rglob("*.py"))
        else:
            candidates = [entry]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


_PARSE_ERROR = Rule()
_PARSE_ERROR.rule_id = "R0"
_PARSE_ERROR.name = "parse-error"
_PARSE_ERROR.description = "File could not be parsed as Python."


def analyze_paths(
    paths: Iterable[Union[str, Path]],
    *,
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
    graph: bool = True,
    stats: Optional[Dict[str, float]] = None,
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over every file under
    ``paths``; returns findings sorted by location.

    ``graph=True`` (the default) additionally runs the project pass:
    the whole-project index is built **once** over the parsed modules
    and shared by every ``needs_graph`` rule.  Pass ``graph=False``
    for a cheap per-module-only sweep.  ``stats``, when given, is
    filled with ``graph_build_seconds`` / ``graph_modules`` (the CI
    wall-time guard reads these out of the JSON report).
    """
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    infos: List[ModuleInfo] = []
    for path in iter_python_files(paths):
        try:
            info = parse_module(path, root=root)
        except SyntaxError as exc:
            findings.append(Finding(
                rule=_PARSE_ERROR.rule_id, name=_PARSE_ERROR.name,
                path=str(path), module=path.stem,
                line=exc.lineno or 0, col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            ))
            continue
        infos.append(info)
        for rule in active:
            findings.extend(rule.run(info))
    graph_rules = [rule for rule in active if rule.needs_graph]
    if graph and graph_rules and infos:
        from repro.analysis.graph import build_index

        project = build_index(infos)
        if stats is not None:
            stats["graph_build_seconds"] = project.build_seconds
            stats["graph_modules"] = len(project.modules)
        for rule in graph_rules:
            findings.extend(rule.run_project(project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_source(
    source: str,
    *,
    module: str,
    rules: Optional[Sequence[Rule]] = None,
    graph: bool = True,
) -> List[Finding]:
    """Run rules over an in-memory snippet (the fixture-test entry).

    ``needs_graph`` rules see a single-module project index — enough
    for intra-class/intra-module evidence (the R7/R8 fixtures); tests
    that need genuine cross-module taint write a temp tree and use
    :func:`analyze_paths`.
    """
    info = parse_source(source, module=module)
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for rule in active:
        findings.extend(rule.run(info))
    graph_rules = [rule for rule in active if rule.needs_graph]
    if graph and graph_rules:
        from repro.analysis.graph import build_index

        project = build_index([info])
        for rule in graph_rules:
            findings.extend(rule.run_project(project))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings
