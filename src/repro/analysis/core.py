"""AST-based static-analysis core: findings, rules, module loading.

The framework exists because every runtime subsystem in this repo
(job engine, result cache, tracing, fault campaigns) shipped with a
hand-found bug in the same small family — cache-key instability,
fork-inherited module state, silent broad excepts.  Each family is now
encoded once as a :class:`Rule` and enforced on every PR instead of
re-discovered by test failure (see DESIGN.md S20).

A rule is a class with a stable ``rule_id`` (``R1`` ...), a ``scope``
of dotted-module prefixes it applies to, and a ``check`` method that
yields :class:`Finding` objects for one parsed module.  Rules register
themselves into :data:`REGISTRY` via the :func:`register` decorator at
import time (:mod:`repro.analysis.rules` pulls them all in).

Findings are deliberately *line-number independent* in identity: the
baseline (:mod:`repro.analysis.baseline`) fingerprints ``rule + module
+ message + occurrence``, so moving code around never churns the
grandfather list.

Inline suppression: a ``# lint: allow=R3 <reason>`` comment on the
flagged line (or the line above it) silences the named rule(s) there;
``allow=*`` silences everything.  Suppressions are for invariants a
human has argued are safe — the reason text is mandatory by
convention and checked in review, not by the tool.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type, Union

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "REGISTRY",
    "register",
    "all_rules",
    "parse_module",
    "parse_source",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]

#: ``# lint: allow=R1,R4 optional free-text reason``
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*allow=([A-Za-z0-9*,]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location.

    ``message`` must be location-free (no line numbers, no absolute
    paths) — it participates in the baseline fingerprint, which is
    meant to survive unrelated edits to the file.
    """

    rule: str
    name: str
    path: str
    module: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule}[{self.name}] {self.message}"
        )


@dataclass
class ModuleInfo:
    """A parsed module plus the metadata rules need to judge it."""

    path: Path
    rel_path: str
    module: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` is allowed at ``line`` (same or previous
        line carrying a ``# lint: allow=`` comment)."""
        for candidate in (line, line - 1):
            allowed = self.suppressions.get(candidate)
            if allowed and ("*" in allowed or rule_id in allowed):
                return True
        return False

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.rule_id,
            name=rule.name,
            path=self.rel_path,
            module=self.module,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class Rule:
    """Base class for one invariant check.

    Subclasses set ``rule_id`` (stable, ``R<n>``), ``name`` (short
    slug used in output), ``description`` (one line, shown by
    ``repro lint --rules``) and ``scope`` — dotted-module prefixes the
    rule applies to (empty tuple = every module).
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""
    scope: Sequence[str] = ()

    def applies_to(self, module: str) -> bool:
        if not self.scope:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def run(self, info: ModuleInfo) -> Iterator[Finding]:
        """``check`` filtered through scope and inline suppressions."""
        if not self.applies_to(info.module):
            return
        for found in self.check(info):
            if not info.is_suppressed(found.line, found.rule):
                yield found


#: rule_id -> rule instance, in registration order.
REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of ``rule_cls`` to the
    registry (last registration of an id wins, so tests can shadow)."""
    instance = rule_cls()
    if not instance.rule_id or not instance.name:
        raise ValueError(f"{rule_cls.__name__} must set rule_id and name")
    REGISTRY[instance.rule_id] = instance
    return rule_cls


def all_rules() -> List[Rule]:
    """Registered rules, importing the built-in set on first use."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return list(REGISTRY.values())


# ----------------------------------------------------------------------
# Module loading
# ----------------------------------------------------------------------
def _module_name(rel_path: Path) -> str:
    """Dotted module name for a repo-relative file path.

    ``src/repro/runtime/cache.py`` -> ``repro.runtime.cache``.  Files
    outside a ``src`` root fall back to their path parts from the last
    ``repro`` component, else the bare stem — fixtures in temp dirs can
    instead pass an explicit module to :func:`parse_source`.
    """
    parts = list(rel_path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    return ".".join(parts) or rel_path.stem


def _scan_suppressions(source: str) -> Dict[int, Set[str]]:
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = {part for part in match.group(1).split(",") if part}
            suppressions[lineno] = rules
    return suppressions


def parse_source(
    source: str,
    *,
    module: str,
    path: Union[str, Path] = "<memory>",
) -> ModuleInfo:
    """Parse in-memory source (fixture snippets, tests)."""
    return ModuleInfo(
        path=Path(path),
        rel_path=str(path),
        module=module,
        source=source,
        tree=ast.parse(source, filename=str(path)),
        suppressions=_scan_suppressions(source),
    )


def parse_module(path: Path, root: Optional[Path] = None) -> ModuleInfo:
    """Parse one file; ``root`` anchors the reported relative path."""
    path = path.resolve()
    root = (root or Path.cwd()).resolve()
    try:
        rel = path.relative_to(root)
    except ValueError:
        rel = Path(path.name)
    source = path.read_text(encoding="utf-8")
    info = parse_source(source, module=_module_name(rel), path=path)
    info.rel_path = rel.as_posix()
    return info


def iter_python_files(paths: Iterable[Union[str, Path]]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates: Iterable[Path] = sorted(entry.rglob("*.py"))
        else:
            candidates = [entry]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


_PARSE_ERROR = Rule()
_PARSE_ERROR.rule_id = "R0"
_PARSE_ERROR.name = "parse-error"
_PARSE_ERROR.description = "File could not be parsed as Python."


def analyze_paths(
    paths: Iterable[Union[str, Path]],
    *,
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over every file under
    ``paths``; returns findings sorted by location."""
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            info = parse_module(path, root=root)
        except SyntaxError as exc:
            findings.append(Finding(
                rule=_PARSE_ERROR.rule_id, name=_PARSE_ERROR.name,
                path=str(path), module=path.stem,
                line=exc.lineno or 0, col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            ))
            continue
        for rule in active:
            findings.extend(rule.run(info))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_source(
    source: str,
    *,
    module: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run rules over an in-memory snippet (the fixture-test entry)."""
    info = parse_source(source, module=module)
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for rule in active:
        findings.extend(rule.run(info))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings
