"""Renderers for lint results: terminal tree and machine JSON."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.baseline import fingerprint_findings
from repro.analysis.core import Finding

__all__ = ["render_tree", "render_json"]


def render_tree(
    findings: Sequence[Finding],
    *,
    grandfathered: Sequence[Finding] = (),
    checked_files: int = 0,
    stats: Optional[dict] = None,
) -> str:
    """Group findings by file into an indented terminal tree."""
    lines: List[str] = []
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    for path in sorted(by_path):
        lines.append(path)
        for finding in sorted(by_path[path],
                              key=lambda f: (f.line, f.col, f.rule)):
            lines.append(
                f"  {finding.line}:{finding.col} "
                f"{finding.rule}[{finding.name}] {finding.message}"
            )
    summary = (
        f"{len(findings)} finding(s) in {len(by_path)} file(s)"
        if findings else "clean"
    )
    if checked_files:
        summary += f" ({checked_files} file(s) checked)"
    if grandfathered:
        summary += f"; {len(grandfathered)} grandfathered in baseline"
    if stats and "graph_build_seconds" in stats:
        summary += (
            f"; project index: {stats.get('graph_modules', 0)} "
            f"module(s) in {stats['graph_build_seconds']:.2f}s"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    *,
    grandfathered: Sequence[Finding] = (),
    checked_files: int = 0,
    baseline_path: Optional[str] = None,
    stats: Optional[dict] = None,
) -> str:
    """Stable machine-readable report (consumed by the CI lint job)."""
    def encode(items: Sequence[Finding]) -> List[dict]:
        return [
            {
                "rule": finding.rule,
                "name": finding.name,
                "path": finding.path,
                "module": finding.module,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "fingerprint": digest,
            }
            for finding, digest in fingerprint_findings(items)
        ]

    summary = {
        "new": len(findings),
        "grandfathered": len(grandfathered),
        "files_checked": checked_files,
        "baseline": baseline_path,
    }
    if stats:
        # Graph-pass timing for the CI wall-time guard; absent when
        # the project pass is skipped (--no-graph).
        for key in ("graph_build_seconds", "graph_modules"):
            if key in stats:
                summary[key] = stats[key]
    payload = {
        "findings": encode(findings),
        "grandfathered": encode(grandfathered),
        "summary": summary,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
