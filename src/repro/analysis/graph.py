"""Whole-project semantic index: symbols, imports, call graph, taint.

The per-module rules (R1-R6) judge one :class:`~repro.analysis.core.
ModuleInfo` at a time, which is exactly why the PR 6 ``events_since``
bare-``Condition.wait`` bug and cross-module wall-clock leaks survived
review: the evidence for those bugs spans *methods* and *modules*.
This module builds the shared substrate the project-scoped rules
(R7-R9, ``needs_graph = True``) reason over:

* a **symbol table** per module — top-level functions, classes with
  their methods and base-class expressions, and nested functions
  (qualified ``module.outer.<locals>.inner``-free: plain dotted
  ``module.Class.method`` / ``module.func.nested``);
* **import resolution** restricted to the analyzed universe plus
  literal dotted names for external targets (``from http.server
  import ThreadingHTTPServer`` resolves the alias to
  ``http.server.ThreadingHTTPServer`` even though stdlib modules are
  never parsed);
* a **call graph**: for every function/method, each call site is kept
  with its dotted callee chain and — where the chain resolves inside
  the project — the target's qualified name.  Resolved forms:
  bare-name calls to module-level functions (defined here or
  imported), dotted calls through module aliases, ``self.method``
  calls (including methods inherited from project base classes), and
  class instantiations (edge to ``Class.__init__`` when one is
  defined, plus a ``kind="class"`` tag for lifecycle rules);
* hop-bounded **reachability** over call edges, forwards (callees)
  and backwards (callers) — the substrate of the R9 determinism-taint
  query ("does this wall-clock read meet a cache-key sink within 3
  hops?").

Deliberate resolution limits (documented in DESIGN.md S25): no data
flow through variables (``f = self.run; f()`` is unresolved), no
resolution through containers or higher-order callbacks
(``progress=progress`` creates no edge), and attribute calls on
non-``self`` objects resolve only when the receiver is an imported
module alias.  Unresolvable call sites keep their dotted chain so
rules can still match well-known names (``canonical``,
``fingerprint``) by suffix.

The index build is pure and cached by the core pass
(:func:`repro.analysis.core.analyze_paths` builds it once per run and
hands the same instance to every graph rule); ``build_seconds`` is
recorded for the CI wall-time guard.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import ModuleInfo

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ProjectIndex",
    "build_index",
]


@dataclass
class CallSite:
    """One call expression inside a function body.

    ``chain`` is the dotted callee (``("self", "_finish")``); ``target``
    is the project-qualified name it resolves to, or None.  ``kind`` is
    ``"class"`` when the target is a class (an instantiation).
    """

    node: ast.Call
    chain: Optional[Tuple[str, ...]]
    target: Optional[str] = None
    kind: str = "function"


@dataclass
class FunctionInfo:
    """A function or method in the project, with its call sites."""

    qualname: str
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None  # owning class qualname, if a method
    calls: List[CallSite] = field(default_factory=list)


@dataclass
class ClassInfo:
    """A class definition: methods by name, base expressions resolved
    to project qualnames where possible, else kept as dotted text."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)


class ProjectIndex:
    """The queryable whole-project index (see module docstring)."""

    def __init__(self, infos: Sequence[ModuleInfo]) -> None:
        start = time.perf_counter()
        self.modules: Dict[str, ModuleInfo] = {
            info.module: info for info in infos
        }
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module -> local alias -> dotted target (project or external)
        self._aliases: Dict[str, Dict[str, str]] = {}
        for info in self.modules.values():
            self._collect_symbols(info)
        for info in self.modules.values():
            self._collect_aliases(info)
        for function in self.functions.values():
            self._collect_calls(function)
        self._callers: Dict[str, Set[str]] = {}
        for function in self.functions.values():
            for call in function.calls:
                if call.target in self.functions:
                    self._callers.setdefault(
                        call.target, set()
                    ).add(function.qualname)
        self.build_seconds = time.perf_counter() - start

    # -- construction --------------------------------------------------
    def _collect_symbols(self, info: ModuleInfo) -> None:
        def add_function(node: ast.AST, qualname: str,
                         cls: Optional[str]) -> None:
            self.functions[qualname] = FunctionInfo(
                qualname=qualname, module=info.module,
                name=node.name, node=node, cls=cls,
            )
            # Nested defs become their own nodes under a plain dotted
            # suffix; a bare-name call in the parent resolves to them.
            for child in node.body:
                self._walk_nested(child, qualname, cls)

        def add_class(node: ast.ClassDef, qualname: str) -> None:
            cls = ClassInfo(
                qualname=qualname, module=info.module,
                name=node.name, node=node,
            )
            self.classes[qualname] = cls
            for child in node.body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    method_qualname = f"{qualname}.{child.name}"
                    cls.methods[child.name] = method_qualname
                    add_function(child, method_qualname, qualname)
                elif isinstance(child, ast.ClassDef):
                    add_class(child, f"{qualname}.{child.name}")

        def walk_top(nodes) -> None:
            for node in nodes:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    add_function(node, f"{info.module}.{node.name}", None)
                elif isinstance(node, ast.ClassDef):
                    add_class(node, f"{info.module}.{node.name}")
                elif isinstance(node, (ast.If, ast.Try, ast.With,
                                       ast.AsyncWith, ast.For,
                                       ast.AsyncFor, ast.While)):
                    # Version-compat defs live under module-level ifs.
                    walk_top(
                        child for child in ast.iter_child_nodes(node)
                        if isinstance(child, ast.stmt)
                    )

        walk_top(info.tree.body)

    def _walk_nested(self, node: ast.AST, parent: str,
                     cls: Optional[str]) -> None:
        """Register nested function definitions under ``parent.name``."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{parent}.{node.name}"
            self.functions[qualname] = FunctionInfo(
                qualname=qualname,
                module=self.functions[parent].module,
                name=node.name, node=node, cls=cls,
            )
            for child in node.body:
                self._walk_nested(child, qualname, cls)
            return
        # Do not descend into nested classes here (rare; methods of
        # function-local classes stay unindexed) but do walk compound
        # statements so defs inside if/try/with bodies register.
        if isinstance(node, (ast.If, ast.Try, ast.With, ast.AsyncWith,
                             ast.For, ast.AsyncFor, ast.While)):
            for child in ast.iter_child_nodes(node):
                self._walk_nested(child, parent, cls)

    def _collect_aliases(self, info: ModuleInfo) -> None:
        aliases: Dict[str, str] = {}
        is_package = info.path.name == "__init__.py"
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b.c`` binds ``a``; dotted chains
                        # are resolved against the full target below.
                        aliases[alias.name.split(".")[0]] = (
                            alias.name.split(".")[0]
                        )
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(
                    info.module, node, is_package=is_package
                )
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    aliases[bound] = f"{base}.{alias.name}"
        self._aliases[info.module] = aliases

    @staticmethod
    def _resolve_from(module: str, node: ast.ImportFrom, *,
                      is_package: bool) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = module.split(".")
        # Level 1 from a package is the package itself; every other
        # level strips (level - is_package) trailing components.
        strip = node.level - (1 if is_package else 0)
        if strip >= len(parts):
            return None
        base_parts = parts[:len(parts) - strip] if strip else parts
        base = ".".join(base_parts)
        return f"{base}.{node.module}" if node.module else base

    def _collect_calls(self, function: FunctionInfo) -> None:
        aliases = self._aliases.get(function.module, {})

        def resolve(chain: Tuple[str, ...]) -> Tuple[Optional[str], str]:
            # self.method — resolve through the owning class (and its
            # project base classes, nearest first).
            if (len(chain) == 2 and chain[0] == "self"
                    and function.cls is not None):
                for cls_qualname in self.base_chain(function.cls):
                    cls = self.classes.get(cls_qualname)
                    if cls and chain[1] in cls.methods:
                        return cls.methods[chain[1]], "function"
                return None, "function"
            if len(chain) == 1:
                name = chain[0]
                nested = f"{function.qualname}.{name}"
                if nested in self.functions:  # a nested def of ours
                    return nested, "function"
                return self._resolve_symbol(
                    function.module, name, aliases
                )
            # Dotted: the longest alias/module prefix wins.
            head = chain[0]
            target = aliases.get(head)
            if target is None and head not in self.modules:
                return None, "function"
            dotted = ".".join((target or head, *chain[1:]))
            return self._resolve_dotted(dotted)

        skip: Set[ast.AST] = set()
        for child in ast.walk(function.node):
            if child is function.node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                skip.update(ast.walk(child))
        for child in ast.walk(function.node):
            if child in skip or not isinstance(child, ast.Call):
                continue
            chain = _dotted(child.func)
            target: Optional[str] = None
            kind = "function"
            if chain is not None:
                target, kind = resolve(chain)
            function.calls.append(CallSite(
                node=child, chain=chain, target=target, kind=kind,
            ))

    def _resolve_symbol(
        self, module: str, name: str, aliases: Dict[str, str],
    ) -> Tuple[Optional[str], str]:
        local = f"{module}.{name}"
        if local in self.functions:
            return local, "function"
        if local in self.classes:
            return local, "class"
        target = aliases.get(name)
        if target is None:
            return None, "function"
        return self._resolve_dotted(target)

    def _resolve_dotted(self, dotted: str) -> Tuple[Optional[str], str]:
        """A fully-dotted name to a project function/class qualname.

        Walks re-export chains one level (``from repro.x.y import f``
        inside ``repro/x/__init__.py`` makes ``repro.x.f`` an alias of
        ``repro.x.y.f``).
        """
        for _ in range(4):  # bounded re-export hops
            if dotted in self.functions:
                return dotted, "function"
            if dotted in self.classes:
                return dotted, "class"
            head, _, leaf = dotted.rpartition(".")
            if not head:
                return None, "function"
            alias = self._aliases.get(head, {}).get(leaf)
            if alias is None or alias == dotted:
                return None, "function"
            dotted = alias
        return None, "function"

    # -- queries -------------------------------------------------------
    def base_chain(self, cls_qualname: str) -> Iterator[str]:
        """The class and its transitive bases — project classes by
        qualname, external bases as their dotted import target."""
        seen: Set[str] = set()
        stack = [cls_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            yield current
            cls = self.classes.get(current)
            if cls is None:
                continue
            aliases = self._aliases.get(cls.module, {})
            for base in cls.node.bases:
                chain = _dotted(base)
                if chain is None:
                    continue
                if len(chain) == 1:
                    resolved, _ = self._resolve_symbol(
                        cls.module, chain[0], aliases
                    )
                    stack.append(resolved if resolved else
                                 aliases.get(chain[0], chain[0]))
                else:
                    head = aliases.get(chain[0], chain[0])
                    dotted = ".".join((head, *chain[1:]))
                    resolved, _ = self._resolve_dotted(dotted)
                    stack.append(resolved if resolved else dotted)

    def callees(self, qualname: str) -> Set[str]:
        function = self.functions.get(qualname)
        if function is None:
            return set()
        out: Set[str] = set()
        for call in function.calls:
            if call.target is None:
                continue
            if call.kind == "class":
                init = f"{call.target}.__init__"
                for base in self.base_chain(call.target):
                    candidate = f"{base}.__init__"
                    if candidate in self.functions:
                        init = candidate
                        break
                out.add(init)
            else:
                out.add(call.target)
        return {t for t in out if t in self.functions}

    def callers(self, qualname: str) -> Set[str]:
        return set(self._callers.get(qualname, ()))

    def reachable(
        self, qualname: str, *, max_hops: int, reverse: bool = False,
    ) -> Dict[str, int]:
        """Functions reachable within ``max_hops`` call edges, mapped
        to their hop distance (the start itself is distance 0)."""
        step = self.callers if reverse else self.callees
        distances: Dict[str, int] = {qualname: 0}
        frontier = [qualname]
        for hop in range(1, max_hops + 1):
            next_frontier: List[str] = []
            for current in frontier:
                for neighbour in step(current):
                    if neighbour not in distances:
                        distances[neighbour] = hop
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return distances

    def functions_in(self, module: str) -> List[FunctionInfo]:
        return [f for f in self.functions.values() if f.module == module]

    def classes_in(self, module: str) -> List[ClassInfo]:
        return [c for c in self.classes.values() if c.module == module]


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def build_index(infos: Sequence[ModuleInfo]) -> ProjectIndex:
    """Build the whole-project index over parsed modules."""
    return ProjectIndex(infos)
