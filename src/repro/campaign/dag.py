"""The stage DAG: explicit executors, per-stage sharding, resume.

A *campaign* — declarative (:mod:`repro.campaign.config`) or
programmatic (the :func:`repro.dse.explorer.explore` and
:func:`repro.faults.campaign.run_campaign` wrappers) — is a directed
acyclic graph of :class:`Stage`\\ s.  Each stage names an *executor*
from a registry (``"faults.solve"``, ``"campaign.unit"``, ...), so the
graph itself is plain data: what runs, after what, with what weight.

:class:`DagRunner` walks the graph in a deterministic topological
order (Kahn's algorithm, input order preserved among ready stages) and
gives every stage a :class:`StageContext` carrying

* the upstream stages' results,
* the engine knobs (cache / metrics / policy / ``should_cancel``)
  threaded through to :func:`repro.runtime.pool.run_jobs`, so each
  stage shards its own work across the process pool, and
* a stage-local ``progress`` callback remapped into the campaign-wide
  ``(done, total)`` stream — one monotone progress axis no matter how
  many stages run.

Each stage attempt starts a **fresh** :class:`ProgressTracker` (via
:meth:`~repro.obs.progress.ProgressTracker.reset`): the tracker clamps
``done`` monotone by design, so a restarted or resumed stage reusing
the previous attempt's tracker would silently drop every report and
freeze the ETA — the staleness bug this module exists to not have.

Resume is layered on the same sqlite :class:`ResultCache` the engine
uses.  A stage constructed with a ``cache_key`` stores its (JSON-safe)
result under ``kind="campaign-stage"`` when it completes; re-running
an interrupted campaign against the same cache replays completed
stages wholesale (100% hit, zero engine work) and partially-complete
stages replay their finished jobs through the engine's own per-job
cache — the final report is byte-identical to an uninterrupted run
because every executor is a pure function of its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigError, JobCancelled
from repro.obs import trace as obs_trace
from repro.obs.progress import ProgressTracker
from repro.runtime.cache import ResultCache
from repro.runtime.metrics import RunMetrics
from repro.runtime.pool import RunPolicy

__all__ = [
    "Stage",
    "StageContext",
    "DagRunner",
    "register_executor",
    "get_executor",
    "STAGE_CACHE_KIND",
]

#: ``ResultCache`` row kind for stage-level resume documents.
STAGE_CACHE_KIND = "campaign-stage"

Executor = Callable[["Stage", "StageContext"], Any]

#: Executor registry.  Populated at import time only (decorator
#: registration from the owning modules) and read-only afterwards.
_EXECUTORS: Dict[str, Executor] = {}


def register_executor(name: str) -> Callable[[Executor], Executor]:
    """Class-of-work registration: ``@register_executor("dse.solve")``."""

    def wrap(fn: Executor) -> Executor:
        existing = _EXECUTORS.get(name)
        if existing is not None and existing is not fn:
            raise ConfigError(f"executor {name!r} is already registered")
        _EXECUTORS[name] = fn
        return fn

    return wrap


def get_executor(name: str) -> Executor:
    try:
        return _EXECUTORS[name]
    except KeyError:
        raise ConfigError(
            f"unknown stage executor {name!r}; registered: "
            f"{sorted(_EXECUTORS)}"
        ) from None


@dataclass(frozen=True)
class Stage:
    """One node of the campaign graph.

    Attributes
    ----------
    name:
        Unique stage name; upstream results are keyed by it.
    executor:
        Registry name of the function that runs this stage.
    params:
        Stage parameters handed to the executor (arbitrary Python
        objects — only declarative campaign *files* are JSON).
    depends_on:
        Names of stages whose results this stage consumes.
    weight:
        Progress units this stage contributes to the campaign total
        (its engine job count; 0 for cheap expand/aggregate stages).
    cache_key:
        Optional content key for stage-level resume.  Must derive only
        from result-determining inputs (never engine knobs) so serial
        and parallel runs share entries; ``None`` disables stage-level
        caching (the engine's per-job cache still applies inside).
    """

    name: str
    executor: str
    params: Mapping[str, Any] = field(default_factory=dict)
    depends_on: Tuple[str, ...] = ()
    weight: int = 0
    cache_key: Optional[str] = None


class StageContext:
    """What one stage attempt sees: knobs, upstream results, progress."""

    def __init__(
        self,
        runner: "DagRunner",
        stage: Stage,
        offset: int,
        upstream: Dict[str, Any],
    ) -> None:
        self._runner = runner
        self._stage = stage
        self._offset = offset
        self.upstream = upstream
        self.cache = runner.cache
        self.metrics = runner.metrics
        self.policy = runner.policy
        self.should_cancel = runner.should_cancel

    def progress(self, done: int, total: int) -> None:
        """Stage-local report, remapped onto the campaign axis.

        ``total`` refines the stage's ETA denominator but never the
        campaign total — stage weights are fixed at graph-build time so
        the overall stream stays monotone.
        """
        self._runner._stage_progress(self._stage, self._offset, done, total)


class DagRunner:
    """Execute a stage DAG with per-stage observability and resume.

    Parameters
    ----------
    stages:
        The graph.  Stage names must be unique, dependencies must name
        existing stages, and the graph must be acyclic — violations
        raise :class:`~repro.errors.ConfigError` before anything runs.
    cache / metrics / policy / progress / should_cancel:
        The engine knobs, threaded to every stage's context.  The
        shared ``metrics`` accumulates across stages exactly as a
        monolithic run would; per-stage deltas are recorded in
        :attr:`stage_stats`.
    clock:
        Injectable monotonic clock for the per-stage tracker (tests).
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        *,
        cache: Optional[ResultCache] = None,
        metrics: Optional[RunMetrics] = None,
        policy: Optional[RunPolicy] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        should_cancel: Optional[Callable[[], bool]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.stages = tuple(stages)
        self.cache = cache
        self.metrics = metrics
        self.policy = policy if policy is not None else RunPolicy()
        self.should_cancel = should_cancel
        self._progress = progress
        self._order = _topological_order(self.stages)
        self._total = sum(stage.weight for stage in self.stages)
        # One tracker, reset() at every stage attempt: each attempt
        # starts from a clean count/EWMA/latency state (the tracker is
        # deliberately monotone within an attempt).
        self._tracker = (
            ProgressTracker(clock=clock) if clock is not None
            else ProgressTracker()
        )
        #: Per-stage outcome ledger, filled by :meth:`run`:
        #: ``{"resumed": bool, "jobs": int, "cache_hits": int,
        #:    "elapsed_seconds": float}`` per stage name.
        self.stage_stats: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    @property
    def total_weight(self) -> int:
        return self._total

    def _check_cancel(self) -> None:
        if self.should_cancel is not None and self.should_cancel():
            raise JobCancelled("campaign cancelled at a stage boundary")

    def _report(self, done: int) -> None:
        if self._progress is not None:
            self._progress(done, self._total)

    def _stage_progress(
        self, stage: Stage, offset: int, done: int, total: int
    ) -> None:
        self._tracker.update(done, total)
        self._report(min(offset + done, self._total))

    def _counter_snapshot(self) -> Tuple[int, int]:
        if self.metrics is None:
            return (0, 0)
        return (
            self.metrics.counters.get("jobs_total", 0),
            self.metrics.counters.get("cache_hits", 0),
        )

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        """Execute every stage; return ``{stage name: result}``.

        Raises :class:`~repro.errors.JobCancelled` when
        ``should_cancel`` fires at a stage boundary (the engine raises
        it at chunk boundaries inside a stage); everything already
        cached stays cached, which is what makes resume work.
        """
        results: Dict[str, Any] = {}
        self.stage_stats = {}
        offset = 0
        self._report(0)
        for stage in self._order:
            self._check_cancel()
            jobs_before, hits_before = self._counter_snapshot()
            upstream = {name: results[name] for name in stage.depends_on}
            resumed = False
            cached = (
                self.cache.get(stage.cache_key)
                if self.cache is not None and stage.cache_key is not None
                else None
            )
            if cached is not None:
                result = cached
                resumed = True
                elapsed = 0.0
            else:
                # Fresh tracker state per attempt — a resumed or
                # restarted stage must never inherit the previous
                # attempt's counts (frozen-ETA staleness).
                self._tracker.reset(stage.weight)
                context = StageContext(self, stage, offset, upstream)
                with obs_trace.span(
                    "campaign.stage",
                    stage=stage.name,
                    executor=stage.executor,
                    weight=stage.weight,
                ):
                    result = get_executor(stage.executor)(stage, context)
                elapsed = self._tracker.elapsed_seconds()
                if self.cache is not None and stage.cache_key is not None:
                    self.cache.put(stage.cache_key, STAGE_CACHE_KIND, result)
            results[stage.name] = result
            offset += stage.weight
            # Stage completion pins the campaign axis even when the
            # stage reported nothing itself (weight-0 stages, resumes).
            self._report(offset)
            jobs_after, hits_after = self._counter_snapshot()
            self.stage_stats[stage.name] = {
                "resumed": resumed,
                "jobs": jobs_after - jobs_before,
                "cache_hits": hits_after - hits_before,
                "elapsed_seconds": elapsed,
            }
        return results


# ----------------------------------------------------------------------
def _topological_order(stages: Tuple[Stage, ...]) -> List[Stage]:
    """Kahn's algorithm, deterministic: input order among ready stages."""
    by_name: Dict[str, Stage] = {}
    for stage in stages:
        if stage.name in by_name:
            raise ConfigError(f"duplicate stage name {stage.name!r}")
        by_name[stage.name] = stage
    for stage in stages:
        for dep in stage.depends_on:
            if dep not in by_name:
                raise ConfigError(
                    f"stage {stage.name!r} depends on unknown stage "
                    f"{dep!r}"
                )
            if dep == stage.name:
                raise ConfigError(
                    f"stage {stage.name!r} depends on itself"
                )
    remaining: Dict[str, set] = {
        stage.name: set(stage.depends_on) for stage in stages
    }
    order: List[Stage] = []
    done: set = set()
    while remaining:
        ready = [
            stage for stage in stages
            if stage.name in remaining and remaining[stage.name] <= done
        ]
        if not ready:
            cycle = sorted(remaining)
            raise ConfigError(
                f"campaign stages form a cycle: {cycle}"
            )
        for stage in ready:
            order.append(stage)
            done.add(stage.name)
            del remaining[stage.name]
    return order
