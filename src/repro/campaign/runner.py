"""Run declarative campaigns on the stage DAG.

A :class:`~repro.campaign.config.CampaignConfig` compiles into one
graph shape:

* one ``campaign.unit`` stage per expanded unit (weight = the unit
  payload's :meth:`~repro.service.schema.SimulationPayload.total_work`,
  stage-level ``cache_key`` derived from the unit's
  ``result_identity`` so resume replays completed units wholesale),
* one ``campaign.post.*`` stage per ``post`` hook, depending on every
  unit, and
* a weight-0 ``campaign.report`` stage depending on everything, which
  assembles the final deterministic document.

Every stage result is JSON-safe by construction, which is what lets
the stage cache persist them and lets resumed and uninterrupted runs
produce byte-identical reports.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.config import CAMPAIGN_SCHEMA, CampaignConfig
from repro.campaign.dag import DagRunner, Stage, StageContext, register_executor
from repro.obs import trace as obs_trace
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import content_key
from repro.runtime.metrics import RunMetrics
from repro.service.schema import PayloadKind
from repro.service.workloads import render_document, run_payload

__all__ = ["run_campaign_config", "CampaignRun", "REPORT_STAGE"]

#: Name of the final assembly stage (its result is the report document).
REPORT_STAGE = "report"


@dataclasses.dataclass(frozen=True)
class CampaignRun:
    """Outcome of one campaign execution.

    ``document`` is the final report (render with
    :func:`repro.service.workloads.render_document` for the canonical
    bytes); ``stage_stats`` is the runner's per-stage ledger —
    ``resumed`` / ``jobs`` / ``cache_hits`` per stage — which is what
    the CLI's ``campaign resume`` prints to prove a resume replayed
    from cache.
    """

    document: Dict[str, Any]
    stage_stats: Dict[str, Dict[str, Any]]
    fingerprint: str

    def to_json(self) -> str:
        return render_document(self.document)


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
@register_executor("campaign.unit")
def _run_unit(stage: Stage, context: StageContext) -> Dict[str, Any]:
    unit = stage.params["unit"]
    return run_payload(
        unit.payload,
        cache=context.cache,
        metrics=context.metrics,
        progress=context.progress,
        should_cancel=context.should_cancel,
    )


#: Result-document field each kind's one-number headline comes from.
def _headline(kind: PayloadKind, doc: Dict[str, Any]) -> Dict[str, Any]:
    if kind is PayloadKind.MONTECARLO:
        return {"metric": "mean_abs_error",
                "value": doc["summary"]["mean_abs_error"]}
    if kind is PayloadKind.FAULTS:
        errors = [
            point["mean_error"] for point in doc["points"]
            if point.get("mean_error") is not None
        ]
        return {"metric": "worst_mean_error",
                "value": max(errors) if errors else None}
    if kind is PayloadKind.EXPLORE:
        return {"metric": "feasible_points", "value": len(doc["points"])}
    if kind is PayloadKind.SIMULATE:
        return {"metric": "area", "value": doc["summary"]["area"]}
    return {"metric": None, "value": None}


@register_executor("campaign.post.summary")
def _run_summary(stage: Stage, context: StageContext) -> Dict[str, Any]:
    config: CampaignConfig = stage.params["config"]
    rows: List[Dict[str, Any]] = []
    for unit in config.units:
        doc = context.upstream[unit.stage]
        rows.append({
            "stage": unit.stage,
            "combination": dict(unit.combination),
            "run": unit.run,
            "seed": unit.seed,
            "kind": unit.payload.kind.value,
            **_headline(unit.payload.kind, doc),
        })
    return {"hook": "summary", "rows": rows}


@register_executor("campaign.report")
def _run_report(stage: Stage, context: StageContext) -> Dict[str, Any]:
    config: CampaignConfig = stage.params["config"]
    return {
        "schema": CAMPAIGN_SCHEMA,
        "name": config.name,
        "version": config.version,
        "num_runs": config.num_runs,
        "fingerprint": config.fingerprint(),
        "combination": {
            key: list(values) for key, values in config.combination
        },
        "units": [
            {
                "stage": unit.stage,
                "combination": dict(unit.combination),
                "run": unit.run,
                "seed": unit.seed,
                "kind": unit.payload.kind.value,
                "result": context.upstream[unit.stage],
            }
            for unit in config.units
        ],
        "post": {
            hook: context.upstream[f"post:{hook}"] for hook in config.post
        },
    }


# ----------------------------------------------------------------------
# Graph assembly
# ----------------------------------------------------------------------
def build_stages(
    config: CampaignConfig, *, jobs: Optional[int] = None
) -> List[Stage]:
    """Compile a campaign into its stage graph.

    ``jobs`` overrides the file's ``numCPUs`` (the CLI ``--jobs`` flag)
    by swapping the engine knobs on every unit payload — identity and
    cache keys are execution-independent, so serial and overridden runs
    share every cache row.
    """
    stages: List[Stage] = []
    unit_names: List[str] = []
    for unit in config.units:
        payload = unit.payload
        if jobs is not None:
            payload = dataclasses.replace(
                payload,
                execution=dataclasses.replace(payload.execution, jobs=jobs),
            )
        stages.append(Stage(
            name=unit.stage,
            executor="campaign.unit",
            params={"unit": dataclasses.replace(unit, payload=payload)},
            weight=payload.total_work(),
            cache_key=content_key(
                CAMPAIGN_SCHEMA, "unit", payload.result_identity()
            ),
        ))
        unit_names.append(unit.stage)
    post_names: List[str] = []
    for hook in config.post:
        name = f"post:{hook}"
        stages.append(Stage(
            name=name,
            executor=f"campaign.post.{hook}",
            params={"config": config},
            depends_on=tuple(unit_names),
        ))
        post_names.append(name)
    stages.append(Stage(
        name=REPORT_STAGE,
        executor="campaign.report",
        params={"config": config},
        depends_on=tuple(unit_names + post_names),
    ))
    return stages


def run_campaign_config(
    config: CampaignConfig,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    metrics: Optional[RunMetrics] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    should_cancel: Optional[Callable[[], bool]] = None,
) -> CampaignRun:
    """Execute a validated campaign and return its report.

    Stage-level resume needs ``cache``: with one configured, completed
    unit stages of an interrupted run replay wholesale on the next
    invocation (their ``resumed`` flag flips in ``stage_stats``) and
    partially-complete stages replay finished jobs through the engine's
    per-job cache — the report comes out byte-identical either way.
    """
    stages = build_stages(config, jobs=jobs)
    runner = DagRunner(
        stages,
        cache=cache,
        metrics=metrics,
        policy=config.execution.to_policy(),
        progress=progress,
        should_cancel=should_cancel,
    )
    with obs_trace.span(
        "campaign.run",
        campaign=config.name,
        units=len(config.units),
        total_work=config.total_work(),
    ):
        results = runner.run()
    return CampaignRun(
        document=results[REPORT_STAGE],
        stage_stats=dict(runner.stage_stats),
        fingerprint=config.fingerprint(),
    )
