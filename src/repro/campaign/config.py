"""Declarative campaign files: versioned JSON/TOML study definitions.

The file format follows the 6tisch-simulator config shape
(SNIPPETS.md #3): a ``version`` stamp, an ``execution`` block with
``numCPUs`` / ``numRuns``, a ``settings`` block holding the ``regular``
(base) parameters plus ``combination`` sweeps, and ``post`` hooks::

    {
      "version": 0,
      "name": "fault-study",
      "execution": {"numCPUs": 2, "numRuns": 2},
      "settings": {
        "regular": {
          "kind": "faults",
          "faults": {"modes": ["stuck_mixed"], "rates": [0, 0.05],
                     "trials": 3, "seed": 7, "size": 8}
        },
        "combination": {"faults.size": [8, 16]}
      },
      "post": ["summary"]
    }

``combination`` maps dotted payload paths to value lists; the campaign
expands their cartesian product (key order as written — both the
strict JSON parser and TOML preserve it), overlays each combination on
``regular``, and runs every combination ``numRuns`` times with the
kind's seed advanced per run (``seed + run``).  Every expanded unit is
validated **upfront** through
:class:`~repro.service.schema.SimulationPayload` — the AsyncFlow
stance (SNIPPETS.md #2): a campaign the runner does not fully
understand must never start.  All rejections are path-addressed
:class:`~repro.errors.ValidationError`\\ s
(``settings.combination.faults.size[1]: must be an integer``).

JSON files are parsed with :func:`repro.jsonio.loads_strict` (duplicate
keys rejected with a path); TOML rides on :mod:`tomllib` where
available (Python 3.11+) and fails with a clear error elsewhere — TOML
rejects duplicate keys natively.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigError, ValidationError
from repro.jsonio import loads_strict
from repro.runtime.jobs import content_key
from repro.service.schema import (
    ExecutionSpec,
    PayloadKind,
    SimulationPayload,
    _expect_int,
    _expect_mapping,
    _expect_number,
    _reject_unknown_keys,
    _reprefix,
)

__all__ = ["CampaignConfig", "CampaignUnit", "POST_HOOKS",
           "CAMPAIGN_FILE_VERSION", "CAMPAIGN_SCHEMA"]

#: The only accepted ``version`` value; bump on breaking format changes.
CAMPAIGN_FILE_VERSION = 0

#: Stamp folded into campaign fingerprints and stage cache keys.
CAMPAIGN_SCHEMA = "repro-campaign-v1"

#: Built-in post-processing hooks (see :mod:`repro.campaign.runner`).
POST_HOOKS = ("summary",)

_TOP_LEVEL = ("version", "name", "execution", "settings", "post")
_EXECUTION_FIELDS = ("numCPUs", "numRuns", "chunk_size", "timeout",
                     "retries", "min_sweep_for_parallel")

#: Where each payload kind keeps its per-run seed; kinds missing here
#: are deterministic per run, so ``numRuns > 1`` is rejected for them.
_SEED_PATHS = {
    PayloadKind.MONTECARLO: ("montecarlo", "seed"),
    PayloadKind.FAULTS: ("faults", "seed"),
}


@dataclass(frozen=True)
class CampaignUnit:
    """One expanded unit of work: a combination at one run index."""

    stage: str
    combo_index: int
    run: int
    combination: Mapping[str, Any]
    seed: Optional[int]
    payload: SimulationPayload


@dataclass(frozen=True)
class CampaignConfig:
    """A fully validated campaign: spec echo plus expanded units."""

    version: int
    name: str
    num_runs: int
    execution: ExecutionSpec
    regular: Mapping[str, Any]
    combination: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    post: Tuple[str, ...]
    units: Tuple[CampaignUnit, ...]

    # -- construction --------------------------------------------------
    @classmethod
    def from_file(cls, path: str) -> "CampaignConfig":
        """Load and validate a campaign file (``.json`` or ``.toml``)."""
        file_path = Path(path)
        try:
            text = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigError(
                f"cannot read campaign file {path!r}: {exc}"
            ) from exc
        if file_path.suffix.lower() == ".toml":
            data = _parse_toml(text, path)
        else:
            try:
                data = loads_strict(text)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"campaign file {path!r} is not valid JSON: {exc}"
                ) from None
        return cls.from_dict(data)

    @classmethod
    def from_dict(cls, data: Any, path: str = "") -> "CampaignConfig":
        """Validate a campaign document (the only entrance).

        ``path`` prefixes every error path (the service embeds campaign
        documents under its ``campaign`` payload section).
        """
        try:
            return cls._from_dict(data)
        except ValidationError as exc:
            raise (_reprefix(exc, path) if path else exc) from None

    @classmethod
    def _from_dict(cls, data: Any) -> "CampaignConfig":
        data = _expect_mapping(data, "")
        _reject_unknown_keys(data, _TOP_LEVEL, "")
        if "version" not in data:
            raise ValidationError(
                "missing required field", path="version",
                allowed=[CAMPAIGN_FILE_VERSION],
            )
        version = _expect_int(data["version"], "version")
        if version != CAMPAIGN_FILE_VERSION:
            raise ValidationError(
                "unsupported campaign file version", path="version",
                value=version, allowed=[CAMPAIGN_FILE_VERSION],
            )
        name = data.get("name")
        if not isinstance(name, str) or not name.strip():
            raise ValidationError(
                "campaigns need a non-empty name", path="name", value=name,
            )
        num_runs, execution = _parse_execution(data.get("execution", {}))

        settings = _expect_mapping(data.get("settings"), "settings") \
            if "settings" in data else None
        if settings is None:
            raise ValidationError(
                "missing required field", path="settings",
            )
        _reject_unknown_keys(
            settings, ("regular", "combination"), "settings"
        )
        if "regular" not in settings:
            raise ValidationError(
                "missing required field", path="settings.regular",
            )
        regular = _expect_mapping(settings["regular"], "settings.regular")
        if "execution" in regular:
            raise ValidationError(
                "campaign execution lives in the top-level 'execution' "
                "block, not inside settings.regular",
                path="settings.regular.execution",
            )
        if regular.get("kind") == "campaign":
            raise ValidationError(
                "campaigns cannot nest campaigns",
                path="settings.regular.kind", value="campaign",
            )
        combination = _parse_combination(settings.get("combination", {}))
        post = _parse_post(data.get("post", []))

        units = _expand_units(
            dict(regular), combination, num_runs, execution
        )
        return cls(
            version=version,
            name=name.strip(),
            num_runs=num_runs,
            execution=execution,
            regular={k: regular[k] for k in regular},
            combination=combination,
            post=post,
            units=units,
        )

    # -- canonical forms -----------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-safe echo (embedded in report documents)."""
        return {
            "version": self.version,
            "name": self.name,
            "execution": {
                "numCPUs": self.execution.jobs,
                "numRuns": self.num_runs,
                "chunk_size": self.execution.chunk_size,
                "timeout": self.execution.timeout,
                "retries": self.execution.retries,
                "min_sweep_for_parallel":
                    self.execution.min_sweep_for_parallel,
            },
            "settings": {
                "regular": dict(self.regular),
                "combination": {
                    key: list(values) for key, values in self.combination
                },
            },
            "post": list(self.post),
        }

    def identity(self) -> Dict[str, Any]:
        """Result-determining content only — engine knobs excluded.

        Two campaigns that differ solely in ``numCPUs`` / chunking /
        timeouts expand to identical units and must share a
        fingerprint (the engine's schedule-independence guarantee);
        the identity is therefore built from the expanded units'
        :meth:`~repro.service.schema.SimulationPayload.result_identity`.
        """
        return {
            "schema": CAMPAIGN_SCHEMA,
            "version": self.version,
            "name": self.name,
            "num_runs": self.num_runs,
            "post": list(self.post),
            "units": [
                {
                    "stage": unit.stage,
                    "combination": dict(unit.combination),
                    "run": unit.run,
                    "seed": unit.seed,
                    "payload": unit.payload.result_identity(),
                }
                for unit in self.units
            ],
        }

    def fingerprint(self) -> str:
        return content_key(CAMPAIGN_SCHEMA, self.identity())

    def total_work(self) -> int:
        """Engine jobs across all units (the progress denominator)."""
        return sum(unit.payload.total_work() for unit in self.units)

    def describe(self) -> str:
        return (
            f"campaign:{self.name} ({len(self.units)} units, "
            f"{self.total_work()} jobs)"
        )


# ----------------------------------------------------------------------
# Parsing helpers
# ----------------------------------------------------------------------
def _parse_toml(text: str, path: str) -> Any:
    try:
        import tomllib
    except ImportError:  # Python < 3.11: no stdlib TOML, no new deps.
        raise ConfigError(
            f"cannot load {path!r}: TOML campaign files need Python "
            "3.11+ (stdlib tomllib); use the JSON form instead"
        ) from None
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(
            f"campaign file {path!r} is not valid TOML: {exc}"
        ) from None


def _parse_execution(data: Any) -> Tuple[int, ExecutionSpec]:
    data = _expect_mapping(data, "execution")
    _reject_unknown_keys(data, _EXECUTION_FIELDS, "execution")
    num_runs = _expect_int(
        data.get("numRuns", 1), "execution.numRuns", minimum=1
    )
    num_cpus = _expect_int(
        data.get("numCPUs", 1), "execution.numCPUs", minimum=0
    )
    chunk_size = data.get("chunk_size")
    if chunk_size is not None:
        chunk_size = _expect_int(
            chunk_size, "execution.chunk_size", minimum=1
        )
    timeout = data.get("timeout")
    if timeout is not None:
        timeout = _expect_number(timeout, "execution.timeout")
        if timeout <= 0:
            raise ValidationError(
                "must be positive when given",
                path="execution.timeout", value=timeout,
            )
    retries = _expect_int(
        data.get("retries", 1), "execution.retries", minimum=0
    )
    min_sweep = _expect_int(
        data.get("min_sweep_for_parallel", 16),
        "execution.min_sweep_for_parallel", minimum=2,
    )
    spec = ExecutionSpec(
        jobs=num_cpus, chunk_size=chunk_size, timeout=timeout,
        retries=retries, min_sweep_for_parallel=min_sweep,
    )
    return num_runs, spec


def _parse_combination(
    data: Any,
) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
    data = _expect_mapping(data, "settings.combination")
    out: List[Tuple[str, Tuple[Any, ...]]] = []
    for key, values in data.items():
        where = f"settings.combination.{key}"
        if not isinstance(key, str) or not key or any(
            not segment for segment in key.split(".")
        ):
            raise ValidationError(
                "combination keys are dotted payload paths "
                "(e.g. 'faults.size')", path=where, value=key,
            )
        if not isinstance(values, (list, tuple)) or not values:
            raise ValidationError(
                "must be a non-empty list of candidate values",
                path=where, value=values,
            )
        out.append((key, tuple(values)))
    return tuple(out)


def _parse_post(data: Any) -> Tuple[str, ...]:
    if not isinstance(data, (list, tuple)):
        raise ValidationError(
            "must be a list of post-hook names", path="post", value=data,
            allowed=list(POST_HOOKS),
        )
    hooks: List[str] = []
    for index, hook in enumerate(data):
        if hook not in POST_HOOKS:
            raise ValidationError(
                "unknown post hook", path=f"post[{index}]", value=hook,
                allowed=list(POST_HOOKS),
            )
        if hook in hooks:
            raise ValidationError(
                "post hook listed twice", path=f"post[{index}]",
                value=hook,
            )
        hooks.append(hook)
    return tuple(hooks)


# ----------------------------------------------------------------------
# Unit expansion
# ----------------------------------------------------------------------
def _deep_copy_json(value: Any) -> Any:
    if isinstance(value, Mapping):
        return {key: _deep_copy_json(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_deep_copy_json(item) for item in value]
    return value


def _set_path(
    doc: Dict[str, Any], dotted: str, value: Any, error_path: str
) -> None:
    """Overlay ``value`` at ``dotted`` (creating mappings as needed)."""
    segments = dotted.split(".")
    node = doc
    for segment in segments[:-1]:
        child = node.get(segment)
        if child is None:
            child = node[segment] = {}
        elif not isinstance(child, dict):
            raise ValidationError(
                f"path segment {segment!r} does not address an object "
                "in settings.regular", path=error_path, value=dotted,
            )
        node = child
    node[segments[-1]] = _deep_copy_json(value)


def _validate_unit(
    doc: Dict[str, Any], execution: ExecutionSpec
) -> SimulationPayload:
    """Validate one expanded unit document into a payload.

    Errors are re-addressed under ``settings.regular`` — the campaign
    file location the offending value (base or combination overlay)
    landed in.
    """
    merged = dict(doc)
    merged["execution"] = execution.to_dict()
    try:
        return SimulationPayload.from_dict(merged)
    except ValidationError as exc:
        raise _reprefix(exc, "settings.regular") from None


def _seed_of(payload: SimulationPayload) -> Optional[int]:
    if payload.kind is PayloadKind.MONTECARLO:
        return payload.montecarlo.seed
    if payload.kind is PayloadKind.FAULTS:
        return payload.faults.seed
    return None


def _expand_units(
    regular: Dict[str, Any],
    combination: Tuple[Tuple[str, Tuple[Any, ...]], ...],
    num_runs: int,
    execution: ExecutionSpec,
) -> Tuple[CampaignUnit, ...]:
    keys = [key for key, _values in combination]
    value_lists = [values for _key, values in combination]
    combos = (
        list(itertools.product(*value_lists)) if combination else [()]
    )
    units: List[CampaignUnit] = []
    for combo_index, chosen in enumerate(combos):
        doc = _deep_copy_json(regular)
        overlay = dict(zip(keys, chosen))
        for key, value in overlay.items():
            _set_path(
                doc, key, value, f"settings.combination.{key}"
            )
        base_payload = _validate_unit(doc, execution)
        base_seed = _seed_of(base_payload)
        if num_runs > 1 and base_payload.kind not in _SEED_PATHS:
            raise ValidationError(
                f"kind {base_payload.kind.value!r} is deterministic per "
                "run (no seed to advance); numRuns must be 1",
                path="execution.numRuns", value=num_runs,
            )
        for run in range(num_runs):
            if num_runs == 1:
                payload, seed = base_payload, base_seed
            else:
                section, field_name = _SEED_PATHS[base_payload.kind]
                seed = base_seed + run
                run_doc = _deep_copy_json(doc)
                _set_path(
                    run_doc, f"{section}.{field_name}", seed,
                    "execution.numRuns",
                )
                payload = _validate_unit(run_doc, execution)
            units.append(CampaignUnit(
                stage=f"unit-{combo_index:03d}-run-{run}",
                combo_index=combo_index,
                run=run,
                combination=overlay,
                seed=seed,
                payload=payload,
            ))
    return tuple(units)
