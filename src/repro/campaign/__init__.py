"""Declarative campaigns and the stage-DAG runner.

Only :mod:`repro.campaign.dag` (a leaf over errors/obs/runtime) loads
at import time; the declarative layer — :mod:`repro.campaign.config`
and :mod:`repro.campaign.runner` — imports :mod:`repro.service`, which
itself reaches back here for the ``campaign`` payload kind, so those
names resolve lazily (PEP 562) to keep the import graph acyclic.
"""

from repro.campaign.dag import (
    DagRunner,
    Stage,
    StageContext,
    get_executor,
    register_executor,
)

__all__ = [
    "DagRunner",
    "Stage",
    "StageContext",
    "get_executor",
    "register_executor",
    "CampaignConfig",
    "CampaignUnit",
    "CampaignRun",
    "run_campaign_config",
]

_LAZY = {
    "CampaignConfig": "repro.campaign.config",
    "CampaignUnit": "repro.campaign.config",
    "CampaignRun": "repro.campaign.runner",
    "run_campaign_config": "repro.campaign.runner",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)
