"""Related-work case studies: PRIME and ISAAC (Sec. VII.E, Table VII).

Both designs are expressed as *customizations* of the reference
hierarchy, exercising the flexibility interfaces of Sec. III.E:

* :mod:`~repro.related.prime` — PRIME's FF-subarray: peripheral modules
  folded into reconfigurable computation units, 6-bit I/O, 4-bit cells;
* :mod:`~repro.related.isaac` — an ISAAC tile: imported published costs
  for the eDRAM buffer, S&H and DAC/ADC (CustomModule path) and the
  22-stage inner pipeline for latency/energy accounting.
"""

from repro.related.prime import PrimeResult, build_prime_ffsubarray, simulate_prime
from repro.related.isaac import IsaacResult, build_isaac_tile, simulate_isaac

__all__ = [
    "PrimeResult",
    "build_prime_ffsubarray",
    "simulate_prime",
    "IsaacResult",
    "build_isaac_tile",
    "simulate_isaac",
]
