"""PRIME FF-subarray simulation (Sec. VII.E.1 of the paper).

PRIME (Chi et al., ISCA'16) converts part of a ReRAM main memory into
full-function (FF) subarrays that compute neural-network layers.  The
paper simulates one FF-subarray's peak performance on a 256x256 DNN
layer:

* RRAM device, 256x256 crossbars;
* 6-bit fixed-point input/output data and 6-bit read circuits;
* 8-bit signed weights on 4-bit cells — four cells per weight (two
  polarity planes x two bit slices), i.e. four crossbars per tile;
* 65 nm CMOS;
* the adder/neuron/pooling peripherals are folded *into* the
  reconfigurable units — a structural reorganisation expressed here by
  the shared module registry (the totals are unchanged; the report
  shape differs).

With the reference mapping, a 256x256 layer at crossbar size 256 yields
exactly one tile x two slices x two polarities = four crossbars: the
"FF-subarray with four crossbars" of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import Accelerator
from repro.circuits import ModuleRegistry
from repro.config import SimConfig
from repro.nn.networks import mlp


@dataclass(frozen=True)
class PrimeResult:
    """Table VII row for PRIME."""

    area: float
    energy_per_task: float
    latency: float
    relative_accuracy: float
    crossbars: int


def prime_config() -> SimConfig:
    """The PRIME case-study configuration (Sec. VII.E.1)."""
    return SimConfig(
        crossbar_size=256,
        cmos_tech=65,
        interconnect_tech=65,
        memristor_model="RRAM-4BIT",
        weight_bits=8,
        signal_bits=6,
        weight_polarity=2,
        parallelism_degree=0,  # PRIME reads full columns in parallel
        interface_number=(256, 256),
    )


def build_prime_ffsubarray() -> Accelerator:
    """One FF-subarray evaluated on a 256x256 DNN layer."""
    network = mlp([256, 256], name="prime-task-256x256")
    registry = ModuleRegistry()
    # PRIME's units are reconfigurable: the merge/neuron peripherals
    # live inside the units.  Structurally this moves modules between
    # report levels; the registry keeps the same reference cost models.
    return Accelerator(prime_config(), network, registry=registry)


def simulate_prime() -> PrimeResult:
    """Simulate the FF-subarray and return the Table VII metrics."""
    accelerator = build_prime_ffsubarray()
    summary = accelerator.summary()
    return PrimeResult(
        area=summary.area,
        energy_per_task=summary.energy_per_sample,
        latency=summary.compute_latency,
        relative_accuracy=summary.relative_accuracy,
        crossbars=accelerator.total_crossbars,
    )
