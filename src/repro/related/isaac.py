"""ISAAC tile simulation (Sec. VII.E.2 of the paper).

ISAAC (Shafiee et al., ISCA'16) organises 128x128 crossbars into
in-situ multiply-accumulate (IMA) units — 8 crossbars per IMA, 12 IMAs
per tile (96 crossbars) — fed by an eDRAM buffer, with sample-and-hold
stages and fast shared SAR ADCs, and a 22-stage inner pipeline.

Three of ISAAC's modules are outside MNSIM's reference design and are
imported with their published costs through the CustomModule path
(Sec. III.E.3): the eDRAM buffer, the S&H arrays, and the 1.2 GS/s
8-bit SAR ADC (Kull, ISSCC'13) / 1-bit DAC pair.  Latency follows the
customised inner-pipeline rule: 22 pipeline cycles of 100 ns, and the
energy accumulates the tile's power over those 22 cycles — the
accounting described in the paper's Sec. VII.E.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import Accelerator
from repro.circuits import ModuleRegistry, get_adc_design
from repro.config import SimConfig
from repro.nn.networks import mlp
from repro.report import Performance
from repro.units import MM2, NS, MW

# ISAAC's inner pipeline (Sec. VII.E.2): 22 stages of 100 ns.
ISAAC_PIPELINE_STAGES = 22
ISAAC_CYCLE_TIME = 100 * NS

# Published per-tile module costs imported from the ISAAC paper
# (Table 6 of Shafiee et al.): area in mm^2, power in mW.
EDRAM_AREA = 0.083 * MM2
EDRAM_POWER = 20.7 * MW
SH_AREA = 0.0004 * MM2
SH_POWER = 0.01 * MW
DAC_ARRAY_AREA = 0.00017 * MM2 * 8  # 8 DAC arrays (one per IMA pair)
DAC_ARRAY_POWER = 4.0 * MW


@dataclass(frozen=True)
class IsaacResult:
    """Table VII row for ISAAC."""

    area: float
    energy_per_task: float
    latency: float
    relative_accuracy: float
    crossbars: int


def isaac_config() -> SimConfig:
    """The ISAAC case-study configuration (32 nm, 128 crossbars)."""
    return SimConfig(
        crossbar_size=128,
        cmos_tech=32,
        interconnect_tech=36,
        memristor_model="RRAM",  # device details unpublished; Sec. VII.E.2
        weight_bits=8,
        signal_bits=8,
        weight_polarity=2,
        parallelism_degree=8,  # ADCs are shared across columns in ISAAC
        interface_number=(128, 128),
    )


def build_isaac_tile() -> Accelerator:
    """A tile-filling task: 48 tiles x 2 polarities = 96 crossbars.

    A 1024x768 layer at crossbar size 128 maps to an 8x6 tile grid —
    exactly the 96 crossbars of one ISAAC tile.
    """
    network = mlp([1024, 768], name="isaac-task-1024x768")
    registry = ModuleRegistry()

    # Imported read circuit: the published 1.2 GS/s 8-bit SAR ADC.
    adc_design = get_adc_design("SAR-1.2GS-32NM")
    config = isaac_config()
    registry.override(
        "read_circuit",
        lambda cmos, bits, **_kw: adc_design.build(cmos),
    )
    # Imported storage/sampling modules with published numbers.  They
    # replace the reference output buffer; the S&H latency hides inside
    # the pipeline stage.
    registry.override_fixed(
        "output_buffer",
        Performance(
            area=EDRAM_AREA + SH_AREA,
            dynamic_energy=(EDRAM_POWER + SH_POWER) * ISAAC_CYCLE_TIME,
            leakage_power=0.0,
            latency=ISAAC_CYCLE_TIME,
        ),
    )
    # ISAAC streams inputs bit-serially through trivial 1-bit DACs.
    registry.override_fixed(
        "dac",
        Performance(
            area=DAC_ARRAY_AREA / 1024,
            dynamic_energy=DAC_ARRAY_POWER * ISAAC_CYCLE_TIME / 1024,
            leakage_power=0.0,
            latency=ISAAC_CYCLE_TIME / ISAAC_PIPELINE_STAGES,
        ),
    )
    return Accelerator(config, network, registry=registry)


def isaac_inner_pipeline(accelerator=None):
    """The tile's 22-stage inner pipeline as an
    :class:`~repro.arch.pipeline.InnerPipeline`.

    ISAAC balances its datapath into 22 equal 100 ns stages; the per-
    stage energy spreads the tile's per-task energy evenly, so
    ``run_latency(1)`` reproduces the published 2.2 us task latency and
    ``run_energy`` scales correctly for streams.
    """
    from repro.arch.pipeline import InnerPipeline, PipelineStage

    if accelerator is None:
        accelerator = build_isaac_tile()
    sample = accelerator.sample_performance()
    tile_power = sample.dynamic_energy / max(
        sample.latency, ISAAC_CYCLE_TIME
    )
    stage_energy = tile_power * ISAAC_CYCLE_TIME
    stages = [
        PipelineStage(f"stage{i:02d}", ISAAC_CYCLE_TIME, stage_energy)
        for i in range(ISAAC_PIPELINE_STAGES)
    ]
    return InnerPipeline(stages, cycle_time=ISAAC_CYCLE_TIME)


def simulate_isaac() -> IsaacResult:
    """Simulate one ISAAC tile and return the Table VII metrics.

    Latency and energy follow the customised 22-stage inner-pipeline
    accounting (via :func:`isaac_inner_pipeline`) rather than the
    reference entirely-parallel scheme.
    """
    accelerator = build_isaac_tile()
    sample = accelerator.sample_performance()
    accuracy = accelerator.accuracy()

    pipeline = isaac_inner_pipeline(accelerator)
    latency = pipeline.run_latency(1)
    energy = pipeline.run_energy(ISAAC_PIPELINE_STAGES)

    return IsaacResult(
        area=sample.area,
        energy_per_task=energy,
        latency=latency,
        relative_accuracy=1.0 - accuracy.average_error_rate,
        crossbars=accelerator.total_crossbars,
    )
