"""ASCII plotting: dependency-free renderings of the paper's figures.

The benchmark artefacts are plain-text files; these helpers turn the
figure data (error-rate curves, trade-off scatters) into ASCII charts
so `benchmarks/results/fig*.txt` actually *look like* the figures they
reproduce.

* :func:`line_plot` — multi-series X-Y chart with per-series markers;
* :func:`scatter_plot` — a single-series convenience wrapper;
* :func:`bar_chart` — horizontal labelled bars (breakdowns).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import MnsimError

_MARKERS = "ox+*#@%&"


class PlotError(MnsimError, ValueError):
    """Invalid plotting input."""


def _scale(value: float, low: float, high: float, cells: int) -> int:
    if high == low:
        return 0
    position = (value - low) / (high - low)
    return min(cells - 1, max(0, int(round(position * (cells - 1)))))


def line_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    logx: bool = False,
) -> str:
    """Render named point series on one ASCII grid.

    Each series gets a marker from ``o x + * ...``; the legend maps
    markers back to names.  ``logx`` plots log10 of the x values
    (crossbar-size sweeps are geometric).
    """
    if not series:
        raise PlotError("nothing to plot")
    if width < 16 or height < 6:
        raise PlotError("plot must be at least 16 x 6")

    points: List[Tuple[float, float, str]] = []
    for index, (name, values) in enumerate(series.items()):
        if not values:
            raise PlotError(f"series {name!r} is empty")
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in values:
            if logx:
                if x <= 0:
                    raise PlotError("logx needs positive x values")
                x = math.log10(x)
            points.append((float(x), float(y), marker))

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        column = _scale(x, x_low, x_high, width)
        row = height - 1 - _scale(y, y_low, y_high, height)
        grid[row][column] = marker

    lines = []
    top_label = f"{y_high:.4g}"
    bottom_label = f"{y_low:.4g}"
    pad = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(pad)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}|")
    x_left = f"{(10**x_low if logx else x_low):.4g}"
    x_right = f"{(10**x_high if logx else x_high):.4g}"
    axis = " " * pad + " +" + "-" * width + "+"
    lines.append(axis)
    gap = width - len(x_left) - len(x_right)
    lines.append(
        " " * (pad + 2) + x_left + " " * max(1, gap) + x_right
    )
    lines.append(f"{y_label} vs {x_label}" + ("  [log x]" if logx else ""))
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def scatter_plot(
    points: Sequence[Tuple[float, float]],
    name: str = "points",
    **kwargs,
) -> str:
    """Single-series convenience wrapper over :func:`line_plot`."""
    return line_plot({name: points}, **kwargs)


def bar_chart(
    values: Dict[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal labelled bars, longest first."""
    if not values:
        raise PlotError("nothing to plot")
    peak = max(values.values())
    if peak < 0:
        raise PlotError("bar values must be non-negative")
    label_pad = max(len(name) for name in values)
    lines = []
    for name, value in sorted(
        values.items(), key=lambda kv: kv[1], reverse=True
    ):
        if value < 0:
            raise PlotError("bar values must be non-negative")
        bar = "#" * (
            0 if peak == 0 else max(
                1 if value > 0 else 0,
                int(round(width * value / peak)),
            )
        )
        lines.append(
            f"{name.rjust(label_pad)} |{bar.ljust(width)}| "
            f"{value:.4g}{unit}"
        )
    return "\n".join(lines)
