"""Circuit-level crossbar simulation (the "SPICE" baseline).

MNSIM's validation experiments compare the behavior-level models against a
circuit-level solve of the full crossbar resistor network.  This package
implements that baseline from scratch:

* :mod:`~repro.spice.solver` — a modified-nodal-analysis solver over the
  ``M x N`` cell network with per-segment wire resistances and sense
  resistors, iterating a fixed point over the nonlinear memristor V-I
  characteristic (Sec. VI's "large number of non-linear Kirchhoff
  equations": ``2MN`` node voltages per solve).
* :mod:`~repro.spice.netlist` — SPICE netlist export of the same network,
  the paper's hand-off path to external circuit simulators (Sec. IV.A).
* :mod:`~repro.spice.reference` — the original loop-based solver, kept
  as an executable specification for equivalence tests and the
  ``BENCH_spice.json`` speedup benchmark.
"""

from repro.spice.solver import (
    CrossbarNetwork,
    CrossbarSolution,
    CrossbarSolutionBatch,
    clear_structure_cache,
    ideal_output_voltages,
)
from repro.spice.netlist import generate_netlist
from repro.spice.parser import ParsedNetlist, parse_netlist
from repro.spice.transient import (
    SettleEstimate,
    estimate_settle,
    settle_time_for_config,
)

__all__ = [
    "CrossbarNetwork",
    "CrossbarSolution",
    "CrossbarSolutionBatch",
    "clear_structure_cache",
    "ideal_output_voltages",
    "generate_netlist",
    "ParsedNetlist",
    "parse_netlist",
    "SettleEstimate",
    "estimate_settle",
    "settle_time_for_config",
]
