"""SPICE netlist parser: load a crossbar netlist back into the solver.

The inverse of :func:`repro.spice.netlist.generate_netlist`: parses the
cards of an exported crossbar netlist (sources, cell resistors, wire
segments, sense resistors) and reconstructs the
:class:`~repro.spice.solver.CrossbarNetwork` plus the input vector, so
an exported design can be re-simulated and cross-checked without the
original Python objects.  Only the netlist dialect this library emits
is supported (plus whitespace/comment/case tolerance) — it is a
round-trip tool, not a general SPICE front end.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.spice.solver import CrossbarNetwork
from repro.tech.memristor import MemristorModel

_CELL_RE = re.compile(r"^rcell(\d+)_(\d+)$")
_SOURCE_RE = re.compile(r"^vin(\d+)$")
_SENSE_RE = re.compile(r"^rs(\d+)$")
_WIRE_RE = re.compile(r"^(rwin|rwl|rbl)", re.IGNORECASE)


@dataclass(frozen=True)
class ParsedNetlist:
    """The reconstructed crossbar problem."""

    resistances: np.ndarray
    inputs: np.ndarray
    wire_resistance: float
    sense_resistance: float
    title: str

    def build_network(
        self, device: Optional[MemristorModel] = None
    ) -> CrossbarNetwork:
        """Instantiate the solver network (optionally with a nonlinear
        device model, which the netlist itself cannot carry)."""
        return CrossbarNetwork(
            self.resistances,
            self.wire_resistance,
            self.sense_resistance,
            device=device,
        )


def _parse_value(token: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise SolverError(f"cannot parse SPICE value {token!r}") from None


def parse_netlist(text: str) -> ParsedNetlist:
    """Parse a crossbar netlist produced by :func:`generate_netlist`.

    Raises
    ------
    SolverError
        On malformed cards, inconsistent wire values, or missing
        components.
    """
    title = ""
    cells: Dict[Tuple[int, int], float] = {}
    sources: Dict[int, float] = {}
    senses: Dict[int, float] = {}
    wire_values = set()

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith((".", "*")):
            if line.startswith("*") and not title:
                title = line.lstrip("* ").strip()
            continue
        parts = line.split()
        name = parts[0].lower()

        match = _CELL_RE.match(name)
        if match:
            if len(parts) != 4:
                raise SolverError(f"line {lineno}: malformed cell card")
            i, j = int(match.group(1)), int(match.group(2))
            cells[(i, j)] = _parse_value(parts[3])
            continue

        match = _SOURCE_RE.match(name)
        if match:
            # Vin<i> in_<i> 0 DC <value>
            if len(parts) != 5 or parts[3].upper() != "DC":
                raise SolverError(f"line {lineno}: malformed source card")
            sources[int(match.group(1))] = _parse_value(parts[4])
            continue

        match = _SENSE_RE.match(name)
        if match:
            if len(parts) != 4:
                raise SolverError(f"line {lineno}: malformed sense card")
            senses[int(match.group(1))] = _parse_value(parts[3])
            continue

        if _WIRE_RE.match(name):
            if len(parts) != 4:
                raise SolverError(f"line {lineno}: malformed wire card")
            wire_values.add(round(_parse_value(parts[3]), 12))
            continue

        raise SolverError(f"line {lineno}: unrecognised card {parts[0]!r}")

    if not cells:
        raise SolverError("netlist contains no cell resistors")
    if not sources:
        raise SolverError("netlist contains no input sources")
    if not senses:
        raise SolverError("netlist contains no sense resistors")
    if len(wire_values) > 1:
        raise SolverError(
            f"inconsistent wire segment values: {sorted(wire_values)}"
        )

    rows = max(i for i, _j in cells) + 1
    cols = max(j for _i, j in cells) + 1
    if len(cells) != rows * cols:
        raise SolverError(
            f"incomplete cell grid: {len(cells)} cards for {rows}x{cols}"
        )
    if set(sources) != set(range(rows)):
        raise SolverError("input sources do not cover every row")
    if set(senses) != set(range(cols)):
        raise SolverError("sense resistors do not cover every column")

    sense_values = set(round(v, 12) for v in senses.values())
    if len(sense_values) > 1:
        raise SolverError("per-column sense resistances differ")

    resistances = np.empty((rows, cols))
    for (i, j), value in cells.items():
        resistances[i, j] = value
    inputs = np.array([sources[i] for i in range(rows)])

    wire = wire_values.pop() if wire_values else 0.0
    return ParsedNetlist(
        resistances=resistances,
        inputs=inputs,
        wire_resistance=float(wire),
        sense_resistance=float(next(iter(senses.values()))),
        title=title,
    )
