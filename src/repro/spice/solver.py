"""Modified-nodal-analysis solver for the full crossbar network.

The network modelled here is exactly the one the paper's Sec. VI derives
its behavior-level shortcut from: ``M x N`` memristor cells, ``2MN``
interconnect segments of resistance ``r`` (one wordline and one bitline
segment per cell), and ``N`` sense resistors ``R_s`` to ground.  Input
voltage sources drive the wordlines through the first wire segment.

Unknowns are the ``2MN`` internal node voltages (the input/output node of
every cell).  The memristor nonlinearity is handled by a damped
fixed-point iteration that re-evaluates each cell's effective conductance
at its present operating voltage — the "slow, exact" path that MNSIM's
analytic model is validated against and benchmarked for speed-up
(Tables II/III, Fig. 5).

Performance architecture (see DESIGN.md S3):

* **One-time structural assembly.**  The sparsity pattern of the MNA
  matrix depends only on the crossbar shape ``(M, N)``, never on the
  resistance values.  :class:`_CrossbarStructure` precomputes the COO
  index arrays and the COO→CSC dedup/permutation maps once per shape
  (cached module-wide), so every subsequent assembly is a handful of
  numpy array operations — no Python loops, no index recomputation.
* **Vectorized nonlinear update.**  Each fixed-point iteration evaluates
  :meth:`~repro.tech.memristor.MemristorModel.actual_resistance` on the
  whole ``(M, N)`` cell-voltage grid at once.
* **Factorization reuse.**  Each assembled matrix is LU-factorized once
  (``scipy.sparse.linalg.splu``) and back-substituted for however many
  right-hand sides need it: :meth:`CrossbarNetwork.solve_many` solves a
  whole batch of input vectors against a single factorization in the
  linear regime, and :meth:`CrossbarNetwork.factorized` exposes the same
  helper to other modules (RC transient analysis reuses it).

``benchmarks/test_spice_solver_perf.py`` tracks the measured speedups in
``BENCH_spice.json`` at the repo root.

Observability (DESIGN.md S18): with :func:`repro.obs.enable` on, every
solve opens ``solver.solve`` / ``solver.solve_many`` spans with nested
``solver.assemble`` / ``solver.factorize`` / ``solver.refine`` child
spans, and structural-assembly cache hits, factorizations, refinement
accepts and refactorize-on-stall events are counted on
``repro_solver_events_total``.  Per-iteration residual deltas are
attached to the solve span only under ``repro.obs.enable(debug=True)``.
All hooks are no-ops by default — the disabled span is a cached
singleton costing ~0.1 us, held under 2% of even the smallest
benchmarked assembly.

Pickle-safety contract: :class:`CrossbarNetwork`, :class:`CrossbarSolution`
and every solver input (arrays, :class:`~repro.tech.memristor.
MemristorModel`) must stay picklable — :mod:`repro.runtime` ships them to
``ProcessPoolExecutor`` workers for parallel Monte-Carlo sampling.  Keep
state in plain attributes; no lambdas, local classes, or open handles.
(The cached structure is deliberately *not* pickled: workers rebuild it
once per shape on first use.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import SolverError
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace
from repro.tech.memristor import MemristorModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repro.faults
    # imports this module through its campaign runner)
    from repro.faults.models import FaultMask


def _count_solver_event(event: str, amount: int = 1) -> None:
    """Bump ``repro_solver_events_total{event=...}`` when obs is on.

    Gated on the trace switch so a disabled run pays a single global
    load per call — the solver sits on the hottest loop in the repo.
    """
    if _obs_trace.enabled():
        _obs_metrics.counter(
            "repro_solver_events_total",
            "Crossbar-solver events (assembly cache, factorize, refine)",
        ).inc(amount, event=event)

# Wire resistances below this are clamped to keep the MNA matrix
# well-conditioned (an exactly-zero r would short nodes together).
_MIN_WIRE_RESISTANCE = 1e-6

_DEFAULT_TOLERANCE = 1e-10
_DEFAULT_MAX_ITERATIONS = 60
_DAMPING = 0.7

# Iterative-refinement knobs for the frozen-LU nonlinear path: each
# fixed-point iteration perturbs the matrix only slightly (damped
# conductance updates on entries small against the wire conductances),
# so refinement against the first iteration's LU contracts by orders of
# magnitude per step until it hits the rounding floor of the system's
# conditioning.  A step is accepted at the target tolerance or at
# stagnation below the acceptance ceiling; anything worse refactorizes.
_REFINE_TOLERANCE = 1e-12
_REFINE_ACCEPT = 2e-12
_MAX_REFINE_STEPS = 30


class _CrossbarStructure:
    """Precomputed sparsity pattern of the ``(M, N)`` MNA system.

    Everything here depends only on the crossbar *shape*, so one instance
    serves every :class:`CrossbarNetwork` of that shape — Monte-Carlo
    trials, wire-resistance sweeps and nonlinear iterations all reuse it.

    The COO entry layout is fixed: first ``4MN`` cell-stamp entries
    (``+g, +g, -g, -g`` per cell, blocked so the per-iteration values
    vector is one ``concatenate`` of conductance views), then the
    constant wire/sense/input entries whose values depend only on
    ``r`` / ``R_s``.  ``order``/``starts``/``indices``/``indptr`` map the
    raw COO entries onto a duplicate-summed CSC matrix via
    ``np.add.reduceat`` — the assembly hot path is pure numpy.
    """

    def __init__(self, rows: int, cols: int) -> None:
        m, n = rows, cols
        num_nodes = 2 * m * n
        wl = np.arange(m * n, dtype=np.int64).reshape(m, n)
        bl = wl + m * n

        wf = wl.ravel()
        bf = bl.ravel()
        # Cell stamps: 4 blocks of MN entries (diag, diag, off, off).
        cell_rows = np.concatenate((wf, bf, wf, bf))
        cell_cols = np.concatenate((wf, bf, bf, wf))
        # Wordline segments (i, j) -- (i, j+1): 4 entries each.
        wa, wb = wl[:, :-1].ravel(), wl[:, 1:].ravel()
        # Bitline segments (i, j) -- (i+1, j): 4 entries each.
        ba, bb = bl[:-1, :].ravel(), bl[1:, :].ravel()
        seg_a = np.concatenate((wa, ba))
        seg_b = np.concatenate((wb, bb))
        seg_rows = np.concatenate((seg_a, seg_b, seg_a, seg_b))
        seg_cols = np.concatenate((seg_a, seg_b, seg_b, seg_a))
        # Input-source and sense-resistor diagonal stamps.
        input_nodes = wl[:, 0]
        output_nodes = bl[-1, :]

        rows_idx = np.concatenate(
            (cell_rows, seg_rows, input_nodes, output_nodes)
        )
        cols_idx = np.concatenate(
            (cell_cols, seg_cols, input_nodes, output_nodes)
        )

        self.rows = m
        self.cols = n
        self.num_nodes = num_nodes
        self.num_cell_entries = 4 * m * n
        self.num_segment_entries = 4 * (seg_a.size)
        # Segment layout: the wordline segments (row-major over the
        # (m, n-1) grid) precede the bitline segments ((m-1, n)); the
        # per-line fault path indexes into these blocks.
        self.num_wl_segments = m * (n - 1)
        self.num_bl_segments = (m - 1) * n
        self.input_nodes = input_nodes
        self.output_nodes = output_nodes
        # Signs of the 4 segment blocks (+g, +g, -g, -g per segment).
        self._segment_signs = np.repeat(
            np.array([1.0, 1.0, -1.0, -1.0]), seg_a.size
        )

        # COO -> CSC with duplicate summation, precomputed: sort entries
        # by (col, row), group duplicates, and remember the maps.
        order = np.lexsort((rows_idx, cols_idx))
        sorted_rows = rows_idx[order]
        sorted_cols = cols_idx[order]
        boundary = np.empty(order.size, dtype=bool)
        boundary[0] = True
        np.logical_or(
            sorted_rows[1:] != sorted_rows[:-1],
            sorted_cols[1:] != sorted_cols[:-1],
            out=boundary[1:],
        )
        self.order = order
        self.starts = np.flatnonzero(boundary)
        self.csc_indices = sorted_rows[self.starts].astype(np.int32)
        self.csc_indptr = np.searchsorted(
            sorted_cols[self.starts], np.arange(num_nodes + 1)
        ).astype(np.int32)

    # ------------------------------------------------------------------
    def constant_values(
        self, wire_conductance: float, sense_conductance: float
    ) -> np.ndarray:
        """COO values of the resistance-independent tail entries."""
        return np.concatenate((
            self._segment_signs * wire_conductance,
            np.full(self.rows, wire_conductance),
            np.full(self.cols, sense_conductance),
        ))

    def wire_values(
        self,
        wl_segment_g: np.ndarray,
        bl_segment_g: np.ndarray,
        input_g: np.ndarray,
        sense_g: np.ndarray,
    ) -> np.ndarray:
        """COO tail values with *per-branch* conductances.

        The fault path uses this to drop (``g = 0``) or short whole
        word-/bit-lines without touching the sparsity structure: a
        dropped branch simply contributes nothing to the summed stamps.
        ``wl_segment_g`` is the row-major ``(rows, cols-1)`` wordline
        segment grid flattened; ``bl_segment_g`` the ``(rows-1, cols)``
        bitline one.
        """
        segments = np.concatenate((
            np.asarray(wl_segment_g, dtype=float).ravel(),
            np.asarray(bl_segment_g, dtype=float).ravel(),
        ))
        return np.concatenate((
            np.tile(segments, 4) * self._segment_signs,
            np.asarray(input_g, dtype=float),
            np.asarray(sense_g, dtype=float),
        ))

    def matrix(
        self, cell_conductances: np.ndarray, constant_tail: np.ndarray
    ) -> sp.csc_matrix:
        """Assemble the fixed-sparsity CSC conductance matrix."""
        g = cell_conductances.ravel()
        values = np.concatenate((g, g, -g, -g, constant_tail))
        data = np.add.reduceat(values[self.order], self.starts)
        return sp.csc_matrix(
            (data, self.csc_indices, self.csc_indptr),
            shape=(self.num_nodes, self.num_nodes),
        )

    def matrix_batch(
        self,
        cell_conductances: np.ndarray,  # (B, M, N)
        constant_tails: np.ndarray,  # (B, T)
    ) -> np.ndarray:
        """CSC ``data`` rows for a whole stack of same-shape crossbars.

        Stacks every member's COO values into one ``(B, 4MN + T)``
        array and rewrites all CSC value arrays in a single
        ``np.add.reduceat`` sweep along the entry axis.  Each row is
        bit-identical to what :meth:`matrix` computes for that member —
        ``reduceat`` sums the same entries in the same order — so
        batched assembly never perturbs results.  Pair a row with the
        shared ``csc_indices`` / ``csc_indptr`` to materialise the
        member's matrix.
        """
        g = cell_conductances.reshape(cell_conductances.shape[0], -1)
        values = np.concatenate((g, g, -g, -g, constant_tails), axis=1)
        return np.add.reduceat(values[:, self.order], self.starts, axis=1)


_STRUCTURE_CACHE: Dict[Tuple[int, int], _CrossbarStructure] = {}


def clear_structure_cache() -> int:
    """Drop the shared per-shape structure cache; returns entries freed.

    The cache is pure memoization — a structure depends only on the
    crossbar shape, so fork-inherited entries are *correct* — but it
    retains the largest sparsity pattern ever assembled.  Long-lived
    pool workers sweeping many shapes, and memory-sensitive tests, use
    this as the reset hook (fork-safety convention, DESIGN.md S20).
    """
    freed = len(_STRUCTURE_CACHE)
    _STRUCTURE_CACHE.clear()
    return freed


def _structure_for(rows: int, cols: int) -> _CrossbarStructure:
    """The shared, lazily-built structure for an ``(M, N)`` crossbar."""
    key = (rows, cols)
    structure = _STRUCTURE_CACHE.get(key)
    if structure is None:
        _count_solver_event("structure_build")
        with _obs_trace.span("solver.build_structure", rows=rows, cols=cols):
            structure = _STRUCTURE_CACHE[key] = _CrossbarStructure(
                rows, cols
            )
    else:
        _count_solver_event("structure_cache_hit")
    return structure


@dataclass
class CrossbarSolution:
    """Result of one circuit-level crossbar solve.

    Attributes
    ----------
    output_voltages:
        Voltage across each column's sense resistor, shape ``(N,)``.
    cell_voltages:
        Voltage across each memristor cell, shape ``(M, N)``.
    cell_currents:
        Current through each cell, shape ``(M, N)``.
    input_currents:
        Current delivered by each input source, shape ``(M,)``.
    total_power:
        Total power delivered by the sources, watts.
    iterations:
        Nonlinear fixed-point iterations performed (1 for ideal devices).
    converged:
        Whether the nonlinear iteration met the tolerance.
    """

    output_voltages: np.ndarray
    cell_voltages: np.ndarray
    cell_currents: np.ndarray
    input_currents: np.ndarray
    total_power: float
    iterations: int
    converged: bool


@dataclass
class CrossbarSolutionBatch:
    """Results of a batched solve: one leading ``K`` axis per field.

    Produced by :meth:`CrossbarNetwork.solve_many` and
    :func:`solve_batch`.  Indexing with ``batch[k]`` recovers the
    ``k``-th :class:`CrossbarSolution`; the stacked arrays support
    vectorized post-processing of whole sweeps.

    ``failed`` is only populated by ``solve_batch(...,
    on_singular="mark")``: a true entry marks a member whose system was
    singular (or produced non-finite voltages) — its result arrays are
    NaN and ``converged`` is false.  It stays ``None`` on paths that
    raise instead of marking.
    """

    output_voltages: np.ndarray  # (K, N)
    cell_voltages: np.ndarray  # (K, M, N)
    cell_currents: np.ndarray  # (K, M, N)
    input_currents: np.ndarray  # (K, M)
    total_power: np.ndarray  # (K,)
    iterations: np.ndarray  # (K,) int
    converged: np.ndarray  # (K,) bool
    failed: Optional[np.ndarray] = None  # (K,) bool, solve_batch only

    def __len__(self) -> int:
        return self.output_voltages.shape[0]

    def __getitem__(self, k: int) -> CrossbarSolution:
        return CrossbarSolution(
            output_voltages=self.output_voltages[k],
            cell_voltages=self.cell_voltages[k],
            cell_currents=self.cell_currents[k],
            input_currents=self.input_currents[k],
            total_power=float(self.total_power[k]),
            iterations=int(self.iterations[k]),
            converged=bool(self.converged[k]),
        )


class CrossbarNetwork:
    """The resistor network of one crossbar, ready to solve.

    Parameters
    ----------
    resistances:
        Programmed (ideal, ohmic) cell resistances, shape ``(M, N)``.
    wire_resistance:
        Per-segment interconnect resistance ``r`` in ohms.
    sense_resistance:
        Sense resistor ``R_s`` per column in ohms.
    device:
        Optional memristor model supplying the nonlinear V-I curve; if
        ``None`` the cells are ideal ohmic resistors.
    fault_mask:
        Optional :class:`repro.faults.models.FaultMask`.  Stuck cells
        rewrite their stamp values to the device's ``r_min``/``r_max``
        (grid min/max without a device), open cells and open lines drop
        their branches from the MNA system, shorted lines collapse to
        the minimum wire resistance, and drift overlays multiply the
        programmed grid.  A mask that leaves nodes floating produces a
        singular system, surfaced as :class:`~repro.errors.SolverError`.
    """

    def __init__(
        self,
        resistances: np.ndarray,
        wire_resistance: float,
        sense_resistance: float,
        device: Optional[MemristorModel] = None,
        fault_mask: Optional["FaultMask"] = None,
    ) -> None:
        resistances = np.asarray(resistances, dtype=float)
        if resistances.ndim != 2:
            raise SolverError("resistances must be a 2-D (M x N) array")
        if np.any(resistances <= 0):
            raise SolverError("all cell resistances must be positive")
        if sense_resistance <= 0:
            raise SolverError("sense_resistance must be positive")
        if wire_resistance < 0:
            raise SolverError("wire_resistance must be non-negative")
        self.programmed_resistances = resistances
        self.rows, self.cols = resistances.shape
        self.wire_resistance = max(wire_resistance, _MIN_WIRE_RESISTANCE)
        self.sense_resistance = sense_resistance
        self.device = device
        self.fault_mask = fault_mask
        self._cell_gain: Optional[np.ndarray] = None
        if fault_mask is not None:
            if (fault_mask.rows, fault_mask.cols) != resistances.shape:
                raise SolverError(
                    f"fault mask shape ({fault_mask.rows}, "
                    f"{fault_mask.cols}) does not match the "
                    f"{self.rows}x{self.cols} crossbar"
                )
            r_on = device.r_min if device is not None else float(
                resistances.min()
            )
            r_off = device.r_max if device is not None else float(
                resistances.max()
            )
            resistances = fault_mask.apply_to_resistances(
                resistances, r_on, r_off
            )
            self._cell_gain = fault_mask.cell_conductance_gain()
            _count_solver_event("fault_mask_applied")
        self.resistances = resistances
        self._constant_tail: Optional[np.ndarray] = None

    # The per-shape structure and the constant COO tail are derived
    # state; keep them out of pickles (workers rebuild on first use).
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_constant_tail"] = None
        return state

    # ------------------------------------------------------------------
    # Node numbering: wordline node of cell (i, j) -> i*N + j
    #                 bitline  node of cell (i, j) -> M*N + i*N + j
    # ------------------------------------------------------------------
    def _wl(self, i: int, j: int) -> int:
        return i * self.cols + j

    def _bl(self, i: int, j: int) -> int:
        return self.rows * self.cols + i * self.cols + j

    @property
    def num_nodes(self) -> int:
        """Internal unknown node count (2MN, per Sec. VI)."""
        return 2 * self.rows * self.cols

    @property
    def structure(self) -> _CrossbarStructure:
        """The (shared, cached) sparsity structure for this shape."""
        return _structure_for(self.rows, self.cols)

    # ------------------------------------------------------------------
    def _base_conductances(self) -> np.ndarray:
        """Programmed cell conductances with open-cell branches dropped."""
        conductances = 1.0 / self.resistances
        if self._cell_gain is not None:
            conductances = conductances * self._cell_gain
        return conductances

    def _wire_tail(self) -> np.ndarray:
        """The (cached) constant COO tail, honouring any line faults."""
        if self._constant_tail is not None:
            return self._constant_tail
        structure = self.structure
        g_wire = 1.0 / self.wire_resistance
        g_sense = 1.0 / self.sense_resistance
        mask = self.fault_mask
        if mask is None or not mask.has_line_faults:
            self._constant_tail = structure.constant_values(g_wire, g_sense)
            return self._constant_tail
        g_short = 1.0 / _MIN_WIRE_RESISTANCE
        wl_seg = np.full((self.rows, max(self.cols - 1, 0)), g_wire)
        bl_seg = np.full((max(self.rows - 1, 0), self.cols), g_wire)
        sense_g = np.full(self.cols, g_sense)
        for i in mask.short_wordlines:
            wl_seg[i, :] = g_short
        for j in mask.short_bitlines:
            bl_seg[:, j] = g_short
        for i in mask.open_wordlines:
            wl_seg[i, :] = 0.0
        for j in mask.open_bitlines:
            bl_seg[:, j] = 0.0
        self._constant_tail = structure.wire_values(
            wl_seg, bl_seg, self._input_conductances(), sense_g
        )
        return self._constant_tail

    def _input_conductances(self) -> np.ndarray:
        """Per-row source-branch conductance (zero on open wordlines)."""
        g_wire = np.full(self.rows, 1.0 / self.wire_resistance)
        if self.fault_mask is not None:
            for i in self.fault_mask.open_wordlines:
                g_wire[i] = 0.0
        return g_wire

    def _matrix(self, cell_conductances: np.ndarray) -> sp.csc_matrix:
        """The CSC conductance matrix at the given cell conductances."""
        structure = self.structure
        tail = self._wire_tail()
        with _obs_trace.span("solver.assemble"):
            return structure.matrix(cell_conductances, tail)

    def _assemble(
        self, cell_conductances: np.ndarray, inputs: np.ndarray
    ):
        """Assemble the sparse conductance matrix and RHS vector."""
        return self._matrix(cell_conductances), self._rhs(inputs)

    def _rhs(self, inputs: np.ndarray) -> np.ndarray:
        """RHS vector(s): source currents into the first WL segments.

        ``inputs`` of shape ``(M,)`` gives a ``(2MN,)`` vector; a batch
        of shape ``(K, M)`` gives a ``(2MN, K)`` column-per-vector RHS.
        An open wordline's source branch is dropped, so its row drives
        no current regardless of the input value.
        """
        g_input = self._input_conductances()
        nodes = self.structure.input_nodes
        if inputs.ndim == 1:
            rhs = np.zeros(self.num_nodes)
            rhs[nodes] = g_input * inputs
        else:
            rhs = np.zeros((self.num_nodes, inputs.shape[0]))
            rhs[nodes, :] = g_input[:, np.newaxis] * inputs.T
        return rhs

    def _factorize(self, matrix: sp.csc_matrix) -> spla.SuperLU:
        """LU-factorize the MNA matrix, surfacing singularity clearly.

        The MNA system is a symmetric M-matrix, so SuperLU's symmetric
        mode with an AT+A ordering beats the default COLAMD here.
        """
        _count_solver_event("factorize")
        try:
            with _obs_trace.span("solver.factorize", nodes=self.num_nodes):
                return spla.splu(
                    matrix,
                    permc_spec="MMD_AT_PLUS_A",
                    options={"SymmetricMode": True},
                )
        except RuntimeError as exc:
            raise SolverError(
                f"singular MNA system ({self.rows}x{self.cols} crossbar, "
                f"wire_resistance={self.wire_resistance:g} ohm, "
                f"sense_resistance={self.sense_resistance:g} ohm): {exc}"
            ) from exc

    def factorized(
        self, cell_conductances: Optional[np.ndarray] = None
    ) -> Callable[[np.ndarray], np.ndarray]:
        """One-time LU factorization; returns a ``solve(rhs)`` callable.

        Factorizes the linearised MNA matrix at ``cell_conductances``
        (the programmed ``1/R`` grid when omitted) once, so callers can
        back-substitute any number of right-hand sides — batched input
        vectors here, ``C v`` products in the RC transient module.
        """
        if cell_conductances is None:
            cell_conductances = self._base_conductances()
        return self._factorize(self._matrix(cell_conductances)).solve

    # ------------------------------------------------------------------
    def _is_nonlinear(self) -> bool:
        return self.device is not None and not np.isinf(
            getattr(self.device, "nonlinearity_v0", np.inf)
        )

    def solve(
        self,
        inputs: np.ndarray,
        tolerance: float = _DEFAULT_TOLERANCE,
        max_iterations: int = _DEFAULT_MAX_ITERATIONS,
    ) -> CrossbarSolution:
        """Solve the network for the given input voltage vector.

        Runs the linear MNA solve, then (for nonlinear devices) iterates:
        evaluate the cell-voltage grid, update every cell's effective
        conductance ``I(V)/V`` from the sinh characteristic in one array
        operation, and re-solve, with damping, until node voltages stop
        moving.

        Raises
        ------
        SolverError
            On malformed inputs or a singular system.
        """
        inputs = np.asarray(inputs, dtype=float)
        if inputs.shape != (self.rows,):
            raise SolverError(
                f"inputs must have shape ({self.rows},), got {inputs.shape}"
            )

        voltages, conductances, iterations, converged = self._solve_nodes(
            inputs, tolerance, max_iterations
        )
        return self._package(voltages, conductances, inputs, iterations,
                             converged)

    def _solve_nodes(
        self,
        inputs: np.ndarray,
        tolerance: float,
        max_iterations: int,
    ) -> Tuple[np.ndarray, np.ndarray, int, bool]:
        """Fixed-point node solve; returns (V, G, iterations, converged).

        The RHS depends only on ``inputs``, so it is built once.  The
        system is LU-factorized on the first iteration only; later
        iterations perturb the matrix slightly (damped conductance
        updates), so their solves run as iterative refinement against
        the frozen factorization — a couple of matvec/back-substitution
        steps instead of a fresh ``splu``.  If refinement ever stalls,
        the solver transparently refactorizes at the current matrix.
        """
        conductances = self._base_conductances()
        rhs = self._rhs(inputs)
        voltages = None
        converged = True
        iterations = 0
        nonlinear = self._is_nonlinear()

        max_rounds = max_iterations if nonlinear else 1
        previous = None
        lu = None
        debug = _obs_trace.debug_enabled()
        residuals = [] if debug else None
        with _obs_trace.span(
            "solver.solve", rows=self.rows, cols=self.cols,
            nonlinear=nonlinear,
        ) as solve_span:
            # Read after the loop (returned iteration count) — a B007
            # blind spot.
            for iterations in range(1, max_rounds + 1):  # noqa: B007
                matrix = self._matrix(conductances)
                if lu is None:
                    lu = self._factorize(matrix)
                    voltages = lu.solve(rhs)
                else:
                    with _obs_trace.span("solver.refine"):
                        voltages = _refined_solve(lu, matrix, rhs, voltages)
                    if voltages is None:
                        # Refinement stalled against the frozen LU:
                        # refactorize at the current operating point.
                        _count_solver_event("refactorize_on_stall")
                        lu = self._factorize(matrix)
                        voltages = lu.solve(rhs)
                    else:
                        _count_solver_event("refine_accept")
                if np.any(~np.isfinite(voltages)):
                    raise SolverError(
                        "solver produced non-finite node voltages"
                    )

                if not nonlinear:
                    break

                v_cell = self._cell_voltages(voltages)
                new_cond = 1.0 / self.device.actual_resistance(
                    self.resistances, v_cell
                )
                if self._cell_gain is not None:
                    new_cond = new_cond * self._cell_gain
                conductances = (
                    _DAMPING * new_cond + (1.0 - _DAMPING) * conductances
                )

                if previous is not None:
                    delta = float(np.max(np.abs(voltages - previous)))
                    if debug:
                        residuals.append(delta)
                    if delta < tolerance:
                        break
                previous = voltages
            else:  # pragma: no cover - pathological devices only
                converged = False
            solve_span.set(iterations=iterations, converged=converged)
            if debug:
                solve_span.set(residuals=residuals)
        if _obs_trace.enabled():
            _count_solver_event("pointwise_solve")
            _count_solver_event("fixed_point_iterations", iterations)

        return voltages, conductances, iterations, converged

    def solve_many(
        self,
        inputs: np.ndarray,
        tolerance: float = _DEFAULT_TOLERANCE,
        max_iterations: int = _DEFAULT_MAX_ITERATIONS,
    ) -> CrossbarSolutionBatch:
        """Solve a batch of ``K`` input vectors, shape ``(K, M)``.

        In the linear regime (no device, or an ideal ohmic one) the
        conductance matrix is independent of the inputs, so the system
        is assembled and LU-factorized **once** and all ``K`` right-hand
        sides are back-substituted against the same factorization —
        the dominant cost of a solve is paid once per batch instead of
        once per vector.

        Nonlinear devices shift every cell's operating point with the
        inputs, so each vector keeps its own (exact) fixed-point
        iteration; the batch runs through :func:`solve_batch`, which
        assembles all members' matrices in one sweep per round and
        vectorizes the device update across the batch axis while
        keeping each per-vector result bit-identical to :meth:`solve`.
        """
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 2 or inputs.shape[1] != self.rows:
            raise SolverError(
                f"batched inputs must have shape (K, {self.rows}), "
                f"got {inputs.shape}"
            )
        k = inputs.shape[0]
        if k == 0:
            raise SolverError("batched solve needs at least one vector")

        if not self._is_nonlinear():
            with _obs_trace.span(
                "solver.solve_many", rows=self.rows, cols=self.cols,
                batch=k,
            ):
                conductances = self._base_conductances()
                matrix = self._matrix(conductances)
                rhs = self._rhs(inputs)
                voltages = self._factorize(matrix).solve(rhs)
                if np.any(~np.isfinite(voltages)):
                    raise SolverError(
                        "solver produced non-finite node voltages"
                    )
                return self._package_batch(
                    voltages, conductances, inputs,
                    np.ones(k, dtype=np.int64), np.ones(k, dtype=bool),
                )

        with _obs_trace.span(
            "solver.solve_many", rows=self.rows, cols=self.cols,
            batch=k,
        ):
            return solve_batch(
                [self] * k, inputs, tolerance, max_iterations
            )

    # ------------------------------------------------------------------
    def _cell_voltages(self, voltages: np.ndarray) -> np.ndarray:
        m, n = self.rows, self.cols
        wl = voltages[: m * n].reshape(m, n)
        bl = voltages[m * n:].reshape(m, n)
        return wl - bl

    def _package(
        self,
        voltages: np.ndarray,
        conductances: np.ndarray,
        inputs: np.ndarray,
        iterations: int,
        converged: bool,
    ) -> CrossbarSolution:
        structure = self.structure
        v_cell = self._cell_voltages(voltages)
        i_cell = v_cell * conductances
        v_out = voltages[structure.output_nodes]
        g_input = self._input_conductances()
        i_in = (inputs - voltages[structure.input_nodes]) * g_input
        total_power = float(np.dot(inputs, i_in))
        return CrossbarSolution(
            output_voltages=np.asarray(v_out, dtype=float),
            cell_voltages=v_cell,
            cell_currents=i_cell,
            input_currents=np.asarray(i_in, dtype=float),
            total_power=total_power,
            iterations=iterations,
            converged=converged,
        )

    def _package_batch(
        self,
        voltages: np.ndarray,  # (2MN, K)
        conductances: np.ndarray,  # (M, N), shared across the batch
        inputs: np.ndarray,  # (K, M)
        iterations: np.ndarray,
        converged: np.ndarray,
    ) -> CrossbarSolutionBatch:
        m, n = self.rows, self.cols
        k = inputs.shape[0]
        structure = self.structure
        wl = voltages[: m * n, :].T.reshape(k, m, n)
        bl = voltages[m * n:, :].T.reshape(k, m, n)
        v_cell = wl - bl
        i_cell = v_cell * conductances
        v_out = voltages[structure.output_nodes, :].T
        g_input = self._input_conductances()
        i_in = (inputs - voltages[structure.input_nodes, :].T) * g_input
        total_power = np.einsum("km,km->k", inputs, i_in)
        return CrossbarSolutionBatch(
            output_voltages=v_out,
            cell_voltages=v_cell,
            cell_currents=i_cell,
            input_currents=i_in,
            total_power=total_power,
            iterations=iterations,
            converged=converged,
        )


# ----------------------------------------------------------------------
# Matrix-batched solving (DESIGN.md S22)
# ----------------------------------------------------------------------
#: Histogram buckets for ``repro_solver_batch_size`` (members per call).
_BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def _count_batched_solve(batch: int) -> None:
    """Record one ``solve_batch`` call on the obs metrics (when on)."""
    if _obs_trace.enabled():
        _obs_metrics.histogram(
            "repro_solver_batch_size",
            "Members per solve_batch call",
            buckets=_BATCH_SIZE_BUCKETS,
        ).observe(float(batch))
        _obs_metrics.counter(
            "repro_solver_batched_solves_total",
            "Crossbar solves executed through the batched path",
        ).inc(batch)


def solve_batch(
    networks: Sequence[CrossbarNetwork],
    inputs: np.ndarray,
    tolerance: float = _DEFAULT_TOLERANCE,
    max_iterations: int = _DEFAULT_MAX_ITERATIONS,
    *,
    on_singular: str = "raise",
) -> CrossbarSolutionBatch:
    """Solve ``B`` same-shape crossbars, one input vector each.

    The whole batch shares one cached :class:`_CrossbarStructure`:
    every member's stamp values are stacked into one array and all CSC
    value arrays are rewritten in a single ``np.add.reduceat`` sweep
    per fixed-point round (:meth:`_CrossbarStructure.matrix_batch`),
    and the nonlinear device update / damping / convergence bookkeeping
    run vectorized across the batch axis.  Each member's *numeric*
    factorization and triangular solves stay per-member — they are what
    pins every member bit-identical to :meth:`CrossbarNetwork.solve`,
    which is the contract the Monte-Carlo / DSE / fault layers rely on
    for schedule-independent reproducibility (and the reason the
    batched path never changes cache keys).

    Parameters
    ----------
    networks:
        The batch members.  All must share one shape and one device
        model (mixing linear and nonlinear members would split the
        fixed-point loop); wire/sense parameters and fault masks may
        differ freely per member.
    inputs:
        Input voltage vectors, shape ``(B, M)`` — row ``b`` drives
        ``networks[b]``.
    tolerance / max_iterations:
        Fixed-point knobs, as in :meth:`CrossbarNetwork.solve`.
    on_singular:
        ``"raise"`` (default) surfaces the first singular member as
        :class:`~repro.errors.SolverError`, like the point-wise path.
        ``"mark"`` records the member in the result's ``failed`` array
        (NaN outputs, ``converged=False``) and keeps solving the rest —
        the fault-campaign contract, where a singular mask is a valid
        *failed trial*, not an error.
    """
    networks = list(networks)
    if not networks:
        raise SolverError("solve_batch needs at least one network")
    if on_singular not in ("raise", "mark"):
        raise SolverError(
            f"on_singular must be 'raise' or 'mark', got {on_singular!r}"
        )
    first = networks[0]
    for net in networks:
        if (net.rows, net.cols) != (first.rows, first.cols):
            raise SolverError(
                "solve_batch members must share one shape; got "
                f"{net.rows}x{net.cols} and {first.rows}x{first.cols}"
            )
        if not (net.device is first.device or net.device == first.device):
            raise SolverError(
                "solve_batch members must share one device model"
            )
    inputs = np.asarray(inputs, dtype=float)
    if inputs.shape != (len(networks), first.rows):
        raise SolverError(
            f"batched inputs must have shape ({len(networks)}, "
            f"{first.rows}), got {inputs.shape}"
        )
    nonlinear = first._is_nonlinear()
    with _obs_trace.span(
        "solver.solve_batch", rows=first.rows, cols=first.cols,
        batch=len(networks), nonlinear=nonlinear,
    ):
        _count_batched_solve(len(networks))
        if nonlinear:
            group = _nonlinear_group_size(first.structure.num_nodes)
            if len(networks) <= group:
                result = _solve_batch_nonlinear(
                    networks, inputs, tolerance, max_iterations,
                    on_singular,
                )
            else:
                # Fixed-point rounds interleave every member's LU
                # factors; past a cache-sized working set that
                # round-robin evicts them faster than it amortises
                # assembly (measured: 32 members at 64x64 run ~25%
                # slower than the point-wise loop, 8 run ~2% faster).
                # Members are independent, so slicing the batch changes
                # wall-clock only, never bits.
                result = _concat_batches([
                    _solve_batch_nonlinear(
                        networks[start:start + group],
                        inputs[start:start + group],
                        tolerance, max_iterations, on_singular,
                    )
                    for start in range(0, len(networks), group)
                ])
        else:
            result = _solve_batch_linear(networks, inputs, on_singular)
        if _obs_trace.enabled():
            _count_solver_event(
                "fixed_point_iterations", int(np.sum(result.iterations))
            )
        return result


# Cache-friendly working-set budget for the nonlinear round-robin: the
# sub-group size keeps (members x num_nodes) under this many unknowns,
# so every member's LU factors stay resident across fixed-point rounds.
# 64k unknowns -> 128 members at 16x16, 32 at 32x32, 8 at 64x64 — the
# empirical sweet spots of the group-size sweep (DESIGN.md S22).
_NONLINEAR_WORKSET_NODES = 65536


def _nonlinear_group_size(num_nodes: int) -> int:
    return max(4, _NONLINEAR_WORKSET_NODES // max(1, num_nodes))


def _concat_batches(
    parts: List[CrossbarSolutionBatch],
) -> CrossbarSolutionBatch:
    """Stitch sub-group results back into one batch, in member order."""
    if len(parts) == 1:
        return parts[0]
    failed = None
    if parts[0].failed is not None:
        failed = np.concatenate([part.failed for part in parts])
    return CrossbarSolutionBatch(
        output_voltages=np.concatenate(
            [part.output_voltages for part in parts]
        ),
        cell_voltages=np.concatenate(
            [part.cell_voltages for part in parts]
        ),
        cell_currents=np.concatenate(
            [part.cell_currents for part in parts]
        ),
        input_currents=np.concatenate(
            [part.input_currents for part in parts]
        ),
        total_power=np.concatenate([part.total_power for part in parts]),
        iterations=np.concatenate([part.iterations for part in parts]),
        converged=np.concatenate([part.converged for part in parts]),
        failed=failed,
    )


def _solve_batch_linear(
    networks: List[CrossbarNetwork],
    inputs: np.ndarray,
    on_singular: str,
) -> CrossbarSolutionBatch:
    """One assembly sweep, then a per-member factorize/solve pass."""
    first = networks[0]
    structure = first.structure
    num_nodes = structure.num_nodes
    batch = len(networks)
    conductances = np.stack(
        [net._base_conductances() for net in networks]
    )
    tails = np.stack([net._wire_tail() for net in networks])
    with _obs_trace.span("solver.assemble", batch=batch):
        data = structure.matrix_batch(conductances, tails)
    voltages = np.zeros((batch, num_nodes))
    failed = np.zeros(batch, dtype=bool)
    for index, net in enumerate(networks):
        matrix = sp.csc_matrix(
            (data[index], structure.csc_indices, structure.csc_indptr),
            shape=(num_nodes, num_nodes),
        )
        rhs = net._rhs(inputs[index])
        try:
            solved = net._factorize(matrix).solve(rhs)
            if np.any(~np.isfinite(solved)):
                raise SolverError(
                    "solver produced non-finite node voltages"
                )
        except SolverError:
            if on_singular == "raise":
                raise
            failed[index] = True
            continue
        voltages[index] = solved
    iterations = np.where(failed, 0, 1).astype(np.int64)
    return _stack_member_solutions(
        networks, voltages, conductances, inputs, iterations,
        converged=~failed, failed=failed,
        mark=(on_singular == "mark"),
    )


def _solve_batch_nonlinear(
    networks: List[CrossbarNetwork],
    inputs: np.ndarray,
    tolerance: float,
    max_iterations: int,
    on_singular: str,
) -> CrossbarSolutionBatch:
    """Batched damped fixed point, bit-identical per member.

    Mirrors :meth:`CrossbarNetwork._solve_nodes` exactly: the first
    round factorizes each member, later rounds refine against the
    member's frozen LU (refactorizing on stall), the device update and
    damping are elementwise (so evaluating them on the stacked grids
    changes nothing), and a member retires the first time its node
    voltages move less than ``tolerance`` — with its conductances
    already advanced by that round's update, as in the point-wise loop.
    """
    first = networks[0]
    device = first.device
    structure = first.structure
    m, n = first.rows, first.cols
    num_nodes = structure.num_nodes
    batch = len(networks)

    conductances = np.stack(
        [net._base_conductances() for net in networks]
    )
    tails = np.stack([net._wire_tail() for net in networks])
    resistances = np.stack([net.resistances for net in networks])
    gain_stack = None
    if any(net._cell_gain is not None for net in networks):
        # Members without a mask multiply by exactly 1.0 — an IEEE
        # identity, so their bits still match the point-wise path
        # (which skips the multiply entirely).
        gain_stack = np.stack([
            np.ones((m, n)) if net._cell_gain is None else net._cell_gain
            for net in networks
        ])
    rhs = np.stack(
        [net._rhs(inputs[index]) for index, net in enumerate(networks)]
    )

    voltages = np.zeros((batch, num_nodes))
    previous = np.zeros((batch, num_nodes))
    has_previous = np.zeros(batch, dtype=bool)
    lus: List[Optional[spla.SuperLU]] = [None] * batch
    iterations = np.zeros(batch, dtype=np.int64)
    converged = np.zeros(batch, dtype=bool)
    failed = np.zeros(batch, dtype=bool)
    active = np.ones(batch, dtype=bool)

    for round_index in range(1, max_iterations + 1):
        members = np.flatnonzero(active)
        if members.size == 0:
            break
        with _obs_trace.span("solver.assemble", batch=members.size):
            data = structure.matrix_batch(
                conductances[members], tails[members]
            )
        for offset, index in enumerate(members):
            net = networks[index]
            iterations[index] = round_index
            matrix = sp.csc_matrix(
                (data[offset], structure.csc_indices,
                 structure.csc_indptr),
                shape=(num_nodes, num_nodes),
            )
            try:
                if lus[index] is None:
                    lus[index] = net._factorize(matrix)
                    solved = lus[index].solve(rhs[index])
                else:
                    with _obs_trace.span("solver.refine"):
                        solved = _refined_solve(
                            lus[index], matrix, rhs[index],
                            voltages[index],
                        )
                    if solved is None:
                        _count_solver_event("refactorize_on_stall")
                        lus[index] = net._factorize(matrix)
                        solved = lus[index].solve(rhs[index])
                    else:
                        _count_solver_event("refine_accept")
                if np.any(~np.isfinite(solved)):
                    raise SolverError(
                        "solver produced non-finite node voltages"
                    )
            except SolverError:
                if on_singular == "raise":
                    raise
                failed[index] = True
                active[index] = False
                continue
            voltages[index] = solved
        members = np.flatnonzero(active)
        if members.size == 0:
            break
        # Device update + damping, vectorized across the batch axis.
        wl = voltages[members, : m * n].reshape(-1, m, n)
        bl = voltages[members, m * n:].reshape(-1, m, n)
        v_cell = wl - bl
        new_cond = 1.0 / device.actual_resistance(
            resistances[members], v_cell
        )
        if gain_stack is not None:
            new_cond = new_cond * gain_stack[members]
        conductances[members] = (
            _DAMPING * new_cond
            + (1.0 - _DAMPING) * conductances[members]
        )
        # Convergence: per-member max |delta|, exact as the scalar loop.
        ready = members[has_previous[members]]
        if ready.size:
            deltas = np.max(
                np.abs(voltages[ready] - previous[ready]), axis=1
            )
            settled = ready[deltas < tolerance]
            converged[settled] = True
            active[settled] = False
        previous[members] = voltages[members]
        has_previous[members] = True

    return _stack_member_solutions(
        networks, voltages, conductances, inputs, iterations,
        converged=converged, failed=failed,
        mark=(on_singular == "mark"),
    )


def _stack_member_solutions(
    networks: List[CrossbarNetwork],
    voltages: np.ndarray,  # (B, 2MN)
    conductances: np.ndarray,  # (B, M, N)
    inputs: np.ndarray,  # (B, M)
    iterations: np.ndarray,
    converged: np.ndarray,
    failed: np.ndarray,
    mark: bool,
) -> CrossbarSolutionBatch:
    """Package per-member results; failed members become NaN rows.

    ``failed`` drives the NaN fill either way, but only surfaces as
    the result's ``failed`` field under ``mark`` (``on_singular=
    "mark"``) — raise-mode results keep the field ``None``, like the
    point-wise path and ``solve_many``.
    """
    batch = len(networks)
    m, n = networks[0].rows, networks[0].cols
    output_voltages = np.full((batch, n), np.nan)
    cell_voltages = np.full((batch, m, n), np.nan)
    cell_currents = np.full((batch, m, n), np.nan)
    input_currents = np.full((batch, m), np.nan)
    total_power = np.full(batch, np.nan)
    for index, net in enumerate(networks):
        if failed[index]:
            continue
        solution = net._package(
            voltages[index], conductances[index], inputs[index],
            int(iterations[index]), bool(converged[index]),
        )
        output_voltages[index] = solution.output_voltages
        cell_voltages[index] = solution.cell_voltages
        cell_currents[index] = solution.cell_currents
        input_currents[index] = solution.input_currents
        total_power[index] = solution.total_power
    return CrossbarSolutionBatch(
        output_voltages=output_voltages,
        cell_voltages=cell_voltages,
        cell_currents=cell_currents,
        input_currents=input_currents,
        total_power=total_power,
        iterations=np.asarray(iterations, dtype=np.int64),
        converged=np.asarray(converged, dtype=bool),
        failed=np.asarray(failed, dtype=bool) if mark else None,
    )


def _refined_solve(
    lu: spla.SuperLU,
    matrix: sp.csc_matrix,
    rhs: np.ndarray,
    guess: np.ndarray,
) -> Optional[np.ndarray]:
    """Solve ``matrix @ x = rhs`` by iterative refinement against ``lu``.

    ``lu`` is the factorization of a nearby matrix (the previous
    nonlinear iterate) and ``guess`` the previous solution; each step
    applies the correction ``lu.solve(rhs - matrix @ x)``.  Accepts at
    :data:`_REFINE_TOLERANCE` (relative), or — since rounding noise
    floors the correction near ``eps * cond`` — at stagnation if the
    correction is already below :data:`_REFINE_ACCEPT`.  Returns
    ``None`` when neither holds within :data:`_MAX_REFINE_STEPS`; the
    caller then refactorizes.
    """
    x = guess
    previous_norm = np.inf
    for _ in range(_MAX_REFINE_STEPS):
        correction = lu.solve(rhs - matrix @ x)
        if not np.all(np.isfinite(correction)):
            return None
        x = x + correction
        norm = float(np.max(np.abs(correction)))
        scale = float(np.max(np.abs(x))) or 1.0
        if norm <= _REFINE_TOLERANCE * scale:
            return x
        if norm >= 0.5 * previous_norm:  # hit the rounding floor
            return x if norm <= _REFINE_ACCEPT * scale else None
        previous_norm = norm
    return None


def ideal_output_voltages(
    resistances: np.ndarray,
    inputs: np.ndarray,
    sense_resistance: float,
) -> np.ndarray:
    """Ideal (r = 0, ohmic) column outputs per Eq. 1/Eq. 2 of the paper.

    For column ``k``: ``v_out = sum_j g_jk v_j / (g_s + sum_j g_jk)``,
    the exact solution of each column divider with zero wire resistance.
    ``inputs`` may be one vector ``(M,)`` or a batch ``(K, M)`` (the
    result then has a matching leading axis).
    """
    resistances = np.asarray(resistances, dtype=float)
    inputs = np.asarray(inputs, dtype=float)
    if resistances.ndim != 2 or inputs.shape[-1] != resistances.shape[0]:
        raise SolverError("shape mismatch between resistances and inputs")
    conductances = 1.0 / resistances
    g_sense = 1.0 / sense_resistance
    numerator = inputs @ conductances
    denominator = g_sense + conductances.sum(axis=0)
    return numerator / denominator
