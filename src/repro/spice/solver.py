"""Modified-nodal-analysis solver for the full crossbar network.

The network modelled here is exactly the one the paper's Sec. VI derives
its behavior-level shortcut from: ``M x N`` memristor cells, ``2MN``
interconnect segments of resistance ``r`` (one wordline and one bitline
segment per cell), and ``N`` sense resistors ``R_s`` to ground.  Input
voltage sources drive the wordlines through the first wire segment.

Unknowns are the ``2MN`` internal node voltages (the input/output node of
every cell).  The conductance matrix is assembled sparse and solved with
``scipy.sparse.linalg.spsolve``; the memristor nonlinearity is handled by a
damped fixed-point iteration that re-evaluates each cell's effective
conductance at its present operating voltage — the "slow, exact" path that
MNSIM's analytic model is validated against and benchmarked for speed-up
(Tables II/III, Fig. 5).

Pickle-safety contract: :class:`CrossbarNetwork`, :class:`CrossbarSolution`
and every solver input (arrays, :class:`~repro.tech.memristor.
MemristorModel`) must stay picklable — :mod:`repro.runtime` ships them to
``ProcessPoolExecutor`` workers for parallel Monte-Carlo sampling.  Keep
state in plain attributes; no lambdas, local classes, or open handles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import SolverError
from repro.tech.memristor import MemristorModel

# Wire resistances below this are clamped to keep the MNA matrix
# well-conditioned (an exactly-zero r would short nodes together).
_MIN_WIRE_RESISTANCE = 1e-6

_DEFAULT_TOLERANCE = 1e-10
_DEFAULT_MAX_ITERATIONS = 60
_DAMPING = 0.7


@dataclass
class CrossbarSolution:
    """Result of one circuit-level crossbar solve.

    Attributes
    ----------
    output_voltages:
        Voltage across each column's sense resistor, shape ``(N,)``.
    cell_voltages:
        Voltage across each memristor cell, shape ``(M, N)``.
    cell_currents:
        Current through each cell, shape ``(M, N)``.
    input_currents:
        Current delivered by each input source, shape ``(M,)``.
    total_power:
        Total power delivered by the sources, watts.
    iterations:
        Nonlinear fixed-point iterations performed (1 for ideal devices).
    converged:
        Whether the nonlinear iteration met the tolerance.
    """

    output_voltages: np.ndarray
    cell_voltages: np.ndarray
    cell_currents: np.ndarray
    input_currents: np.ndarray
    total_power: float
    iterations: int
    converged: bool


class CrossbarNetwork:
    """The resistor network of one crossbar, ready to solve.

    Parameters
    ----------
    resistances:
        Programmed (ideal, ohmic) cell resistances, shape ``(M, N)``.
    wire_resistance:
        Per-segment interconnect resistance ``r`` in ohms.
    sense_resistance:
        Sense resistor ``R_s`` per column in ohms.
    device:
        Optional memristor model supplying the nonlinear V-I curve; if
        ``None`` the cells are ideal ohmic resistors.
    """

    def __init__(
        self,
        resistances: np.ndarray,
        wire_resistance: float,
        sense_resistance: float,
        device: Optional[MemristorModel] = None,
    ) -> None:
        resistances = np.asarray(resistances, dtype=float)
        if resistances.ndim != 2:
            raise SolverError("resistances must be a 2-D (M x N) array")
        if np.any(resistances <= 0):
            raise SolverError("all cell resistances must be positive")
        if sense_resistance <= 0:
            raise SolverError("sense_resistance must be positive")
        if wire_resistance < 0:
            raise SolverError("wire_resistance must be non-negative")
        self.resistances = resistances
        self.rows, self.cols = resistances.shape
        self.wire_resistance = max(wire_resistance, _MIN_WIRE_RESISTANCE)
        self.sense_resistance = sense_resistance
        self.device = device

    # ------------------------------------------------------------------
    # Node numbering: wordline node of cell (i, j) -> i*N + j
    #                 bitline  node of cell (i, j) -> M*N + i*N + j
    # ------------------------------------------------------------------
    def _wl(self, i: int, j: int) -> int:
        return i * self.cols + j

    def _bl(self, i: int, j: int) -> int:
        return self.rows * self.cols + i * self.cols + j

    @property
    def num_nodes(self) -> int:
        """Internal unknown node count (2MN, per Sec. VI)."""
        return 2 * self.rows * self.cols

    # ------------------------------------------------------------------
    def _assemble(
        self, cell_conductances: np.ndarray, inputs: np.ndarray
    ):
        """Assemble the sparse conductance matrix and RHS vector."""
        m, n = self.rows, self.cols
        g_wire = 1.0 / self.wire_resistance
        g_sense = 1.0 / self.sense_resistance

        row_idx = []
        col_idx = []
        values = []
        rhs = np.zeros(self.num_nodes)

        def stamp(a: int, b: int, g: float) -> None:
            """Stamp conductance g between nodes a and b (-1 = ground/source
            handled by the caller via the diagonal + rhs)."""
            row_idx.extend((a, b, a, b))
            col_idx.extend((a, b, b, a))
            values.extend((g, g, -g, -g))

        def stamp_to_ref(a: int, g: float, v_ref: float = 0.0) -> None:
            """Stamp conductance g between node a and a fixed voltage."""
            row_idx.append(a)
            col_idx.append(a)
            values.append(g)
            if v_ref:
                rhs[a] += g * v_ref

        for i in range(m):
            # Input source through the first wordline segment.
            stamp_to_ref(self._wl(i, 0), g_wire, inputs[i])
            for j in range(n):
                # Cell between its wordline and bitline nodes.
                stamp(self._wl(i, j), self._bl(i, j), cell_conductances[i, j])
                # Wordline segment to the next cell.
                if j + 1 < n:
                    stamp(self._wl(i, j), self._wl(i, j + 1), g_wire)
                # Bitline segment to the next row.
                if i + 1 < m:
                    stamp(self._bl(i, j), self._bl(i + 1, j), g_wire)
        for j in range(n):
            # Sense resistor from the bitline bottom to ground.
            stamp_to_ref(self._bl(m - 1, j), g_sense)

        matrix = sp.csr_matrix(
            (values, (row_idx, col_idx)),
            shape=(self.num_nodes, self.num_nodes),
        )
        return matrix, rhs

    # ------------------------------------------------------------------
    def solve(
        self,
        inputs: np.ndarray,
        tolerance: float = _DEFAULT_TOLERANCE,
        max_iterations: int = _DEFAULT_MAX_ITERATIONS,
    ) -> CrossbarSolution:
        """Solve the network for the given input voltage vector.

        Runs the linear MNA solve, then (for nonlinear devices) iterates:
        evaluate each cell's voltage, update its effective conductance
        ``I(V)/V`` from the sinh characteristic, and re-solve, with
        damping, until node voltages stop moving.

        Raises
        ------
        SolverError
            On malformed inputs or a singular system.
        """
        inputs = np.asarray(inputs, dtype=float)
        if inputs.shape != (self.rows,):
            raise SolverError(
                f"inputs must have shape ({self.rows},), got {inputs.shape}"
            )

        conductances = 1.0 / self.resistances
        voltages = None
        converged = True
        iterations = 0
        nonlinear = self.device is not None and not np.isinf(
            getattr(self.device, "nonlinearity_v0", np.inf)
        )

        max_rounds = max_iterations if nonlinear else 1
        previous = None
        for iterations in range(1, max_rounds + 1):
            matrix, rhs = self._assemble(conductances, inputs)
            try:
                voltages = spla.spsolve(matrix, rhs)
            except RuntimeError as exc:  # pragma: no cover - singular system
                raise SolverError(f"sparse solve failed: {exc}") from exc
            if np.any(~np.isfinite(voltages)):
                raise SolverError("solver produced non-finite node voltages")

            if not nonlinear:
                break

            v_cell = self._cell_voltages(voltages)
            new_cond = np.empty_like(conductances)
            for i in range(self.rows):
                for j in range(self.cols):
                    r_act = self.device.actual_resistance(
                        self.resistances[i, j], v_cell[i, j]
                    )
                    new_cond[i, j] = 1.0 / r_act
            conductances = (
                _DAMPING * new_cond + (1.0 - _DAMPING) * conductances
            )

            if previous is not None:
                delta = float(np.max(np.abs(voltages - previous)))
                if delta < tolerance:
                    break
            previous = voltages
        else:  # pragma: no cover - pathological devices only
            converged = False

        return self._package(voltages, conductances, inputs, iterations,
                             converged)

    # ------------------------------------------------------------------
    def _cell_voltages(self, voltages: np.ndarray) -> np.ndarray:
        m, n = self.rows, self.cols
        wl = voltages[: m * n].reshape(m, n)
        bl = voltages[m * n:].reshape(m, n)
        return wl - bl

    def _package(
        self,
        voltages: np.ndarray,
        conductances: np.ndarray,
        inputs: np.ndarray,
        iterations: int,
        converged: bool,
    ) -> CrossbarSolution:
        m, n = self.rows, self.cols
        v_cell = self._cell_voltages(voltages)
        i_cell = v_cell * conductances
        v_out = voltages[[self._bl(m - 1, j) for j in range(n)]]
        g_wire = 1.0 / self.wire_resistance
        i_in = (inputs - voltages[[self._wl(i, 0) for i in range(m)]]) * g_wire
        total_power = float(np.dot(inputs, i_in))
        return CrossbarSolution(
            output_voltages=np.asarray(v_out, dtype=float),
            cell_voltages=v_cell,
            cell_currents=i_cell,
            input_currents=np.asarray(i_in, dtype=float),
            total_power=total_power,
            iterations=iterations,
            converged=converged,
        )


def ideal_output_voltages(
    resistances: np.ndarray,
    inputs: np.ndarray,
    sense_resistance: float,
) -> np.ndarray:
    """Ideal (r = 0, ohmic) column outputs per Eq. 1/Eq. 2 of the paper.

    For column ``k``: ``v_out = sum_j g_jk v_j / (g_s + sum_j g_jk)``,
    the exact solution of each column divider with zero wire resistance.
    """
    resistances = np.asarray(resistances, dtype=float)
    inputs = np.asarray(inputs, dtype=float)
    if resistances.ndim != 2 or inputs.shape != (resistances.shape[0],):
        raise SolverError("shape mismatch between resistances and inputs")
    conductances = 1.0 / resistances
    g_sense = 1.0 / sense_resistance
    numerator = conductances.T @ inputs
    denominator = g_sense + conductances.sum(axis=0)
    return numerator / denominator
