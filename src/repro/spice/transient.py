"""RC settle-time estimation from the real crossbar network.

The behavior-level latency model uses a fixed analog settle time
(:data:`repro.tech.cmos.CROSSBAR_SETTLE_TIME`, 20 ns) consistent with
the 10-100 ns memristor read window the paper cites.  This module
derives the settle time from first principles for any configuration,
so the constant can be justified (and overridden) per design:

* every node of the crossbar carries the wire capacitance of its two
  adjacent segments;
* the network's dominant time constant is estimated by **power
  iteration** on the (diagonally preconditioned) RC system
  ``C dv/dt = -G v``: the slowest eigenmode of ``G^{-1} C``;
* settling to half an LSB of an ``n``-bit read takes
  ``tau * ln(2^(n+1))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.spice.solver import CrossbarNetwork

_MAX_POWER_ITERATIONS = 2000
_POWER_TOLERANCE = 1e-8


@dataclass(frozen=True)
class SettleEstimate:
    """Dominant RC time constant and derived settle times."""

    time_constant: float
    node_capacitance: float

    def settle_time(self, bits: int = 8) -> float:
        """Time to settle within half an LSB of a ``bits``-bit read."""
        if bits < 1:
            raise SolverError("bits must be >= 1")
        return self.time_constant * math.log(2.0 ** (bits + 1))


def estimate_settle(
    network: CrossbarNetwork,
    segment_capacitance: float,
) -> SettleEstimate:
    """Dominant time constant of the crossbar's RC network.

    Parameters
    ----------
    network:
        The resistor network (cell resistances at their programmed
        values; the linearised conductances are used).
    segment_capacitance:
        Wire capacitance of one cell-to-cell segment (farads); every
        internal node carries two segments' worth.
    """
    if segment_capacitance <= 0:
        raise SolverError("segment_capacitance must be positive")

    # Node capacitance: two adjacent wire segments per node.
    c_node = 2.0 * segment_capacitance

    # Power iteration on A = G^{-1} C  (C = c_node * I): the dominant
    # eigenvalue of A is the slowest time constant.  Each step solves
    # G x = C v against the network's shared one-time factorization.
    solve = network.factorized()
    vector = np.ones(network.num_nodes)
    vector /= np.linalg.norm(vector)
    eigenvalue = 0.0
    for _ in range(_MAX_POWER_ITERATIONS):
        step = solve(c_node * vector)
        norm = np.linalg.norm(step)
        if norm == 0:  # pragma: no cover - degenerate network
            raise SolverError("RC power iteration collapsed")
        vector = step / norm
        if eigenvalue and abs(norm - eigenvalue) <= (
            _POWER_TOLERANCE * eigenvalue
        ):
            eigenvalue = norm
            break
        eigenvalue = norm
    return SettleEstimate(
        time_constant=float(eigenvalue), node_capacitance=c_node
    )


def settle_time_for_config(config, bits: int = None) -> float:
    """Settle time of one configured crossbar (convenience wrapper).

    Builds the worst-case (all cells at ``R_min``) network for the
    configuration's crossbar size, wire node, and device, and returns
    the ``signal_bits``-accurate settle time.
    """
    device = config.device
    size = config.crossbar_size
    pitch = device.cell_pitch(config.cell_type)
    segment_r = config.wire.segment_resistance(pitch)
    segment_c = config.wire.segment_capacitance(pitch)
    resistances = np.full((size, size), device.r_min)
    network = CrossbarNetwork(resistances, segment_r, 1000.0)
    estimate = estimate_settle(network, segment_c)
    return estimate.settle_time(
        config.signal_bits if bits is None else bits
    )
