"""SPICE netlist export of the crossbar network (Sec. IV.A).

MNSIM can hand a specific weight matrix and input vector off to an external
circuit simulator by emitting a netlist of the same resistor network the
internal solver uses: input sources, wordline/bitline wire segments, one
resistor per cell (at its programmed state), and per-column sense
resistors.  The format is plain SPICE3 cards with an operating-point
analysis, so the file loads in ngspice/HSPICE unmodified.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import SolverError


def generate_netlist(
    resistances: np.ndarray,
    inputs: np.ndarray,
    wire_resistance: float,
    sense_resistance: float,
    title: str = "MNSIM crossbar export",
) -> str:
    """Return a SPICE netlist for one crossbar solve.

    Node naming: ``wl_i_j`` / ``bl_i_j`` for the input/output node of
    cell ``(i, j)``; ``in_i`` for the driven end of wordline ``i``;
    ``0`` is ground.

    Parameters mirror :class:`~repro.spice.solver.CrossbarNetwork`.
    """
    resistances = np.asarray(resistances, dtype=float)
    inputs = np.asarray(inputs, dtype=float)
    if resistances.ndim != 2:
        raise SolverError("resistances must be a 2-D (M x N) array")
    rows, cols = resistances.shape
    if inputs.shape != (rows,):
        raise SolverError(f"inputs must have shape ({rows},)")
    if wire_resistance <= 0 or sense_resistance <= 0:
        raise SolverError("resistances must be positive for netlist export")

    lines: List[str] = [f"* {title}", f"* {rows}x{cols} memristor crossbar"]

    for i in range(rows):
        lines.append(f"Vin{i} in_{i} 0 DC {inputs[i]:.6g}")
        lines.append(f"Rwin{i} in_{i} wl_{i}_0 {wire_resistance:.6g}")

    for i in range(rows):
        for j in range(cols):
            lines.append(
                f"Rcell{i}_{j} wl_{i}_{j} bl_{i}_{j} "
                f"{resistances[i, j]:.6g}"
            )
            if j + 1 < cols:
                lines.append(
                    f"Rwl{i}_{j} wl_{i}_{j} wl_{i}_{j + 1} "
                    f"{wire_resistance:.6g}"
                )
            if i + 1 < rows:
                lines.append(
                    f"Rbl{i}_{j} bl_{i}_{j} bl_{i + 1}_{j} "
                    f"{wire_resistance:.6g}"
                )

    for j in range(cols):
        lines.append(
            f"Rs{j} bl_{rows - 1}_{j} 0 {sense_resistance:.6g}"
        )

    outputs = " ".join(f"v(bl_{rows - 1}_{j})" for j in range(cols))
    lines.extend([".op", f".print op {outputs}", ".end", ""])
    return "\n".join(lines)
