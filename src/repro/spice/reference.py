"""Loop-based reference implementation of the MNA crossbar solve.

This is the original (pre-vectorization) solver kept verbatim as an
executable specification: Python-loop assembly of the ``2MN x 2MN``
system, per-cell scalar nonlinear updates, and a fresh ``spsolve`` per
fixed-point iteration.  It exists for two reasons:

* the equivalence suite (``tests/test_spice_vectorized.py``) pins the
  vectorized solver to it within tight tolerances, so any change to the
  fast path that alters results is caught immediately;
* the performance benchmark (``benchmarks/test_spice_solver_perf.py``)
  measures the vectorized solver's speedup against it on the same
  machine in the same run (``BENCH_spice.json``).

Never use this from production paths — that is the whole point.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import SolverError
from repro.spice.solver import (
    _DAMPING,
    _DEFAULT_MAX_ITERATIONS,
    _DEFAULT_TOLERANCE,
    CrossbarNetwork,
    CrossbarSolution,
)


def reference_assemble(
    network: CrossbarNetwork,
    cell_conductances: np.ndarray,
    inputs: np.ndarray,
):
    """Assemble the sparse conductance matrix and RHS with Python loops."""
    m, n = network.rows, network.cols
    g_wire = 1.0 / network.wire_resistance
    g_sense = 1.0 / network.sense_resistance

    row_idx = []
    col_idx = []
    values = []
    rhs = np.zeros(network.num_nodes)

    def stamp(a: int, b: int, g: float) -> None:
        row_idx.extend((a, b, a, b))
        col_idx.extend((a, b, b, a))
        values.extend((g, g, -g, -g))

    def stamp_to_ref(a: int, g: float, v_ref: float = 0.0) -> None:
        row_idx.append(a)
        col_idx.append(a)
        values.append(g)
        if v_ref:
            rhs[a] += g * v_ref

    for i in range(m):
        stamp_to_ref(network._wl(i, 0), g_wire, inputs[i])
        for j in range(n):
            stamp(network._wl(i, j), network._bl(i, j),
                  cell_conductances[i, j])
            if j + 1 < n:
                stamp(network._wl(i, j), network._wl(i, j + 1), g_wire)
            if i + 1 < m:
                stamp(network._bl(i, j), network._bl(i + 1, j), g_wire)
    for j in range(n):
        stamp_to_ref(network._bl(m - 1, j), g_sense)

    matrix = sp.csr_matrix(
        (values, (row_idx, col_idx)),
        shape=(network.num_nodes, network.num_nodes),
    )
    return matrix, rhs


def reference_solve(
    network: CrossbarNetwork,
    inputs: np.ndarray,
    tolerance: float = _DEFAULT_TOLERANCE,
    max_iterations: int = _DEFAULT_MAX_ITERATIONS,
) -> CrossbarSolution:
    """The original per-cell, re-assembling, single-RHS solve."""
    inputs = np.asarray(inputs, dtype=float)
    if inputs.shape != (network.rows,):
        raise SolverError(
            f"inputs must have shape ({network.rows},), got {inputs.shape}"
        )

    conductances = 1.0 / network.resistances
    voltages = None
    converged = True
    iterations = 0
    nonlinear = network.device is not None and not np.isinf(
        getattr(network.device, "nonlinearity_v0", np.inf)
    )

    max_rounds = max_iterations if nonlinear else 1
    previous = None
    # The loop variable is read *after* the loop (iteration count in
    # the packaged result), which B007 cannot see.
    for iterations in range(1, max_rounds + 1):  # noqa: B007
        matrix, rhs = reference_assemble(network, conductances, inputs)
        voltages = spla.spsolve(matrix, rhs)
        if np.any(~np.isfinite(voltages)):
            raise SolverError("solver produced non-finite node voltages")

        if not nonlinear:
            break

        v_cell = network._cell_voltages(voltages)
        new_cond = np.empty_like(conductances)
        for i in range(network.rows):
            for j in range(network.cols):
                r_act = network.device.actual_resistance(
                    network.resistances[i, j], v_cell[i, j]
                )
                new_cond[i, j] = 1.0 / r_act
        conductances = (
            _DAMPING * new_cond + (1.0 - _DAMPING) * conductances
        )

        if previous is not None:
            delta = float(np.max(np.abs(voltages - previous)))
            if delta < tolerance:
                break
        previous = voltages
    else:  # pragma: no cover - pathological devices only
        converged = False

    return network._package(voltages, conductances, inputs, iterations,
                            converged)
