"""MNSIM reproduction: a behavior-level simulator for memristor-based
neuromorphic computing accelerators.

Reimplementation of *MNSIM: Simulation Platform for Memristor-based
Neuromorphic Computing System* (Xia et al., DATE 2016): the three-level
accelerator hierarchy, area/power/latency models, the behavior-level
computing-accuracy model, a circuit-level crossbar solver for
validation, and design-space exploration.

Quickstart
----------
>>> from repro import SimConfig, Accelerator, mlp
>>> config = SimConfig(crossbar_size=128, cmos_tech=45)
>>> accelerator = Accelerator(config, mlp([784, 256, 10], name="demo"))
>>> summary = accelerator.summary()     # area/energy/latency/accuracy
"""

from repro.config import SimConfig
from repro.report import Performance, ReportNode
from repro.arch import (
    Accelerator,
    AcceleratorSummary,
    ComputationBank,
    ComputationUnit,
    Controller,
    Instruction,
    LayerMapping,
    Opcode,
    assemble,
)
from repro.accuracy import AccuracyModel
from repro.circuits import CustomModule, ModuleRegistry
from repro.nn import (
    ConvLayer,
    FullyConnectedLayer,
    Network,
    caffenet,
    jpeg_autoencoder,
    large_bank_layer,
    mlp,
    validation_mlp,
    vgg16,
)
from repro.dse import (
    DesignPoint,
    DesignSpace,
    explore,
    optimal,
    optimal_table,
    pentagon_factors,
)
from repro.errors import (
    ConfigError,
    ExplorationError,
    MappingError,
    MnsimError,
    SolverError,
    TechnologyError,
)

__version__ = "1.0.0"

__all__ = [
    "SimConfig",
    "Performance",
    "ReportNode",
    "Accelerator",
    "AcceleratorSummary",
    "ComputationBank",
    "ComputationUnit",
    "LayerMapping",
    "Controller",
    "Instruction",
    "Opcode",
    "assemble",
    "AccuracyModel",
    "CustomModule",
    "ModuleRegistry",
    "Network",
    "FullyConnectedLayer",
    "ConvLayer",
    "mlp",
    "validation_mlp",
    "jpeg_autoencoder",
    "large_bank_layer",
    "caffenet",
    "vgg16",
    "DesignSpace",
    "DesignPoint",
    "explore",
    "optimal",
    "optimal_table",
    "pentagon_factors",
    "MnsimError",
    "ConfigError",
    "TechnologyError",
    "MappingError",
    "SolverError",
    "ExplorationError",
    "__version__",
]
