"""Neuromorphic-network substrate: layer/network descriptions and inference.

The simulator consumes *descriptions* of networks (shapes, precisions,
layer kinds) rather than trained weights — the performance and accuracy
models only need the structure (Sec. III).  This package provides:

* :mod:`~repro.nn.layers` — fully-connected and convolutional layer specs
  with the derived quantities the mapper needs (weight-matrix shape,
  compute passes per sample, output geometry).
* :mod:`~repro.nn.networks` — the :class:`~repro.nn.networks.Network`
  container plus the built-in topologies used in the paper's evaluation:
  the 3-layer validation MLP, the 64-16-64 JPEG autoencoder, the
  2048x1024 large-bank layer, CaffeNet, and VGG-16.
* :mod:`~repro.nn.quantize` — fixed-point quantization and the
  weight-to-conductance-level mapping.
* :mod:`~repro.nn.inference` — numpy reference inference with crossbar
  error injection, used to validate the accuracy model end to end.
"""

from repro.nn.layers import ConvLayer, FullyConnectedLayer, LayerSpec
from repro.nn.networks import (
    Network,
    caffenet,
    jpeg_autoencoder,
    large_bank_layer,
    mlp,
    validation_mlp,
    vgg16,
)
from repro.nn.quantize import (
    dequantize,
    quantize,
    weight_to_cell_levels,
)
from repro.nn.inference import MlpInference
from repro.nn.snn import SnnOperatingPoint, SnnTimingModel
from repro.nn.trainer import (
    MlpTrainer,
    TrainResult,
    classification_accuracy,
    make_cluster_dataset,
)
from repro.nn.persistence import load_network, save_network
from repro.nn.workloads import (
    crossbar_workload,
    image_blocks,
    random_inputs,
    random_weights,
)

__all__ = [
    "LayerSpec",
    "FullyConnectedLayer",
    "ConvLayer",
    "Network",
    "mlp",
    "validation_mlp",
    "jpeg_autoencoder",
    "large_bank_layer",
    "caffenet",
    "vgg16",
    "quantize",
    "dequantize",
    "weight_to_cell_levels",
    "MlpInference",
    "SnnTimingModel",
    "SnnOperatingPoint",
    "MlpTrainer",
    "TrainResult",
    "classification_accuracy",
    "make_cluster_dataset",
    "random_weights",
    "random_inputs",
    "image_blocks",
    "crossbar_workload",
    "save_network",
    "load_network",
]
