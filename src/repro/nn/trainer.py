"""Minimal numpy training substrate for application-level studies.

The accuracy model predicts *signal* error rates; what a user finally
cares about is **application accuracy** — how much classification
accuracy a network loses when deployed on the analog substrate.  This
module provides the smallest credible ML stack to measure that, with
no external dependencies:

* :func:`make_cluster_dataset` — a seeded Gaussian-clusters
  classification task (well-separated, learnable by a small MLP);
* :class:`MlpTrainer` — plain SGD with backprop for the same
  fully-connected networks the simulator maps (sigmoid/ReLU hidden
  layers, softmax cross-entropy head);
* :func:`classification_accuracy` — top-1 accuracy of a forward
  function, so the trained float network, its fixed-point reference,
  and the functional (crossbar) simulation can all be scored on the
  identical test set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.nn.networks import Network
from repro.nn.layers import FullyConnectedLayer


def make_cluster_dataset(
    rng: np.random.Generator,
    features: int = 16,
    classes: int = 4,
    samples_per_class: int = 100,
    spread: float = 0.25,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian-cluster classification data in the signal range.

    Class centres are drawn uniformly in [-0.7, 0.7]^features; samples
    scatter around them with the given ``spread`` and are clipped into
    (-1, 1) so they survive signal quantization unchanged in
    distribution.  Returns ``(inputs, labels)``.
    """
    if classes < 2 or features < 1 or samples_per_class < 1:
        raise ConfigError("need >= 2 classes, >= 1 feature and sample")
    centres = rng.uniform(-0.7, 0.7, size=(classes, features))
    inputs, labels = [], []
    for label, centre in enumerate(centres):
        points = centre + rng.normal(
            0.0, spread, size=(samples_per_class, features)
        )
        inputs.append(points)
        labels.append(np.full(samples_per_class, label))
    x = np.clip(np.concatenate(inputs), -0.999, 0.999)
    y = np.concatenate(labels)
    order = rng.permutation(len(y))
    return x[order], y[order]


def _softmax(z: np.ndarray) -> np.ndarray:
    shifted = z - z.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


@dataclass
class TrainResult:
    """Loss trace and final weights of one training run."""

    weights: List[np.ndarray]
    losses: List[float]


class MlpTrainer:
    """SGD + backprop for the library's fully-connected networks.

    The final layer is treated as a linear softmax head regardless of
    its declared activation (standard classification practice); hidden
    layers use their declared sigmoid/ReLU.
    """

    def __init__(self, network: Network, rng: np.random.Generator) -> None:
        for layer in network.layers:
            if not isinstance(layer, FullyConnectedLayer):
                raise ConfigError("trainer supports FC networks only")
        self.network = network
        self.rng = rng
        self.weights: List[np.ndarray] = []
        for layer in network.layers:
            out_features, in_features = layer.weight_shape
            scale = 1.0 / np.sqrt(in_features)
            self.weights.append(
                rng.uniform(-scale, scale, size=(out_features, in_features))
            )

    # ------------------------------------------------------------------
    def _hidden_activation(self, index: int):
        name = self.network.layers[index].activation
        if name == "relu":
            return (lambda z: np.maximum(z, 0.0),
                    lambda z: (z > 0).astype(float))
        # sigmoid default (also used for "if"/"none" hidden layers)
        def sig(z):
            return 1.0 / (1.0 + np.exp(-z))

        return (sig, lambda z: sig(z) * (1.0 - sig(z)))

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Float forward pass returning class probabilities."""
        signal = np.asarray(x, dtype=float)
        last = len(self.weights) - 1
        for index, matrix in enumerate(self.weights):
            z = signal @ matrix.T
            if index == last:
                return _softmax(z)
            activation, _grad = self._hidden_activation(index)
            signal = activation(z)
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    def train(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        epochs: int = 30,
        batch_size: int = 32,
        learning_rate: float = 0.5,
    ) -> TrainResult:
        """Mini-batch SGD on softmax cross-entropy."""
        if epochs < 1 or batch_size < 1 or learning_rate <= 0:
            raise ConfigError("bad training hyper-parameters")
        x = np.asarray(inputs, dtype=float)
        y = np.asarray(labels)
        classes = self.weights[-1].shape[0]
        one_hot = np.eye(classes)[y]

        losses = []
        for _epoch in range(epochs):
            order = self.rng.permutation(len(y))
            epoch_loss = 0.0
            for start in range(0, len(y), batch_size):
                batch = order[start:start + batch_size]
                xb, yb = x[batch], one_hot[batch]

                # Forward, caching activations.
                activations = [xb]
                zs = []
                last = len(self.weights) - 1
                signal = xb
                for index, matrix in enumerate(self.weights):
                    z = signal @ matrix.T
                    zs.append(z)
                    if index == last:
                        signal = _softmax(z)
                    else:
                        act, _ = self._hidden_activation(index)
                        signal = act(z)
                    activations.append(signal)

                probs = activations[-1]
                epoch_loss += float(
                    -np.mean(
                        np.log(np.clip(probs[yb.astype(bool)], 1e-12, 1))
                    )
                ) * len(batch)

                # Backward.
                delta = (probs - yb) / len(batch)
                for index in range(last, -1, -1):
                    grad = delta.T @ activations[index]
                    if index > 0:
                        _, dact = self._hidden_activation(index - 1)
                        delta = (delta @ self.weights[index]) * dact(
                            zs[index - 1]
                        )
                    self.weights[index] -= learning_rate * grad
            losses.append(epoch_loss / len(y))
        return TrainResult(weights=[w.copy() for w in self.weights],
                           losses=losses)


def classification_accuracy(
    forward: Callable[[np.ndarray], np.ndarray],
    inputs: np.ndarray,
    labels: np.ndarray,
) -> float:
    """Top-1 accuracy of any forward function (float, fixed-point, or
    functional-crossbar).  ``forward`` maps one input vector to class
    scores."""
    correct = 0
    for x, y in zip(inputs, labels):
        scores = np.asarray(forward(x))
        if int(np.argmax(scores)) == int(y):
            correct += 1
    return correct / len(labels)
