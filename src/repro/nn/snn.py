"""Spiking-network (SNN) timing and energy model (Sec. II.B.2).

MNSIM treats SNNs whose cells store fixed weights as fully-connected
networks with integrate-and-fire neurons.  What changes against a DNN
is the *temporal* dimension: a rate-coded SNN presents each sample as a
spike train of ``timesteps`` binary frames, so the accelerator computes
``timesteps`` passes per sample, with 1-bit inputs (no DAC resolution
needed) and an accuracy that improves with the observation window.

:class:`SnnTimingModel` wraps an accelerator built from an SNN-typed
network and exposes the per-sample cost and the rate-coding accuracy
trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.report import Performance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.arch.accelerator import Accelerator


@dataclass(frozen=True)
class SnnOperatingPoint:
    """Cost and rate-coding precision at one observation window."""

    timesteps: int
    energy_per_sample: float
    latency_per_sample: float
    rate_coding_error: float

    @property
    def effective_bits(self) -> float:
        """Equivalent input precision of the spike-rate code."""
        return math.log2(self.timesteps)


class SnnTimingModel:
    """Rate-coded SNN operation of a mapped accelerator.

    Parameters
    ----------
    accelerator:
        Built from a network whose ``network_type`` is ``SNN``.
    """

    def __init__(self, accelerator: "Accelerator") -> None:
        if accelerator.config.network_type != "SNN":
            raise ConfigError(
                "SnnTimingModel requires an SNN-typed network "
                f"(got {accelerator.config.network_type})"
            )
        self.accelerator = accelerator

    # ------------------------------------------------------------------
    def timestep_performance(self) -> Performance:
        """Cost of one spike frame through every bank.

        Binary spike inputs need no DAC settling resolution, but the
        analog path (crossbar settle + reads) is unchanged, so the
        frame cost equals one compute pass of the banks.
        """
        return self.accelerator.compute_sample_performance()

    def sample_performance(self, timesteps: int) -> Performance:
        """Cost of one rate-coded sample (``timesteps`` frames)."""
        if timesteps < 1:
            raise ConfigError("timesteps must be >= 1")
        return self.timestep_performance().repeat(timesteps)

    @staticmethod
    def rate_coding_error(timesteps: int) -> float:
        """Quantization error of representing a rate in ``timesteps``
        frames: half a count out of the window."""
        if timesteps < 1:
            raise ConfigError("timesteps must be >= 1")
        return 0.5 / timesteps

    # ------------------------------------------------------------------
    def operating_point(self, timesteps: int) -> SnnOperatingPoint:
        """Cost/precision summary for one observation window."""
        sample = self.sample_performance(timesteps)
        return SnnOperatingPoint(
            timesteps=timesteps,
            energy_per_sample=sample.dynamic_energy,
            latency_per_sample=sample.latency,
            rate_coding_error=self.rate_coding_error(timesteps),
        )

    def window_for_error(self, max_error: float) -> int:
        """Smallest observation window meeting a rate-coding error."""
        if not 0 < max_error < 1:
            raise ConfigError("max_error must lie in (0, 1)")
        return max(1, math.ceil(0.5 / max_error))

    def sweep(self, windows=(8, 16, 32, 64, 128, 256)):
        """Operating points over a list of observation windows.

        Returns the classic SNN trade-off: energy and latency rise
        linearly with the window while the coding error falls as 1/T.
        """
        return [self.operating_point(t) for t in windows]
