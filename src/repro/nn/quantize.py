"""Fixed-point quantization and the weight-to-conductance mapping.

The paper's accuracy definition (Sec. VI) takes the *fixed-point*
algorithm as the ideal: quantization error is excluded; only the analog
computation error counts.  These helpers implement that fixed-point
substrate and the mapping of signed, multi-bit weights onto memristor
conductance levels (polarity split + bit slicing, Sec. III.B.2/III.C.1).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.tech.memristor import MemristorModel


def quantize(values: np.ndarray, bits: int, signed: bool = True,
             full_scale: float = 1.0) -> np.ndarray:
    """Quantize ``values`` to ``bits``-bit fixed point integers.

    Signed quantization maps ``[-full_scale, +full_scale)`` onto
    ``[-2**(bits-1), 2**(bits-1) - 1]``; unsigned maps
    ``[0, full_scale)`` onto ``[0, 2**bits - 1]``.  Values outside the
    range saturate.
    """
    if bits < 1:
        raise ConfigError("bits must be >= 1")
    if full_scale <= 0:
        raise ConfigError("full_scale must be positive")
    values = np.asarray(values, dtype=float)
    if signed:
        lo, hi = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
        scale = 2 ** (bits - 1) / full_scale
    else:
        lo, hi = 0, 2**bits - 1
        scale = (2**bits - 1) / full_scale
    levels = np.round(values * scale)
    return np.clip(levels, lo, hi).astype(np.int64)


def dequantize(levels: np.ndarray, bits: int, signed: bool = True,
               full_scale: float = 1.0) -> np.ndarray:
    """Invert :func:`quantize` back to floats."""
    if bits < 1:
        raise ConfigError("bits must be >= 1")
    levels = np.asarray(levels, dtype=float)
    if signed:
        scale = 2 ** (bits - 1) / full_scale
    else:
        scale = (2**bits - 1) / full_scale
    return levels / scale


def split_polarity(levels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split signed integer weights into (positive, negative) magnitudes.

    The differential crossbar pair stores ``w+ = max(w, 0)`` and
    ``w- = max(-w, 0)``; the unit's subtractor restores the signed
    result (Sec. III.C.1, method 1).
    """
    levels = np.asarray(levels)
    return np.maximum(levels, 0), np.maximum(-levels, 0)


def bit_slice(levels: np.ndarray, slice_bits: int, slices: int) -> List[np.ndarray]:
    """Split non-negative integer weights into ``slices`` groups of
    ``slice_bits`` bits, least-significant slice first (Sec. III.B.2).

    The shift-add merger reassembles ``sum_i slice_i << (i*slice_bits)``.
    """
    if slice_bits < 1 or slices < 1:
        raise ConfigError("slice_bits and slices must be >= 1")
    levels = np.asarray(levels, dtype=np.int64)
    if np.any(levels < 0):
        raise ConfigError("bit slicing expects non-negative magnitudes")
    mask = (1 << slice_bits) - 1
    out = []
    for i in range(slices):
        out.append((levels >> (i * slice_bits)) & mask)
    remaining = levels >> (slices * slice_bits)
    if np.any(remaining):
        raise ConfigError(
            f"weights need more than {slices} slices of {slice_bits} bits"
        )
    return out


def weight_to_cell_levels(
    weights: np.ndarray,
    weight_bits: int,
    device: MemristorModel,
    signed: bool = True,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Full mapping: float weights -> per-slice (positive, negative) levels.

    Returns one ``(pos_levels, neg_levels)`` pair per bit slice (LSB
    first), each entry a conductance level in ``0 .. device.levels - 1``
    ready for :meth:`MemristorModel.resistance_of_level`.  For unsigned
    mappings the negative plane is all zeros.
    """
    quantized = quantize(weights, weight_bits, signed=signed)
    if signed:
        magnitude_bits = weight_bits - 1
        pos, neg = split_polarity(quantized)
    else:
        magnitude_bits = weight_bits
        pos, neg = quantized, np.zeros_like(quantized)
    slice_bits = min(device.precision_bits, magnitude_bits)
    slices = -(-magnitude_bits // slice_bits)  # ceil division
    # The sign split can produce magnitude 2**(bits-1) for the most
    # negative value; clamp into the representable magnitude range.
    top = (1 << magnitude_bits) - 1
    pos = np.minimum(pos, top)
    neg = np.minimum(neg, top)
    pos_slices = bit_slice(pos, slice_bits, slices)
    neg_slices = bit_slice(neg, slice_bits, slices)
    return list(zip(pos_slices, neg_slices))
