"""Reference MLP inference with crossbar-error injection.

Used to validate the behavior-level accuracy model end to end (the
paper's JPEG-autoencoder experiment, Sec. VII.A): run the fixed-point
network — the paper's *ideal* — then rerun with each layer's
matrix-vector result perturbed by the analog deviation the crossbar
model predicts, and compare the observed relative error against the
model's closed-form estimate.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn.layers import FullyConnectedLayer
from repro.nn.networks import Network
from repro.nn.quantize import dequantize, quantize


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _identity(x: np.ndarray) -> np.ndarray:
    return x


_ACTIVATIONS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sigmoid": _sigmoid,
    "relu": _relu,
    "none": _identity,
    "if": _identity,  # rate-coded SNN behaves linearly at this level
}


class MlpInference:
    """Fixed-point forward passes for a fully-connected network.

    Parameters
    ----------
    network:
        A :class:`~repro.nn.networks.Network` of fully-connected layers.
    weights:
        One ``(out, in)`` float weight matrix per layer.
    signal_bits:
        Fixed-point precision of inter-layer signals.
    """

    def __init__(
        self,
        network: Network,
        weights: Sequence[np.ndarray],
        signal_bits: int = 8,
    ) -> None:
        if len(weights) != len(network.layers):
            raise ConfigError("one weight matrix per layer is required")
        for layer, matrix in zip(network.layers, weights):
            if not isinstance(layer, FullyConnectedLayer):
                raise ConfigError("MlpInference supports FC layers only")
            if np.shape(matrix) != layer.weight_shape:
                raise ConfigError(
                    f"weight shape {np.shape(matrix)} does not match "
                    f"layer {layer.weight_shape}"
                )
        self.network = network
        self.weights = [np.asarray(w, dtype=float) for w in weights]
        self.signal_bits = signal_bits

    @classmethod
    def with_random_weights(
        cls,
        network: Network,
        rng: np.random.Generator,
        signal_bits: int = 8,
        scale: Optional[float] = None,
    ) -> "MlpInference":
        """Build with seeded random weights (scaled ~1/sqrt(fan_in))."""
        weights = []
        for layer in network.layers:
            out_features, in_features = layer.weight_shape
            amplitude = scale if scale is not None else 1.0 / np.sqrt(in_features)
            weights.append(
                rng.uniform(-amplitude, amplitude, size=(out_features, in_features))
            )
        return cls(network, weights, signal_bits=signal_bits)

    def with_fault_masks(
        self, layer_fault_masks: Sequence
    ) -> "MlpInference":
        """A copy whose weights are corrupted *once* by the given masks.

        Applies :func:`~repro.faults.models.apply_mask_to_weights` to
        each layer's matrix up front — the same arithmetic
        :meth:`forward` performs per call with ``layer_fault_masks=``,
        so outputs are bit-identical — and returns a model whose
        repeated forward passes reuse the corrupted matrices instead of
        re-corrupting them every time.  ``None`` entries leave their
        layer intact.
        """
        if len(layer_fault_masks) != len(self.weights):
            raise ConfigError(
                "one fault mask (or None) per layer is required"
            )
        # Local import: repro.faults pulls this module in through its
        # campaign runner, so a top-level import would be circular.
        from repro.faults.models import apply_mask_to_weights

        weights = [
            matrix if mask is None
            else apply_mask_to_weights(matrix, mask)
            for matrix, mask in zip(self.weights, layer_fault_masks)
        ]
        return MlpInference(
            self.network, weights, signal_bits=self.signal_bits
        )

    # ------------------------------------------------------------------
    def _quantize_signal(self, values: np.ndarray) -> np.ndarray:
        levels = quantize(values, self.signal_bits, signed=True)
        return dequantize(levels, self.signal_bits, signed=True)

    def forward(
        self,
        inputs: np.ndarray,
        layer_error_rates: Optional[Sequence[float]] = None,
        rng: Optional[np.random.Generator] = None,
        worst_case: bool = False,
        layer_fault_masks: Optional[Sequence] = None,
    ) -> List[np.ndarray]:
        """Run one forward pass, returning every layer's output.

        Parameters
        ----------
        inputs:
            Input vector (or batch, last axis = features).
        layer_error_rates:
            Optional per-layer analog deviation rate ``eps``; each
            layer's matrix-vector result is multiplied by
            ``1 + delta`` with ``delta`` drawn uniformly from
            ``[-eps, +eps]`` (or pinned to ``-eps`` when
            ``worst_case``), modelling the crossbar error band of
            Eq. 15.
        rng:
            Required when injecting random (non-worst-case) errors.
        layer_fault_masks:
            Optional per-layer :class:`~repro.faults.models.FaultMask`
            (or ``None`` entries to leave a layer intact); each mask
            corrupts its layer's weights via
            :func:`~repro.faults.models.apply_mask_to_weights` before
            the matrix-vector product, modelling hard cell faults on
            the mapped crossbars.  Composes with ``layer_error_rates``
            (faults first, then the analog band).
        """
        if layer_error_rates is not None:
            if len(layer_error_rates) != len(self.weights):
                raise ConfigError("one error rate per layer is required")
            if not worst_case and rng is None:
                raise ConfigError("random error injection needs an rng")
        if layer_fault_masks is not None:
            if len(layer_fault_masks) != len(self.weights):
                raise ConfigError(
                    "one fault mask (or None) per layer is required"
                )
            # Local import: repro.faults pulls this module in through its
            # campaign runner, so a top-level import would be circular.
            from repro.faults.models import apply_mask_to_weights

        signal = self._quantize_signal(np.asarray(inputs, dtype=float))
        outputs: List[np.ndarray] = []
        for index, (layer, matrix) in enumerate(
            zip(self.network.layers, self.weights)
        ):
            if (
                layer_fault_masks is not None
                and layer_fault_masks[index] is not None
            ):
                matrix = apply_mask_to_weights(
                    matrix, layer_fault_masks[index]
                )
            product = signal @ matrix.T
            if layer_error_rates is not None:
                eps = abs(layer_error_rates[index])
                if worst_case:
                    product = product * (1.0 - eps)
                else:
                    noise = rng.uniform(-eps, eps, size=product.shape)
                    product = product * (1.0 + noise)
            activation = _ACTIVATIONS.get(layer.activation)
            if activation is None:
                raise ConfigError(
                    f"unknown activation {layer.activation!r}"
                )
            signal = self._quantize_signal(activation(product))
            outputs.append(signal)
        return outputs

    # ------------------------------------------------------------------
    def relative_output_error(
        self,
        inputs: np.ndarray,
        layer_error_rates: Sequence[float],
        rng: Optional[np.random.Generator] = None,
        worst_case: bool = False,
    ) -> float:
        """Mean relative deviation of the final output vs the ideal pass.

        The paper's "relative accuracy" is ``1 -`` this value.
        """
        ideal = self.forward(inputs)[-1]
        noisy = self.forward(
            inputs, layer_error_rates, rng=rng, worst_case=worst_case
        )[-1]
        scale = np.max(np.abs(ideal))
        if scale == 0:
            return 0.0
        return float(np.mean(np.abs(ideal - noisy)) / scale)
