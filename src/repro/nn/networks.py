"""Network container and the built-in topologies of the evaluation.

A :class:`Network` is an ordered chain of weight-bearing layers
(:class:`~repro.nn.layers.FullyConnectedLayer` /
:class:`~repro.nn.layers.ConvLayer`), validated for shape consistency at
construction.  Builders cover every workload the paper evaluates:

* :func:`validation_mlp` — the 3-layer NN with two 128x128 weight layers
  used for the Table II SPICE validation;
* :func:`jpeg_autoencoder` — the 64-16-64 approximate-computing network
  used to validate the accuracy model (Sec. VII.A);
* :func:`large_bank_layer` — the 2048x1024 fully-connected layer of the
  large-computation-bank case study (Tables IV/V, Figs. 7-9a);
* :func:`caffenet` — the AlexNet/CaffeNet CNN the hierarchy discussion
  references (Sec. III.A);
* :func:`vgg16` — the deep-CNN case study (Table VI, Fig. 9b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigError
from repro.nn.layers import ConvLayer, FullyConnectedLayer, LayerSpec


@dataclass(frozen=True)
class Network:
    """An ordered, shape-checked chain of weight-bearing layers.

    Attributes
    ----------
    name:
        Display name.
    layers:
        The layer specs, first to last.
    network_type:
        ``DNN`` / ``SNN`` / ``CNN`` — selects the reference neuron.
    """

    name: str
    layers: Tuple[LayerSpec, ...]
    network_type: str = "DNN"

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigError("a network needs at least one layer")
        object.__setattr__(self, "layers", tuple(self.layers))
        self._validate_chain()

    def _validate_chain(self) -> None:
        for index in range(1, len(self.layers)):
            prev, cur = self.layers[index - 1], self.layers[index]
            if isinstance(cur, ConvLayer):
                if not isinstance(prev, ConvLayer):
                    raise ConfigError(
                        f"layer {index}: conv after non-conv is unsupported"
                    )
                if cur.in_channels != prev.out_channels:
                    raise ConfigError(
                        f"layer {index}: channel mismatch "
                        f"({cur.in_channels} != {prev.out_channels})"
                    )
                if cur.input_size != prev.output_size:
                    raise ConfigError(
                        f"layer {index}: feature-map mismatch "
                        f"({cur.input_size} != {prev.output_size})"
                    )
            else:
                if cur.weight_shape[1] != prev.output_values:
                    raise ConfigError(
                        f"layer {index}: input mismatch "
                        f"({cur.weight_shape[1]} != {prev.output_values})"
                    )

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of computation banks (``Network_Depth`` in Table I)."""
        return len(self.layers)

    @property
    def input_values(self) -> int:
        """Values per sample entering the accelerator."""
        return self.layers[0].input_values

    @property
    def output_values(self) -> int:
        """Values per sample leaving the accelerator."""
        return self.layers[-1].output_values

    @property
    def total_weights(self) -> int:
        """Total weights across all layers."""
        return sum(layer.weight_count for layer in self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def describe(self) -> str:
        """Human-readable per-layer summary table."""
        from repro.report import format_table

        rows = []
        for index, layer in enumerate(self.layers):
            out_features, in_features = layer.weight_shape
            rows.append([
                index,
                layer.kind,
                f"{out_features}x{in_features}",
                f"{layer.weight_count:,}",
                f"{layer.compute_passes:,}",
                f"{layer.output_values:,}",
            ])
        table = format_table(
            ["layer", "kind", "weights", "params", "passes/sample",
             "outputs"],
            rows,
        )
        return (
            f"{self.name} ({self.network_type}, {self.depth} layers, "
            f"{self.total_weights:,} weights)\n{table}"
        )


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def mlp(
    sizes: Sequence[int],
    name: str = "mlp",
    activation: str = "sigmoid",
    network_type: str = "DNN",
) -> Network:
    """A fully-connected network with the given neuron counts per level.

    ``sizes = [a, b, c]`` builds two weight layers ``a -> b -> c`` (the
    paper counts neuron levels, so it would call this a "3-layer NN").
    """
    if len(sizes) < 2:
        raise ConfigError("an MLP needs at least two neuron levels")
    layers: List[LayerSpec] = [
        FullyConnectedLayer(sizes[i], sizes[i + 1], activation=activation)
        for i in range(len(sizes) - 1)
    ]
    return Network(name=name, layers=tuple(layers), network_type=network_type)


def validation_mlp() -> Network:
    """The Table II validation workload: two 128x128 weight layers."""
    return mlp([128, 128, 128], name="validation-mlp-128")


def jpeg_autoencoder() -> Network:
    """The 64-16-64 JPEG-encoding network of the accuracy validation."""
    return mlp([64, 16, 64], name="jpeg-autoencoder-64-16-64")


def large_bank_layer() -> Network:
    """The 2048x1024 fully-connected layer of the Table IV/V case study."""
    return mlp([2048, 1024], name="large-bank-2048x1024")


def caffenet() -> Network:
    """CaffeNet/AlexNet with non-overlapping pooling approximations.

    The paper's Sec. III.A counts CaffeNet as seven computation banks by
    its layer-merging convention; this builder keeps all eight weight
    layers of the canonical topology (5 conv + 3 FC) — the extra bank
    only adds to the totals and does not change any trend.
    """
    layers: Tuple[LayerSpec, ...] = (
        ConvLayer(3, 96, kernel=11, input_size=227, stride=4, pooling=2),
        ConvLayer(96, 256, kernel=5, input_size=27, padding=2, pooling=2),
        ConvLayer(256, 384, kernel=3, input_size=13, padding=1),
        ConvLayer(384, 384, kernel=3, input_size=13, padding=1),
        ConvLayer(384, 256, kernel=3, input_size=13, padding=1, pooling=2),
        FullyConnectedLayer(256 * 6 * 6, 4096, activation="relu"),
        FullyConnectedLayer(4096, 4096, activation="relu"),
        FullyConnectedLayer(4096, 1000, activation="none"),
    )
    return Network(name="caffenet", layers=layers, network_type="CNN")


def vgg16() -> Network:
    """VGG-16 on 224x224 inputs (Table VI / Fig. 9b case study)."""
    conv_plan = [
        # (in_ch, out_ch, input_size, pool_after)
        (3, 64, 224, False),
        (64, 64, 224, True),
        (64, 128, 112, False),
        (128, 128, 112, True),
        (128, 256, 56, False),
        (256, 256, 56, False),
        (256, 256, 56, True),
        (256, 512, 28, False),
        (512, 512, 28, False),
        (512, 512, 28, True),
        (512, 512, 14, False),
        (512, 512, 14, False),
        (512, 512, 14, True),
    ]
    layers: List[LayerSpec] = [
        ConvLayer(
            in_ch, out_ch, kernel=3, input_size=size, padding=1,
            pooling=2 if pool else 1,
        )
        for in_ch, out_ch, size, pool in conv_plan
    ]
    layers.extend(
        [
            FullyConnectedLayer(512 * 7 * 7, 4096, activation="relu"),
            FullyConnectedLayer(4096, 4096, activation="relu"),
            FullyConnectedLayer(4096, 1000, activation="none"),
        ]
    )
    return Network(name="vgg16", layers=tuple(layers), network_type="CNN")
