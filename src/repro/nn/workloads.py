"""Synthetic workload generators for experiments and benchmarks.

The paper's validation protocols use "random samples of weight matrices"
and "random input samples" (Sec. VII.A) plus an image-block application
(JPEG encoding of 8x8 blocks).  These seeded generators provide those
workloads without external data:

* :func:`random_weights` — layer-shaped weight matrices with a chosen
  distribution and fan-in scaling;
* :func:`random_inputs` — input-sample batches in the signal range;
* :func:`image_blocks` — smooth synthetic 8x8 image blocks (a stand-in
  for JPEG's DCT inputs: low-frequency dominated, bounded);
* :func:`crossbar_workload` — a fully-specified (resistances, inputs)
  pair for circuit-level runs, built through the real device mapping.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.nn.networks import Network
from repro.nn.quantize import weight_to_cell_levels
from repro.tech.memristor import MemristorModel


def random_weights(
    network: Network,
    rng: np.random.Generator,
    distribution: str = "uniform",
) -> List[np.ndarray]:
    """One weight matrix per layer, scaled by 1/sqrt(fan_in).

    ``distribution`` is ``"uniform"`` (paper-style random matrices) or
    ``"normal"`` (Xavier-style init).
    """
    if distribution not in ("uniform", "normal"):
        raise ConfigError("distribution must be 'uniform' or 'normal'")
    weights = []
    for layer in network.layers:
        out_features, in_features = layer.weight_shape
        scale = 1.0 / np.sqrt(in_features)
        if distribution == "uniform":
            matrix = rng.uniform(
                -scale, scale, size=(out_features, in_features)
            )
        else:
            matrix = rng.normal(
                0.0, scale, size=(out_features, in_features)
            )
        weights.append(matrix)
    return weights


def random_inputs(
    network: Network,
    rng: np.random.Generator,
    batch: int = 1,
    signed: bool = True,
) -> np.ndarray:
    """A batch of input samples in the signal range.

    Shape ``(batch, input_values)``; signed inputs span (-1, 1),
    unsigned (0, 1).
    """
    if batch < 1:
        raise ConfigError("batch must be >= 1")
    low = -1.0 if signed else 0.0
    return rng.uniform(low, 1.0, size=(batch, network.input_values))


def image_blocks(
    rng: np.random.Generator, count: int = 1, size: int = 8
) -> np.ndarray:
    """Smooth synthetic image blocks (JPEG-autoencoder inputs).

    Each block is a sum of a random gradient and a low-frequency
    cosine, normalised into [-1, 1] — matching the statistics the
    64-16-64 autoencoder sees (smooth, low-frequency-dominated).
    Returns shape ``(count, size * size)``.
    """
    if count < 1 or size < 2:
        raise ConfigError("count must be >= 1 and size >= 2")
    axis = np.linspace(0.0, 1.0, size)
    yy, xx = np.meshgrid(axis, axis, indexing="ij")
    blocks = []
    for _ in range(count):
        gx, gy = rng.uniform(-1, 1, size=2)
        fx, fy = rng.uniform(0.5, 2.0, size=2)
        phase = rng.uniform(0, 2 * np.pi)
        block = (
            gx * xx + gy * yy
            + 0.5 * np.cos(2 * np.pi * (fx * xx + fy * yy) + phase)
        )
        peak = np.max(np.abs(block))
        if peak > 0:
            block = block / peak
        blocks.append(block.reshape(-1))
    return np.stack(blocks)


def crossbar_workload(
    device: MemristorModel,
    rows: int,
    cols: int,
    rng: np.random.Generator,
    weight_bits: int = 8,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A circuit-level crossbar problem from real weight mapping.

    Draws a random signed weight matrix, maps it through
    :func:`~repro.nn.quantize.weight_to_cell_levels`, and returns the
    positive plane's resistances plus an input-voltage vector:
    ``(weights, resistances, inputs)``.
    """
    if rows < 1 or cols < 1:
        raise ConfigError("rows and cols must be >= 1")
    weights = rng.uniform(-1, 1, size=(cols, rows)) / np.sqrt(rows)
    slices = weight_to_cell_levels(weights, weight_bits, device)
    pos_levels, _neg = slices[-1]  # most-significant slice
    resistances = np.vectorize(device.resistance_of_level)(pos_levels).T
    inputs = rng.uniform(0, device.read_voltage, size=rows)
    return weights, resistances, inputs
