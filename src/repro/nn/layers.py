"""Layer descriptions: the shapes the mapper and models consume.

Only layers that *contain weights* (fully-connected matrices or conv
kernels) become computation banks (Sec. III.A); activation and pooling are
peripheral functions folded into the owning bank, so they are attributes
of the layer spec rather than standalone layers.

Every spec answers the questions the hierarchy needs:

* ``weight_shape`` — the ``(out, in)`` matrix mapped onto crossbars
  (a conv layer's kernels flatten to ``(C_out, C_in * kh * kw)``);
* ``compute_passes`` — crossbar operations per input sample (1 for a
  fully-connected layer, one per output spatial position for a conv);
* ``input_values`` / ``output_values`` — sample sizes at the layer
  boundary (interface and buffer sizing).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigError


class LayerSpec(abc.ABC):
    """Base class for weight-bearing neuromorphic layers."""

    #: Layer-kind tag ("fc" / "conv"), set by subclasses.
    kind: str = "layer"

    @property
    @abc.abstractmethod
    def weight_shape(self) -> Tuple[int, int]:
        """The ``(out_features, in_features)`` weight matrix shape."""

    @property
    @abc.abstractmethod
    def compute_passes(self) -> int:
        """Crossbar matrix-vector operations per input sample."""

    @property
    @abc.abstractmethod
    def input_values(self) -> int:
        """Values per sample entering this layer."""

    @property
    @abc.abstractmethod
    def output_values(self) -> int:
        """Values per sample leaving this layer (after pooling)."""

    @property
    def weight_count(self) -> int:
        """Total weights in the layer."""
        out_features, in_features = self.weight_shape
        return out_features * in_features


@dataclass(frozen=True)
class FullyConnectedLayer(LayerSpec):
    """A fully-connected (dense) layer: Eq. 3/4 of the paper.

    Attributes
    ----------
    in_features, out_features:
        Input/output neuron counts.
    activation:
        Neuron-function tag (``"sigmoid"``, ``"relu"``, ``"if"``,
        ``"none"``); informational — the bank's reference neuron is
        chosen by the configured network type unless overridden.
    """

    in_features: int
    out_features: int
    activation: str = "sigmoid"

    kind = "fc"

    def __post_init__(self) -> None:
        if self.in_features < 1 or self.out_features < 1:
            raise ConfigError("fully-connected layer needs positive sizes")

    @property
    def weight_shape(self) -> Tuple[int, int]:
        return (self.out_features, self.in_features)

    @property
    def compute_passes(self) -> int:
        return 1

    @property
    def input_values(self) -> int:
        return self.in_features

    @property
    def output_values(self) -> int:
        return self.out_features


@dataclass(frozen=True)
class ConvLayer(LayerSpec):
    """A convolutional layer (plus its in-bank pooling, Sec. III.B.3).

    Attributes
    ----------
    in_channels, out_channels:
        Feature-map channel counts.
    kernel:
        Square kernel spatial size ``k`` (the configuration's
        ``Spacial_Size``).
    input_size:
        Input feature-map height/width (square maps).
    stride, padding:
        Standard convolution geometry.
    pooling:
        Max-pooling window applied inside the bank (1 = none).
    activation:
        Neuron-function tag, reference is ReLU for CNNs.
    """

    in_channels: int
    out_channels: int
    kernel: int
    input_size: int
    stride: int = 1
    padding: int = 0
    pooling: int = 1
    activation: str = "relu"

    kind = "conv"

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.kernel,
               self.input_size) < 1:
            raise ConfigError("conv layer needs positive dimensions")
        if self.stride < 1 or self.padding < 0 or self.pooling < 1:
            raise ConfigError("invalid stride/padding/pooling")
        if self.conv_output_size < 1:
            raise ConfigError(
                f"kernel {self.kernel} does not fit input {self.input_size}"
            )
        if self.output_size < 1:
            raise ConfigError(
                f"pooling {self.pooling} larger than conv output "
                f"{self.conv_output_size}"
            )

    # ------------------------------------------------------------------
    @property
    def conv_output_size(self) -> int:
        """Feature-map side length after convolution, before pooling."""
        return (
            self.input_size + 2 * self.padding - self.kernel
        ) // self.stride + 1

    @property
    def output_size(self) -> int:
        """Feature-map side length after in-bank pooling.

        Non-dividing windows truncate (floor), approximating the
        overlapping-pool geometries of CaffeNet with non-overlapping
        windows.
        """
        return self.conv_output_size // self.pooling

    @property
    def weight_shape(self) -> Tuple[int, int]:
        """Kernels flattened to a matrix (Sec. II.B.3): one row per
        output channel, one column per (channel, ky, kx) input tap."""
        return (self.out_channels, self.in_channels * self.kernel**2)

    @property
    def compute_passes(self) -> int:
        """One matrix-vector operation per output spatial position."""
        return self.conv_output_size**2

    @property
    def input_values(self) -> int:
        return self.in_channels * self.input_size**2

    @property
    def output_values(self) -> int:
        return self.out_channels * self.output_size**2
