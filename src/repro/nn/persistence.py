"""Save and load trained networks (spec + weights).

A deployed design outlives one Python session: the trainer's weights,
the network description, and the precision settings need to round-trip
through files.  The format is a single ``.npz`` archive:

* ``__spec__`` — a JSON string with the network name, type, layer
  descriptions, and the signal/weight precisions it was saved with;
* ``weight_<i>`` — one float array per layer.

Only the library's own layer kinds are (de)serialised; the archive is
self-describing enough for the functional simulator and the trainer to
reconstruct their inputs exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigError
from repro.nn.layers import ConvLayer, FullyConnectedLayer, LayerSpec
from repro.nn.networks import Network

_FORMAT_VERSION = 1


def _layer_to_dict(layer: LayerSpec) -> dict:
    if isinstance(layer, FullyConnectedLayer):
        return {
            "kind": "fc",
            "in_features": layer.in_features,
            "out_features": layer.out_features,
            "activation": layer.activation,
        }
    if isinstance(layer, ConvLayer):
        return {
            "kind": "conv",
            "in_channels": layer.in_channels,
            "out_channels": layer.out_channels,
            "kernel": layer.kernel,
            "input_size": layer.input_size,
            "stride": layer.stride,
            "padding": layer.padding,
            "pooling": layer.pooling,
            "activation": layer.activation,
        }
    raise ConfigError(f"cannot serialise layer kind {layer.kind!r}")


def _layer_from_dict(data: dict) -> LayerSpec:
    kind = data.get("kind")
    if kind == "fc":
        return FullyConnectedLayer(
            in_features=int(data["in_features"]),
            out_features=int(data["out_features"]),
            activation=str(data["activation"]),
        )
    if kind == "conv":
        return ConvLayer(
            in_channels=int(data["in_channels"]),
            out_channels=int(data["out_channels"]),
            kernel=int(data["kernel"]),
            input_size=int(data["input_size"]),
            stride=int(data["stride"]),
            padding=int(data["padding"]),
            pooling=int(data["pooling"]),
            activation=str(data["activation"]),
        )
    raise ConfigError(f"unknown serialised layer kind {kind!r}")


def save_network(
    path: Union[str, Path],
    network: Network,
    weights: Sequence[np.ndarray],
    signal_bits: Optional[int] = None,
    weight_bits: Optional[int] = None,
) -> Path:
    """Write the network spec and weights to a ``.npz`` archive."""
    if len(weights) != network.depth:
        raise ConfigError("one weight array per layer is required")
    spec = {
        "format": _FORMAT_VERSION,
        "name": network.name,
        "network_type": network.network_type,
        "layers": [_layer_to_dict(layer) for layer in network.layers],
        "signal_bits": signal_bits,
        "weight_bits": weight_bits,
    }
    arrays = {
        f"weight_{index}": np.asarray(matrix, dtype=float)
        for index, matrix in enumerate(weights)
    }
    path = Path(path)
    np.savez(path, __spec__=json.dumps(spec), **arrays)
    # np.savez appends .npz when missing; normalise the returned path.
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def load_network(
    path: Union[str, Path],
) -> Tuple[Network, List[np.ndarray], dict]:
    """Load ``(network, weights, metadata)`` from a saved archive.

    ``metadata`` carries the stored precisions (possibly ``None``).
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        if "__spec__" not in archive:
            raise ConfigError(f"{path} is not a saved network archive")
        spec = json.loads(str(archive["__spec__"]))
        if spec.get("format") != _FORMAT_VERSION:
            raise ConfigError(
                f"unsupported archive format {spec.get('format')!r}"
            )
        layers = tuple(
            _layer_from_dict(entry) for entry in spec["layers"]
        )
        network = Network(
            name=str(spec["name"]),
            layers=layers,
            network_type=str(spec["network_type"]),
        )
        weights = []
        for index, layer in enumerate(layers):
            key = f"weight_{index}"
            if key not in archive:
                raise ConfigError(f"archive is missing {key}")
            matrix = np.asarray(archive[key], dtype=float)
            expected = (
                layer.weight_shape
                if isinstance(layer, FullyConnectedLayer)
                else (
                    layer.out_channels, layer.in_channels,
                    layer.kernel, layer.kernel,
                )
            )
            if matrix.shape != expected:
                raise ConfigError(
                    f"{key} has shape {matrix.shape}, expected {expected}"
                )
            weights.append(matrix)
    metadata = {
        "signal_bits": spec.get("signal_bits"),
        "weight_bits": spec.get("weight_bits"),
    }
    return network, weights, metadata
