"""Fault models: deterministic hard-fault masks for one crossbar.

A :class:`FaultMask` describes every *hard* (discrete) fault on one
``M x N`` crossbar:

* **stuck-at-ON cells** (``stuck_low``) — the filament fused; the cell
  reads the lowest programmable resistance ``R_min`` regardless of the
  programmed level;
* **stuck-at-OFF cells** (``stuck_high``) — the cell froze at the
  highest resistance ``R_max``;
* **open cells** (``open_cells``) — the cell lost contact entirely;
  its branch disappears from the resistor network;
* **open / short word- and bit-lines** — a whole line's interconnect
  segments drop out (open) or collapse to the minimum wire resistance
  (short), the bonding/electromigration failure modes;
* **parametric drift overlays** (``drift``) — a per-cell multiplicative
  resistance factor layered on top, for modelling relaxed or
  half-formed cells that are wrong but not pinned.

Masks are value objects: validated on construction, immutable (the
arrays are frozen read-only), JSON round-trippable via
:meth:`FaultMask.to_dict` / :meth:`FaultMask.from_dict` (a sparse
index-list encoding, safe for :func:`repro.runtime.jobs.canonical`
cache keys), and composable onto any programmed resistance grid with
:meth:`FaultMask.apply_to_resistances`.

:func:`sample_fault_mask` draws a mask from a seeded
:class:`numpy.random.Generator` with a *fixed draw order per mode*, so
the same seed always produces the same mask — the reproducibility
contract the campaign runner (:mod:`repro.faults.campaign`) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

#: Fault-type vocabulary of :func:`sample_fault_mask` and the campaign
#: runner.  ``stuck_*``/``open_cell`` rates are per-cell probabilities,
#: ``line_*`` rates are per-line probabilities, and ``drift`` reads the
#: rate as the sigma of a lognormal resistance overlay.
FAULT_MODES = (
    "stuck_low",
    "stuck_high",
    "stuck_mixed",
    "open_cell",
    "line_open",
    "line_short",
    "drift",
)


def _frozen_bool(mask: Optional[np.ndarray], rows: int,
                 cols: int, name: str) -> np.ndarray:
    if mask is None:
        mask = np.zeros((rows, cols), dtype=bool)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (rows, cols):
        raise ConfigError(
            f"{name} must have shape ({rows}, {cols}), got {mask.shape}"
        )
    mask = mask.copy()
    mask.flags.writeable = False
    return mask


def _line_tuple(indices: Sequence[int], limit: int,
                name: str) -> Tuple[int, ...]:
    out = tuple(sorted(int(i) for i in set(indices)))
    for i in out:
        if not 0 <= i < limit:
            raise ConfigError(f"{name} index {i} out of range 0..{limit - 1}")
    return out


@dataclass(frozen=True, eq=False)
class FaultMask:
    """Immutable description of the hard faults on one crossbar.

    Parameters
    ----------
    rows, cols:
        Crossbar shape the mask applies to.
    stuck_low / stuck_high / open_cells:
        Boolean ``(rows, cols)`` cell masks; ``None`` means no faults
        of that kind.  A cell may carry at most one cell fault.
    open_wordlines / open_bitlines:
        Row / column indices whose interconnect segments are dropped
        (an open wordline also loses its input-source branch).
    short_wordlines / short_bitlines:
        Row / column indices whose segments collapse to the minimum
        wire resistance.  A line cannot be both open and shorted.
    drift:
        Optional positive ``(rows, cols)`` multiplicative resistance
        overlay; stuck cells ignore it (they are pinned).
    """

    rows: int
    cols: int
    stuck_low: np.ndarray = None
    stuck_high: np.ndarray = None
    open_cells: np.ndarray = None
    open_wordlines: Tuple[int, ...] = ()
    open_bitlines: Tuple[int, ...] = ()
    short_wordlines: Tuple[int, ...] = ()
    short_bitlines: Tuple[int, ...] = ()
    drift: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigError("mask shape must be at least 1x1")
        set_attr = object.__setattr__
        for name in ("stuck_low", "stuck_high", "open_cells"):
            set_attr(self, name, _frozen_bool(
                getattr(self, name), self.rows, self.cols, name
            ))
        overlap = (
            (self.stuck_low & self.stuck_high)
            | (self.stuck_low & self.open_cells)
            | (self.stuck_high & self.open_cells)
        )
        if overlap.any():
            raise ConfigError(
                "a cell may carry at most one fault (stuck_low / "
                "stuck_high / open_cells overlap)"
            )
        set_attr(self, "open_wordlines", _line_tuple(
            self.open_wordlines, self.rows, "open_wordlines"))
        set_attr(self, "open_bitlines", _line_tuple(
            self.open_bitlines, self.cols, "open_bitlines"))
        set_attr(self, "short_wordlines", _line_tuple(
            self.short_wordlines, self.rows, "short_wordlines"))
        set_attr(self, "short_bitlines", _line_tuple(
            self.short_bitlines, self.cols, "short_bitlines"))
        if set(self.open_wordlines) & set(self.short_wordlines):
            raise ConfigError("a wordline cannot be both open and shorted")
        if set(self.open_bitlines) & set(self.short_bitlines):
            raise ConfigError("a bitline cannot be both open and shorted")
        if self.drift is not None:
            drift = np.asarray(self.drift, dtype=float)
            if drift.shape != (self.rows, self.cols):
                raise ConfigError(
                    f"drift must have shape ({self.rows}, {self.cols}), "
                    f"got {drift.shape}"
                )
            if not np.all(np.isfinite(drift)) or np.any(drift <= 0):
                raise ConfigError("drift factors must be finite and positive")
            drift = drift.copy()
            drift.flags.writeable = False
            set_attr(self, "drift", drift)

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, rows: int, cols: int) -> "FaultMask":
        """A mask with no faults at all (the fault-free overlay)."""
        return cls(rows=rows, cols=cols)

    @property
    def is_empty(self) -> bool:
        """True when applying this mask is a no-op."""
        return (
            self.cell_fault_count == 0
            and not self.has_line_faults
            and self.drift is None
        )

    @property
    def cell_fault_count(self) -> int:
        """Number of cells carrying a stuck or open fault."""
        return int(
            self.stuck_low.sum() + self.stuck_high.sum()
            + self.open_cells.sum()
        )

    @property
    def cell_fault_fraction(self) -> float:
        """Fraction of cells carrying a hard cell fault (0..1).

        This is the ``hard_fault_rate`` the refresh model in
        :func:`repro.arch.reliability.reliability_report` consumes.
        """
        return self.cell_fault_count / float(self.rows * self.cols)

    @property
    def has_line_faults(self) -> bool:
        """True when any word- or bit-line is open or shorted."""
        return bool(
            self.open_wordlines or self.open_bitlines
            or self.short_wordlines or self.short_bitlines
        )

    @property
    def fault_count(self) -> int:
        """Total discrete faults: faulty cells plus faulty lines."""
        return self.cell_fault_count + len(self.open_wordlines) + len(
            self.open_bitlines
        ) + len(self.short_wordlines) + len(self.short_bitlines)

    # ------------------------------------------------------------------
    def apply_to_resistances(
        self, resistances: np.ndarray, r_on: float, r_off: float
    ) -> np.ndarray:
        """The faulty resistance grid for a programmed grid.

        ``r_on`` / ``r_off`` are the stuck-at values (the device's
        ``r_min`` / ``r_max``).  Drift multiplies first, stuck pins
        override it; open cells keep their programmed value here —
        their *branch* is removed by the solver, not their resistance.
        """
        resistances = np.asarray(resistances, dtype=float)
        if resistances.shape != (self.rows, self.cols):
            raise ConfigError(
                f"resistances must have shape ({self.rows}, {self.cols}), "
                f"got {resistances.shape}"
            )
        out = resistances.copy()
        if self.drift is not None:
            out *= self.drift
        out[self.stuck_low] = r_on
        out[self.stuck_high] = r_off
        return out

    def cell_conductance_gain(self) -> Optional[np.ndarray]:
        """Per-cell conductance multiplier, or ``None`` when trivial.

        Open cells contribute zero conductance (their branch is gone);
        every other cell passes through unchanged.
        """
        if not self.open_cells.any():
            return None
        return np.where(self.open_cells, 0.0, 1.0)

    # ------------------------------------------------------------------
    # JSON round trip (sparse, canonicalizable for cache keys)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Sparse JSON-safe encoding with deterministic ordering."""
        def cells(mask: np.ndarray):
            return [[int(i), int(j)] for i, j in zip(*np.nonzero(mask))]

        return {
            "rows": self.rows,
            "cols": self.cols,
            "stuck_low": cells(self.stuck_low),
            "stuck_high": cells(self.stuck_high),
            "open_cells": cells(self.open_cells),
            "open_wordlines": list(self.open_wordlines),
            "open_bitlines": list(self.open_bitlines),
            "short_wordlines": list(self.short_wordlines),
            "short_bitlines": list(self.short_bitlines),
            "drift": None if self.drift is None else [
                [float(v) for v in row] for row in self.drift
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultMask":
        """Rebuild a mask from a :meth:`to_dict` payload."""
        rows, cols = int(data["rows"]), int(data["cols"])

        def cells(entries):
            mask = np.zeros((rows, cols), dtype=bool)
            for i, j in entries or ():
                mask[int(i), int(j)] = True
            return mask

        drift = data.get("drift")
        return cls(
            rows=rows,
            cols=cols,
            stuck_low=cells(data.get("stuck_low")),
            stuck_high=cells(data.get("stuck_high")),
            open_cells=cells(data.get("open_cells")),
            open_wordlines=tuple(data.get("open_wordlines") or ()),
            open_bitlines=tuple(data.get("open_bitlines") or ()),
            short_wordlines=tuple(data.get("short_wordlines") or ()),
            short_bitlines=tuple(data.get("short_bitlines") or ()),
            drift=None if drift is None else np.asarray(drift, dtype=float),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultMask({self.rows}x{self.cols}, "
            f"{self.cell_fault_count} cell fault(s), "
            f"{len(self.open_wordlines) + len(self.open_bitlines)} open "
            f"line(s), {len(self.short_wordlines) + len(self.short_bitlines)}"
            f" short line(s), drift={self.drift is not None})"
        )


def sample_fault_mask(
    rows: int,
    cols: int,
    fault_rate: float,
    rng: np.random.Generator,
    mode: str = "stuck_mixed",
) -> FaultMask:
    """Draw a seed-reproducible random mask of one fault type.

    Parameters
    ----------
    fault_rate:
        Per-cell fault probability for the cell modes, per-line
        probability for the line modes, lognormal sigma for ``drift``.
    rng:
        A seeded generator; the draw order per mode is fixed, so equal
        seeds always give equal masks (the campaign's reproducibility
        contract).
    mode:
        One of :data:`FAULT_MODES`.
    """
    if mode not in FAULT_MODES:
        raise ConfigError(f"mode must be one of {FAULT_MODES}, got {mode!r}")
    if mode == "drift":
        if fault_rate < 0:
            raise ConfigError("drift sigma must be >= 0")
        if fault_rate == 0:
            return FaultMask.empty(rows, cols)
        return FaultMask(
            rows=rows, cols=cols,
            drift=np.exp(rng.normal(0.0, fault_rate, size=(rows, cols))),
        )
    if not 0 <= fault_rate <= 1:
        raise ConfigError("fault_rate must lie in [0, 1]")
    if mode in ("line_open", "line_short"):
        wordlines = np.flatnonzero(rng.random(rows) < fault_rate)
        bitlines = np.flatnonzero(rng.random(cols) < fault_rate)
        if mode == "line_open":
            return FaultMask(
                rows=rows, cols=cols,
                open_wordlines=tuple(wordlines),
                open_bitlines=tuple(bitlines),
            )
        return FaultMask(
            rows=rows, cols=cols,
            short_wordlines=tuple(wordlines),
            short_bitlines=tuple(bitlines),
        )
    faulty = rng.random((rows, cols)) < fault_rate
    if mode == "open_cell":
        return FaultMask(rows=rows, cols=cols, open_cells=faulty)
    if mode == "stuck_low":
        return FaultMask(rows=rows, cols=cols, stuck_low=faulty)
    if mode == "stuck_high":
        return FaultMask(rows=rows, cols=cols, stuck_high=faulty)
    # stuck_mixed: split the faulty cells 50/50 between ON and OFF.
    coin = rng.random((rows, cols)) < 0.5
    return FaultMask(
        rows=rows, cols=cols,
        stuck_low=faulty & coin,
        stuck_high=faulty & ~coin,
    )


def apply_mask_to_weights(
    weights: np.ndarray, mask: FaultMask
) -> np.ndarray:
    """Corrupt a mapped weight matrix the way its crossbar faults would.

    The linear weight-to-conductance mapping sends the matrix's largest
    weight to the strongest conductance (``R_min``) and its smallest to
    the weakest (``R_max``), so:

    * ``stuck_low`` (stuck-at-ON)  -> the matrix's maximum weight;
    * ``stuck_high`` (stuck-at-OFF) -> the matrix's minimum weight;
    * ``open_cells`` -> 0 (the cell contributes nothing);
    * ``drift`` divides the weight (resistance up => conductance down).

    Line faults have no single-matrix meaning and are rejected; use the
    circuit-level path (``CrossbarNetwork(fault_mask=...)``) for those.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (mask.rows, mask.cols):
        raise ConfigError(
            f"weights must have shape ({mask.rows}, {mask.cols}), "
            f"got {weights.shape}"
        )
    if mask.has_line_faults:
        raise ConfigError(
            "line faults cannot be applied to a bare weight matrix; "
            "solve the crossbar with CrossbarNetwork(fault_mask=...)"
        )
    out = weights.copy()
    if mask.drift is not None:
        out /= mask.drift
    out[mask.stuck_low] = weights.max()
    out[mask.stuck_high] = weights.min()
    out[mask.open_cells] = 0.0
    return out
