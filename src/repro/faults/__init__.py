"""Hard-fault injection: masks, solver integration, sweep campaigns.

The accuracy stack (Sec. V/VI of the paper) models device imperfection
as *parametric* spread — Gaussian resistance variation, nonlinearity —
but fabricated crossbars also fail *discretely*: cells fuse at the
lowest resistance (stuck-at-ON), burn open at the highest
(stuck-at-OFF), lose contact entirely, and whole word- or bit-lines
open or short during bonding.  This subpackage makes those failure
modes first-class:

* :mod:`repro.faults.models` — :class:`FaultMask`, a deterministic,
  seed-reproducible description of every hard fault on one crossbar
  (stuck cells, open cells, open/short lines, parametric drift
  overlays), with JSON round-trip for cache keys and reports;
* :class:`~repro.spice.solver.CrossbarNetwork` accepts a
  ``fault_mask=``: stuck cells rewrite the programmed stamp values,
  open cells/lines drop their branches, and a mask that leaves nodes
  floating surfaces as the structured
  :class:`~repro.errors.SolverError` — never a raw numpy crash;
* :mod:`repro.faults.campaign` — a campaign runner that sweeps
  fault rate x fault type x network through :mod:`repro.runtime`
  (chunked pool, persistent cache, per-trial ``SeedSequence``
  spawning) and reports accuracy-vs-fault-rate curves with
  confidence intervals; surfaced as ``repro faults`` on the CLI.

Every sampled mask derives from ``SeedSequence(seed, spawn_key)``
streams, so campaigns are bit-identical across serial and parallel
execution and individually cacheable per trial.
"""

from repro.faults.models import (
    FAULT_MODES,
    FaultMask,
    apply_mask_to_weights,
    sample_fault_mask,
)
from repro.faults.campaign import (
    CampaignResult,
    CampaignSpec,
    CurvePoint,
    run_campaign,
)

__all__ = [
    "FAULT_MODES",
    "FaultMask",
    "apply_mask_to_weights",
    "sample_fault_mask",
    "CampaignSpec",
    "CampaignResult",
    "CurvePoint",
    "run_campaign",
]
