"""Campaign runner: accuracy-vs-fault-rate curves over the job engine.

A *campaign* sweeps the cartesian product of fault rate x fault mode x
network, running ``trials`` independently seeded injections per point
and aggregating them into accuracy curves with 95% confidence
intervals.  Two network levels are supported:

* ``"crossbar"`` — circuit-level: a programmed crossbar is solved with
  and without the sampled :class:`~repro.faults.models.FaultMask`
  through :class:`~repro.spice.solver.CrossbarNetwork`, so line opens /
  shorts and the full interconnect interaction are captured.  A mask
  that makes the MNA system singular (e.g. an open wordline whose cells
  are all open too) surfaces as the structured
  :class:`~repro.errors.SolverError` and is counted as a *failed*
  trial, never a crash.
* ``"mlp:a,b,..."`` — behaviour-level: a seeded random MLP
  (:func:`repro.nn.networks.mlp`) runs its fixed-point forward pass
  with every layer's weights corrupted by an independent mask
  (:func:`~repro.faults.models.apply_mask_to_weights`), which scales to
  network shapes the circuit solver cannot.

Every trial draws from ``SeedSequence(seed, spawn_key=(network_index,
mode_index, rate_index, trial))`` — the same contract as
:mod:`repro.accuracy.montecarlo` — so campaigns are bit-identical
across serial and parallel execution and each trial is individually
cacheable through :mod:`repro.runtime`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.accuracy.interconnect import DEFAULT_SENSE_RESISTANCE
from repro.campaign.dag import DagRunner, Stage, StageContext, register_executor
from repro.errors import ConfigError, SolverError
from repro.faults.models import (
    FAULT_MODES,
    sample_fault_mask,
)
from repro.nn.inference import MlpInference
from repro.nn.networks import mlp
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import JobSpec, content_key
from repro.runtime.metrics import RunMetrics
from repro.runtime.pool import RunPolicy, run_jobs
from repro.spice.solver import (
    CrossbarNetwork,
    ideal_output_voltages,
    solve_batch,
)
from repro.tech.memristor import MemristorModel, get_memristor_model

#: Fault modes that only make sense at the circuit level: a line open /
#: short has no single-weight-matrix meaning, so MLP networks reject it.
_CIRCUIT_ONLY_MODES = ("line_open", "line_short")

#: Stamp written into every campaign JSON; bump on semantic changes.
CAMPAIGN_SCHEMA = "faults-campaign-v1"


def _parse_network_spec(spec: str) -> Optional[Tuple[int, ...]]:
    """``"crossbar"`` -> None, ``"mlp:a,b,..."`` -> neuron sizes."""
    if spec == "crossbar":
        return None
    if spec.startswith("mlp:"):
        body = spec[len("mlp:"):]
        try:
            sizes = tuple(int(token) for token in body.split(","))
        except ValueError as exc:
            raise ConfigError(
                f"bad MLP spec {spec!r}: sizes must be integers"
            ) from exc
        if len(sizes) < 2 or any(s < 1 for s in sizes):
            raise ConfigError(
                f"bad MLP spec {spec!r}: need >= 2 positive neuron counts"
            )
        return sizes
    raise ConfigError(
        f"unknown network spec {spec!r}; use 'crossbar' or 'mlp:a,b,...'"
    )


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that identifies one fault-injection campaign.

    Attributes
    ----------
    networks:
        Network specs to sweep: ``"crossbar"`` (circuit level) and/or
        ``"mlp:a,b,..."`` (behaviour level, neuron counts per level).
    fault_modes:
        Subset of :data:`~repro.faults.models.FAULT_MODES`.
    fault_rates:
        Per-cell/per-line fault probabilities (drift: lognormal sigma).
    trials:
        Independently seeded injections per (network, mode, rate) point.
    seed:
        Root of the per-trial ``SeedSequence`` tree; the only source of
        randomness in the whole campaign.
    size:
        Square crossbar size for ``"crossbar"`` networks.
    device:
        Built-in memristor model name (see
        :func:`repro.tech.memristor.get_memristor_model`).
    segment_resistance / sense_resistance:
        Interconnect parameters for the circuit-level solve.
    """

    networks: Tuple[str, ...] = ("crossbar",)
    fault_modes: Tuple[str, ...] = ("stuck_mixed",)
    fault_rates: Tuple[float, ...] = (0.0, 0.01, 0.02, 0.05)
    trials: int = 8
    seed: int = 0
    size: int = 16
    device: str = "IDEAL"
    segment_resistance: float = 1.0
    sense_resistance: float = DEFAULT_SENSE_RESISTANCE

    def __post_init__(self) -> None:
        object.__setattr__(self, "networks", tuple(self.networks))
        object.__setattr__(self, "fault_modes", tuple(self.fault_modes))
        object.__setattr__(
            self, "fault_rates", tuple(float(r) for r in self.fault_rates)
        )
        if not self.networks:
            raise ConfigError("a campaign needs at least one network")
        if not self.fault_modes:
            raise ConfigError("a campaign needs at least one fault mode")
        if not self.fault_rates:
            raise ConfigError("a campaign needs at least one fault rate")
        for mode in self.fault_modes:
            if mode not in FAULT_MODES:
                raise ConfigError(
                    f"unknown fault mode {mode!r}; pick from {FAULT_MODES}"
                )
        for rate in self.fault_rates:
            if not math.isfinite(rate) or rate < 0:
                raise ConfigError("fault rates must be finite and >= 0")
        if self.trials < 1:
            raise ConfigError("trials must be >= 1")
        if self.size < 2:
            raise ConfigError("crossbar size must be >= 2")
        if self.segment_resistance < 0 or self.sense_resistance <= 0:
            raise ConfigError("bad interconnect resistances")
        for net in self.networks:
            sizes = _parse_network_spec(net)  # validates the spelling
            if sizes is not None:
                for mode in self.fault_modes:
                    if mode in _CIRCUIT_ONLY_MODES:
                        raise ConfigError(
                            f"mode {mode!r} is circuit-level only and "
                            f"cannot be applied to {net!r}; drop the "
                            "MLP network or the line mode"
                        )
        get_memristor_model(self.device)  # fail fast on unknown names

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe, deterministic encoding (embedded in results)."""
        return {
            "networks": list(self.networks),
            "fault_modes": list(self.fault_modes),
            "fault_rates": list(self.fault_rates),
            "trials": self.trials,
            "seed": self.seed,
            "size": self.size,
            "device": self.device,
            "segment_resistance": self.segment_resistance,
            "sense_resistance": self.sense_resistance,
        }


@dataclass(frozen=True)
class CurvePoint:
    """Aggregated statistics of one (network, mode, rate) sweep point.

    ``mean_error`` / ``std_error`` / ``ci95`` cover the *successful*
    trials (those whose faulted system was still solvable); ``failures``
    counts trials whose mask made the MNA system singular.  When every
    trial failed the error statistics are ``None``.
    """

    network: str
    fault_mode: str
    fault_rate: float
    trials: int
    failures: int
    mean_fault_count: float
    mean_error: Optional[float]
    std_error: Optional[float]
    ci95: Optional[float]
    relative_accuracy: Optional[float]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "network": self.network,
            "fault_mode": self.fault_mode,
            "fault_rate": self.fault_rate,
            "trials": self.trials,
            "failures": self.failures,
            "mean_fault_count": self.mean_fault_count,
            "mean_error": self.mean_error,
            "std_error": self.std_error,
            "ci95": self.ci95,
            "relative_accuracy": self.relative_accuracy,
        }


@dataclass(frozen=True)
class CampaignResult:
    """A finished campaign: the spec plus one curve point per combo."""

    spec: CampaignSpec
    points: Tuple[CurvePoint, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": CAMPAIGN_SCHEMA,
            "spec": self.spec.to_dict(),
            "points": [point.to_dict() for point in self.points],
        }

    def to_json(self) -> str:
        """Deterministic serialization: equal campaigns -> equal bytes.

        No timestamps, no environment data, sorted keys — this is what
        the byte-identical reproducibility check in CI compares.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, indent=2,
            separators=(",", ": "), allow_nan=False,
        ) + "\n"


# ----------------------------------------------------------------------
# Trial workers (top-level: must be picklable for the process pool).

def _draw_crossbar_trial(
    mode: str,
    fault_rate: float,
    device: MemristorModel,
    size: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, Any]:
    """One circuit trial's draws, in the fixed (contractual) order.

    Levels, inputs, mask — shared verbatim by the point-wise and
    batched workers, so each trial stays a pure function of its
    spawn-keyed stream no matter how trials are grouped.
    """
    levels = rng.integers(0, device.levels, size=(size, size))
    programmed = device.resistance_of_level(levels)
    inputs = rng.uniform(0, device.read_voltage, size=size)
    mask = sample_fault_mask(size, size, fault_rate, rng, mode=mode)
    return programmed, inputs, mask


def _crossbar_error(
    programmed: np.ndarray,
    inputs: np.ndarray,
    sense_resistance: float,
    output_voltages: np.ndarray,
    fault_count: int,
) -> Dict[str, Any]:
    """The trial dict of a solved (non-singular) circuit trial."""
    ideal = ideal_output_voltages(programmed, inputs, sense_resistance)
    scale = float(np.max(np.abs(ideal)))
    error = (
        float(np.mean(np.abs(ideal - output_voltages)) / scale)
        if scale > 0 else 0.0
    )
    return {
        "failed": False, "error": error, "fault_count": fault_count,
    }


def _failed_trial(fault_count: int) -> Dict[str, Any]:
    """The trial dict of a singular (unsolvable) faulted system."""
    return {
        "failed": True, "error": None, "fault_count": fault_count,
    }


def _crossbar_trial(
    mode: str,
    fault_rate: float,
    device: MemristorModel,
    size: int,
    segment_resistance: float,
    sense_resistance: float,
    rng: np.random.Generator,
) -> Dict[str, Any]:
    """Solve one programmed crossbar with and without a sampled mask."""
    programmed, inputs, mask = _draw_crossbar_trial(
        mode, fault_rate, device, size, rng
    )
    try:
        network = CrossbarNetwork(
            programmed, segment_resistance, sense_resistance,
            device=device, fault_mask=mask,
        )
        solution = network.solve(inputs)
    except SolverError:
        # Singular faulted system (floating nodes): a *failed* trial.
        return _failed_trial(mask.fault_count)
    return _crossbar_error(
        programmed, inputs, sense_resistance,
        solution.output_voltages, mask.fault_count,
    )


def _mlp_trial(
    sizes: Tuple[int, ...],
    mode: str,
    fault_rate: float,
    rng: np.random.Generator,
) -> Dict[str, Any]:
    """Fixed-point forward pass with per-layer weight corruption."""
    network = mlp(list(sizes), name="faults-mlp")
    model = MlpInference.with_random_weights(network, rng)
    # Draw order is fixed: inputs first, then one mask per layer, so the
    # trial is a pure function of its SeedSequence stream.
    inputs = rng.uniform(-1.0, 1.0, size=sizes[0])
    masks = [
        sample_fault_mask(
            out_features, in_features, fault_rate, rng, mode=mode
        )
        for out_features, in_features in (
            layer.weight_shape for layer in network.layers
        )
    ]
    ideal = model.forward(inputs)[-1]
    # Hoist the mask application: corrupt each layer's weights once
    # (same apply_mask_to_weights arithmetic, so bit-identical) instead
    # of re-corrupting inside every forward pass.
    faulty = model.with_fault_masks(masks).forward(inputs)[-1]
    scale = float(np.max(np.abs(ideal)))
    error = (
        float(np.mean(np.abs(ideal - faulty)) / scale)
        if scale > 0 else 0.0
    )
    return {
        "failed": False, "error": error,
        "fault_count": sum(mask.fault_count for mask in masks),
    }


def _run_trial(task: Tuple) -> Dict[str, Any]:
    """Worker: one seeded fault-injection trial (pool process safe).

    The spawn key — not worker state, not schedule — is the only RNG
    source, so results are identical for any ``jobs``/``chunk_size``.
    """
    (network_spec, mode, fault_rate, seed, spawn_key, device, size,
     segment_resistance, sense_resistance) = task
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=tuple(spawn_key))
    )
    sizes = _parse_network_spec(network_spec)
    with obs_trace.span(
        "faults.trial", network=network_spec, mode=mode, rate=fault_rate
    ):
        if sizes is None:
            result = _crossbar_trial(
                mode, fault_rate, device, size, segment_resistance,
                sense_resistance, rng,
            )
        else:
            result = _mlp_trial(sizes, mode, fault_rate, rng)
    if obs_trace.enabled():
        obs_metrics.counter(
            "repro_fault_trials_total",
            "Fault-injection trials by outcome",
        ).inc(outcome="failed" if result["failed"] else "solved")
    return result


def _run_trial_batch(tasks: List[Tuple]) -> List[Dict[str, Any]]:
    """Batched worker: one group of seeded trials, one stacked solve.

    Every crossbar trial in the group shares the campaign's shape, so
    their structural assembly happens in one
    :meth:`~repro.spice.solver._CrossbarStructure.matrix_batch` sweep
    inside :func:`~repro.spice.solver.solve_batch`.  Masks that make
    the MNA system singular are *marked* (``on_singular="mark"``)
    instead of raising, which reproduces the point-wise worker's
    failed-trial dicts exactly; solvable members are bit-identical to
    :meth:`~repro.spice.solver.CrossbarNetwork.solve`, so campaign
    JSON is byte-identical to the point-wise path for any grouping.
    MLP trials (no shared matrix structure) run point-wise in place.
    """
    results: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    member_slots: List[int] = []
    networks: List[CrossbarNetwork] = []
    input_vectors: List[np.ndarray] = []
    contexts: List[Tuple[np.ndarray, np.ndarray, float, int]] = []
    for slot, task in enumerate(tasks):
        (network_spec, mode, fault_rate, seed, spawn_key, device, size,
         segment_resistance, sense_resistance) = task
        rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=tuple(spawn_key))
        )
        sizes = _parse_network_spec(network_spec)
        if sizes is not None:
            with obs_trace.span(
                "faults.trial", network=network_spec, mode=mode,
                rate=fault_rate,
            ):
                results[slot] = _mlp_trial(sizes, mode, fault_rate, rng)
            continue
        programmed, inputs, mask = _draw_crossbar_trial(
            mode, fault_rate, device, size, rng
        )
        try:
            network = CrossbarNetwork(
                programmed, segment_resistance, sense_resistance,
                device=device, fault_mask=mask,
            )
        except SolverError:
            results[slot] = _failed_trial(mask.fault_count)
            continue
        member_slots.append(slot)
        networks.append(network)
        input_vectors.append(inputs)
        contexts.append(
            (programmed, inputs, sense_resistance, mask.fault_count)
        )
    if networks:
        with obs_trace.span("faults.batch", trials=len(networks)):
            batch = solve_batch(
                networks, np.stack(input_vectors), on_singular="mark"
            )
        for member, slot in enumerate(member_slots):
            programmed, inputs, sense_resistance, fault_count = (
                contexts[member]
            )
            if batch.failed[member]:
                results[slot] = _failed_trial(fault_count)
            else:
                results[slot] = _crossbar_error(
                    programmed, inputs, sense_resistance,
                    batch.output_voltages[member], fault_count,
                )
    if obs_trace.enabled():
        counter = obs_metrics.counter(
            "repro_fault_trials_total",
            "Fault-injection trials by outcome",
        )
        for result in results:
            counter.inc(
                outcome="failed" if result["failed"] else "solved"
            )
    return results


# ----------------------------------------------------------------------

def _aggregate(
    network: str, mode: str, rate: float, trials: List[Dict[str, Any]]
) -> CurvePoint:
    """Fold one point's trial dicts into a :class:`CurvePoint`."""
    failures = sum(1 for t in trials if t["failed"])
    errors = [float(t["error"]) for t in trials if not t["failed"]]
    mean_fault_count = float(
        np.mean([float(t["fault_count"]) for t in trials])
    )
    if errors:
        mean_error = float(np.mean(errors))
        std_error = (
            float(np.std(errors, ddof=1)) if len(errors) > 1 else 0.0
        )
        ci95 = 1.96 * std_error / math.sqrt(len(errors))
        relative_accuracy = max(0.0, 1.0 - mean_error)
    else:
        mean_error = std_error = ci95 = relative_accuracy = None
    return CurvePoint(
        network=network,
        fault_mode=mode,
        fault_rate=rate,
        trials=len(trials),
        failures=failures,
        mean_fault_count=mean_fault_count,
        mean_error=mean_error,
        std_error=std_error,
        ci95=ci95,
        relative_accuracy=relative_accuracy,
    )


def run_campaign(
    spec: CampaignSpec,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    metrics: Optional[RunMetrics] = None,
    policy: Optional[RunPolicy] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    should_cancel: Optional[Callable[[], bool]] = None,
) -> CampaignResult:
    """Run the full fault sweep through the job engine.

    Parameters
    ----------
    spec:
        The campaign definition (networks x modes x rates x trials).
    jobs:
        Worker processes (``0`` = all cores); results are bit-identical
        for any value because every trial owns a spawn-keyed stream.
    cache / metrics / policy:
        Engine knobs, as in :func:`repro.dse.explorer.explore`; cached
        campaigns replay without touching the solver.
    progress / should_cancel:
        Engine hooks forwarded to :func:`repro.runtime.pool.run_jobs`.
    """
    n_combos = (
        len(spec.networks) * len(spec.fault_modes) * len(spec.fault_rates)
    )
    # The campaign as a three-stage DAG on the shared runner: expand
    # the sweep into spawn-keyed trials, shard them through the
    # engine, aggregate per combo.  The trial count is a pure function
    # of the spec, so the solve weight is known before anything runs.
    stages = [
        Stage(name="map", executor="faults.map", params={"spec": spec}),
        Stage(
            name="solve",
            executor="faults.solve",
            depends_on=("map",),
            weight=n_combos * spec.trials,
        ),
        Stage(
            name="report",
            executor="faults.report",
            params={"spec": spec},
            depends_on=("map", "solve"),
        ),
    ]
    runner = DagRunner(
        stages,
        cache=cache,
        metrics=metrics,
        policy=policy if policy is not None else RunPolicy(jobs=jobs),
        progress=progress,
        should_cancel=should_cancel,
    )
    with obs_trace.span(
        "faults.campaign",
        points=n_combos, trials_per_point=spec.trials,
    ):
        return runner.run()["report"]


@register_executor("faults.map")
def _stage_map(stage: Stage, context: StageContext) -> Dict[str, Any]:
    """Expand the sweep into combos and spawn-keyed trial job specs."""
    spec: CampaignSpec = stage.params["spec"]
    device = get_memristor_model(spec.device)
    combos: List[Tuple[str, str, float]] = []
    specs: List[JobSpec] = []
    for net_index, network in enumerate(spec.networks):
        for mode_index, mode in enumerate(spec.fault_modes):
            for rate_index, rate in enumerate(spec.fault_rates):
                combos.append((network, mode, rate))
                for trial in range(spec.trials):
                    spawn_key = (net_index, mode_index, rate_index, trial)
                    task = (
                        network, mode, rate, spec.seed, spawn_key,
                        device, spec.size, spec.segment_resistance,
                        spec.sense_resistance,
                    )
                    specs.append(JobSpec(
                        kind="faults-trial",
                        payload=task,
                        key=content_key(
                            "faults-trial", network, mode, rate,
                            spec.seed, list(spawn_key), device,
                            spec.size, spec.segment_resistance,
                            spec.sense_resistance,
                        ),
                    ))
    return {"combos": combos, "specs": specs}


@register_executor("faults.solve")
def _stage_solve(stage: Stage, context: StageContext) -> List[Any]:
    """Shard the fault trials through the job engine."""
    return run_jobs(
        _run_trial,
        context.upstream["map"]["specs"],
        policy=context.policy,
        cache=context.cache,
        metrics=context.metrics,
        progress=context.progress,
        should_cancel=context.should_cancel,
        batch_worker=_run_trial_batch,
    )


@register_executor("faults.report")
def _stage_report(stage: Stage, context: StageContext) -> CampaignResult:
    """Aggregate trial results into one curve point per combo."""
    spec: CampaignSpec = stage.params["spec"]
    combos = context.upstream["map"]["combos"]
    results = context.upstream["solve"]
    points = []
    for index, (network, mode, rate) in enumerate(combos):
        start = index * spec.trials
        points.append(_aggregate(
            network, mode, rate, results[start:start + spec.trials]
        ))
    return CampaignResult(spec=spec, points=tuple(points))
