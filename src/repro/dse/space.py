"""The design-space grid: crossbar size x parallelism x interconnect.

The paper's case studies sweep exactly these three variables
(Sec. VII.C: "the crossbar size, computation parallelism degree, and
interconnect technology are three variables for design space
exploration").  :class:`DesignSpace` enumerates the valid combinations
as :class:`~repro.config.SimConfig` instances derived from a base
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.tech import available_interconnect_nodes


def _powers_of_two(low: int, high: int) -> Tuple[int, ...]:
    values = []
    value = low
    while value <= high:
        values.append(value)
        value *= 2
    return tuple(values)


@dataclass(frozen=True)
class DesignSpace:
    """The swept parameter grid.

    Defaults follow the large-computation-bank case study: crossbar
    sizes doubling from 4 to 1024, parallelism degrees doubling from 1
    to 256 (clamped per size; 0 = fully parallel is expressed by the
    degree equal to the crossbar size), and the {18, 22, 28, 36, 45} nm
    interconnect nodes.
    """

    crossbar_sizes: Tuple[int, ...] = _powers_of_two(4, 1024)
    parallelism_degrees: Tuple[int, ...] = _powers_of_two(1, 256)
    interconnect_nodes: Tuple[int, ...] = (18, 22, 28, 36, 45)

    def __post_init__(self) -> None:
        if not self.crossbar_sizes or not self.parallelism_degrees \
                or not self.interconnect_nodes:
            raise ConfigError("design space axes must be non-empty")
        known = set(available_interconnect_nodes())
        unknown = set(self.interconnect_nodes) - known
        if unknown:
            raise ConfigError(
                f"unknown interconnect nodes {sorted(unknown)}; "
                f"available: {sorted(known)}"
            )

    # ------------------------------------------------------------------
    def valid_points(self) -> Iterator[Tuple[int, int, int]]:
        """Yield valid ``(crossbar_size, parallelism, interconnect)``.

        Degrees larger than the crossbar size are skipped (they would
        duplicate the fully-parallel point).
        """
        for size in self.crossbar_sizes:
            for degree in self.parallelism_degrees:
                if degree > size:
                    continue
                for node in self.interconnect_nodes:
                    yield (size, degree, node)

    def __len__(self) -> int:
        return sum(1 for _point in self.valid_points())

    def configs(self, base: SimConfig) -> Iterator[SimConfig]:
        """Yield a :class:`SimConfig` per valid point, derived from
        ``base`` (all other fields unchanged)."""
        for size, degree, node in self.valid_points():
            yield base.replace(
                crossbar_size=size,
                parallelism_degree=degree,
                interconnect_tech=node,
            )
