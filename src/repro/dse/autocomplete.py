"""Configuration auto-completion (Sec. IV.A of the paper).

"If users do not determine all configurations, MNSIM will give the
optimal design for each performance with design details."  This module
implements that behaviour: the user marks configuration fields as
*free*, and the tool sweeps only those axes, returning — per
optimization target — a fully-specified :class:`~repro.config.
SimConfig` plus its metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.dse.explorer import DesignPoint, explore, optimal_table
from repro.dse.space import DesignSpace
from repro.errors import ExplorationError
from repro.nn.networks import Network
from repro.tech import available_interconnect_nodes

#: Fields the auto-completer can sweep, with their default candidate sets.
FREE_AXES: Dict[str, Tuple[int, ...]] = {
    "crossbar_size": (32, 64, 128, 256, 512, 1024),
    "parallelism_degree": (1, 4, 16, 64, 256),
    "interconnect_tech": (18, 22, 28, 36, 45),
}


@dataclass(frozen=True)
class CompletedDesign:
    """One fully-specified suggestion."""

    metric: str
    config: SimConfig
    point: DesignPoint


def suggest_designs(
    base: SimConfig,
    network: Network,
    free: Sequence[str] = ("crossbar_size", "parallelism_degree",
                           "interconnect_tech"),
    max_error_rate: Optional[float] = None,
    candidates: Optional[Dict[str, Sequence[int]]] = None,
) -> Dict[str, CompletedDesign]:
    """Complete the free fields optimally, per optimization target.

    Parameters
    ----------
    base:
        The user's partial decision: every field not listed in ``free``
        is pinned at its ``base`` value.
    free:
        Which fields the tool may choose (subset of :data:`FREE_AXES`).
    max_error_rate:
        Optional worst-case error constraint.
    candidates:
        Optional per-field candidate overrides.

    Returns a mapping ``metric -> CompletedDesign`` for the four paper
    targets (area / energy / latency / accuracy).
    """
    free = tuple(free)
    if not free:
        raise ExplorationError("at least one field must be free")
    unknown = set(free) - set(FREE_AXES)
    if unknown:
        raise ExplorationError(
            f"cannot sweep {sorted(unknown)}; sweepable: "
            f"{sorted(FREE_AXES)}"
        )

    def axis(name: str) -> Tuple[int, ...]:
        if candidates and name in candidates:
            return tuple(candidates[name])
        if name in free:
            if name == "interconnect_tech":
                known = set(available_interconnect_nodes())
                return tuple(
                    n for n in FREE_AXES[name] if n in known
                )
            return FREE_AXES[name]
        return (getattr(base, name),)

    space = DesignSpace(
        crossbar_sizes=axis("crossbar_size"),
        parallelism_degrees=axis("parallelism_degree"),
        interconnect_nodes=axis("interconnect_tech"),
    )
    points = explore(base, network, space, max_error_rate=max_error_rate)
    if not points:
        raise ExplorationError(
            "no completion satisfies the constraints; free more fields "
            "or relax the error bound"
        )
    best = optimal_table(points)
    suggestions = {}
    for metric, point in best.items():
        config = base.replace(
            crossbar_size=point.crossbar_size,
            parallelism_degree=point.parallelism_degree,
            interconnect_tech=point.interconnect_tech,
        )
        suggestions[metric] = CompletedDesign(
            metric=metric, config=config, point=point
        )
    return suggestions
