"""Trade-off analyses: Table V, Fig. 7, Fig. 8.

* :func:`size_tradeoff` — error / area / energy vs crossbar size at a
  fixed interconnect node (Table V): the U-shaped error curve against
  monotonically falling area and energy.
* :func:`parallelism_sweep` — area and latency vs parallelism degree per
  crossbar size, with per-size normalization (Fig. 7) and the raw
  area-latency scatter (Fig. 8).
* :func:`pareto_frontier` / :func:`inflection_point` — generic frontier
  extraction and knee detection for the area-latency curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.accelerator import Accelerator
from repro.config import SimConfig
from repro.errors import ExplorationError
from repro.nn.networks import Network


@dataclass(frozen=True)
class SizeTradeoffRow:
    """One column of Table V: metrics at one crossbar size."""

    crossbar_size: int
    error_rate: float
    area: float
    energy: float


def size_tradeoff(
    base_config: SimConfig,
    network: Network,
    sizes: Sequence[int] = (256, 128, 64, 32, 16, 8),
) -> List[SizeTradeoffRow]:
    """Error / area / energy against crossbar size (Table V)."""
    rows = []
    for size in sizes:
        config = base_config.replace(
            crossbar_size=size,
            parallelism_degree=min(base_config.parallelism_degree, size)
            if base_config.parallelism_degree
            else 0,
        )
        summary = Accelerator(config, network).summary()
        rows.append(
            SizeTradeoffRow(
                crossbar_size=size,
                error_rate=summary.worst_error_rate,
                area=summary.area,
                energy=summary.energy_per_sample,
            )
        )
    return rows


@dataclass(frozen=True)
class ParallelismRow:
    """One (size, degree) point of the Fig. 7/8 sweeps."""

    crossbar_size: int
    parallelism_degree: int
    area: float
    latency: float
    normalized_area: float = 0.0
    normalized_latency: float = 0.0


def parallelism_sweep(
    base_config: SimConfig,
    network: Network,
    sizes: Sequence[int] = (64, 128, 256, 512),
    degrees: Optional[Sequence[int]] = None,
) -> List[ParallelismRow]:
    """Area and latency vs parallelism degree per crossbar size.

    Results are normalized by the maximum area and latency *within each
    crossbar size* (the presentation of Fig. 7); the raw values serve
    Fig. 8 directly.
    """
    raw: Dict[int, List[ParallelismRow]] = {}
    for size in sizes:
        sweep_degrees = degrees
        if sweep_degrees is None:
            sweep_degrees = []
            degree = 1
            while degree <= size:
                sweep_degrees.append(degree)
                degree *= 2
        rows = []
        for degree in sweep_degrees:
            if degree > size:
                continue
            config = base_config.replace(
                crossbar_size=size, parallelism_degree=degree
            )
            summary = Accelerator(config, network).summary()
            rows.append(
                ParallelismRow(
                    crossbar_size=size,
                    parallelism_degree=degree,
                    area=summary.area,
                    latency=summary.compute_latency,
                )
            )
        raw[size] = rows

    normalized: List[ParallelismRow] = []
    for size, rows in raw.items():
        if not rows:
            continue
        max_area = max(row.area for row in rows)
        max_latency = max(row.latency for row in rows)
        for row in rows:
            normalized.append(
                ParallelismRow(
                    crossbar_size=row.crossbar_size,
                    parallelism_degree=row.parallelism_degree,
                    area=row.area,
                    latency=row.latency,
                    normalized_area=row.area / max_area,
                    normalized_latency=row.latency / max_latency,
                )
            )
    return normalized


def pareto_frontier(
    points: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Non-dominated subset of 2-D points (both axes: smaller = better),
    sorted by the first axis."""
    ordered = sorted(points)
    frontier: List[Tuple[float, float]] = []
    best_second = float("inf")
    for first, second in ordered:
        if second < best_second:
            frontier.append((first, second))
            best_second = second
    return frontier


def inflection_point(
    points: Sequence[Tuple[float, float]]
) -> Tuple[float, float]:
    """Knee of a trade-off curve: the point nearest (in normalized
    coordinates) to the utopia corner ``(min_x, min_y)``.

    This locates the paper's "inflection point for each crossbar size"
    in the Fig. 8 area-latency curves.
    """
    if not points:
        raise ExplorationError("knee detection needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    def distance(point: Tuple[float, float]) -> float:
        nx = (point[0] - x_min) / x_span
        ny = (point[1] - y_min) / y_span
        return nx * nx + ny * ny

    return min(points, key=distance)
