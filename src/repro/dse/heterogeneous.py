"""Heterogeneous (per-bank) design-space exploration.

The paper's case studies sweep one crossbar size / parallelism degree
for the whole accelerator ("set as common variables in the entire
accelerator level", Sec. VII.D).  Nothing in the architecture forces
that: each computation bank is an independent island behind digital
interfaces, so each layer can get its own crossbar size and parallelism
degree.  This module implements the per-bank optimisation:

* area and energy decompose as sums over banks, and the pipeline cycle
  as a max — so minimising each bank independently minimises the
  accelerator for those metrics;
* accuracy couples the layers (Eq. 15), so the per-bank search runs
  under a per-layer analog-error budget that guarantees the propagated
  constraint.

The headline result (and the regression the extension bench pins):
heterogeneous mapping strictly dominates the best uniform design
whenever layer shapes differ enough — small layers stop paying for the
big layers' crossbar choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.accuracy.model import AccuracyModel
from repro.accuracy.propagation import propagate_layers
from repro.arch.bank import ComputationBank
from repro.config import SimConfig
from repro.errors import ExplorationError
from repro.nn.networks import Network


@dataclass(frozen=True)
class BankChoice:
    """One bank's selected parameters and its resulting costs."""

    layer_index: int
    crossbar_size: int
    parallelism_degree: int
    area: float
    energy: float
    pass_latency: float
    sample_latency: float
    analog_epsilon: float


@dataclass(frozen=True)
class HeterogeneousDesign:
    """A per-bank configuration of the whole accelerator."""

    choices: Tuple[BankChoice, ...]
    worst_error_rate: float

    @property
    def area(self) -> float:
        """Total area (banks only)."""
        return sum(choice.area for choice in self.choices)

    @property
    def energy(self) -> float:
        """Total per-sample energy (banks only)."""
        return sum(choice.energy for choice in self.choices)

    @property
    def latency(self) -> float:
        """Sequential per-sample latency (banks only)."""
        return sum(choice.sample_latency for choice in self.choices)

    @property
    def pipeline_cycle(self) -> float:
        """Pipelined cycle time: the slowest bank pass."""
        return max(choice.pass_latency for choice in self.choices)


def _bank_candidates(
    base: SimConfig,
    network: Network,
    layer_index: int,
    crossbar_sizes: Sequence[int],
    parallelism_degrees: Sequence[int],
) -> List[BankChoice]:
    """All candidate (size, degree) builds of one bank."""
    layers = list(network.layers)
    layer = layers[layer_index]
    next_layer = (
        layers[layer_index + 1]
        if layer_index + 1 < len(layers)
        else None
    )
    candidates = []
    for size in crossbar_sizes:
        for degree in parallelism_degrees:
            if degree > size:
                continue
            config = base.replace(
                crossbar_size=size,
                parallelism_degree=degree,
                network_type=network.network_type,
            )
            bank = ComputationBank(config, layer, next_layer=next_layer)
            sample = bank.sample_performance()
            model = AccuracyModel(config)
            rows = bank.mapping.typical_active_rows
            epsilon = model.crossbar_epsilon(rows=rows, cols=rows)
            candidates.append(
                BankChoice(
                    layer_index=layer_index,
                    crossbar_size=size,
                    parallelism_degree=degree,
                    area=sample.area,
                    energy=sample.dynamic_energy,
                    pass_latency=bank.pass_performance().latency,
                    sample_latency=sample.latency,
                    analog_epsilon=epsilon,
                )
            )
    if not candidates:
        raise ExplorationError("no valid (size, degree) candidates")
    return candidates


_METRIC_KEYS = {
    "area": lambda c: c.area,
    "energy": lambda c: c.energy,
    "latency": lambda c: c.sample_latency,
    "pipeline": lambda c: c.pass_latency,
}


def optimise_heterogeneous(
    base: SimConfig,
    network: Network,
    metric: str = "area",
    crossbar_sizes: Sequence[int] = (32, 64, 128, 256, 512),
    parallelism_degrees: Sequence[int] = (1, 4, 16, 64, 256),
    max_error_rate: Optional[float] = None,
) -> HeterogeneousDesign:
    """Per-bank optimal design for a decomposable metric.

    When ``max_error_rate`` is given, each bank must individually keep
    its analog epsilon within the budget that makes the *propagated*
    worst-case error (Eq. 15) meet the bound — a sufficient per-layer
    condition derived by equal splitting:
    ``(1 + eps_budget)^depth - 1 <= pre-quantization band``.
    """
    if metric not in _METRIC_KEYS:
        raise ExplorationError(
            f"metric must be one of {sorted(_METRIC_KEYS)}, got {metric!r}"
        )
    key = _METRIC_KEYS[metric]

    eps_budget = None
    if max_error_rate is not None:
        if not 0 < max_error_rate <= 1:
            raise ExplorationError("max_error_rate must lie in (0, 1]")
        depth = network.depth
        eps_budget = (1.0 + max_error_rate) ** (1.0 / depth) - 1.0

    choices = []
    for layer_index in range(network.depth):
        candidates = _bank_candidates(
            base, network, layer_index, crossbar_sizes, parallelism_degrees
        )
        if eps_budget is not None:
            feasible = [
                c for c in candidates if c.analog_epsilon <= eps_budget
            ]
            if not feasible:
                raise ExplorationError(
                    f"no candidate for layer {layer_index} meets the "
                    f"per-layer error budget {eps_budget:.4f}"
                )
            candidates = feasible
        choices.append(min(candidates, key=key))

    worst = propagate_layers(
        [choice.analog_epsilon for choice in choices],
        base.read_levels,
        case="worst",
    )[-1]
    return HeterogeneousDesign(choices=tuple(choices),
                               worst_error_rate=worst)


def uniform_best(
    base: SimConfig,
    network: Network,
    metric: str = "area",
    crossbar_sizes: Sequence[int] = (32, 64, 128, 256, 512),
    parallelism_degrees: Sequence[int] = (1, 4, 16, 64, 256),
    max_error_rate: Optional[float] = None,
) -> HeterogeneousDesign:
    """The best *uniform* design over the same grid, in the same
    (banks-only) accounting — the baseline heterogeneity must beat."""
    if metric not in _METRIC_KEYS:
        raise ExplorationError(f"unknown metric {metric!r}")

    best: Optional[HeterogeneousDesign] = None
    for size in crossbar_sizes:
        for degree in parallelism_degrees:
            if degree > size:
                continue
            choices = []
            for layer_index in range(network.depth):
                candidates = _bank_candidates(
                    base, network, layer_index, (size,), (degree,)
                )
                choices.append(candidates[0])
            worst = propagate_layers(
                [c.analog_epsilon for c in choices],
                base.read_levels, case="worst",
            )[-1]
            if max_error_rate is not None and worst > max_error_rate:
                continue
            design = HeterogeneousDesign(
                choices=tuple(choices), worst_error_rate=worst
            )
            value = {
                "area": design.area,
                "energy": design.energy,
                "latency": design.latency,
                "pipeline": design.pipeline_cycle,
            }[metric]
            if best is None or value < {
                "area": best.area,
                "energy": best.energy,
                "latency": best.latency,
                "pipeline": best.pipeline_cycle,
            }[metric]:
                best = design
    if best is None:
        raise ExplorationError("no uniform design meets the constraints")
    return best
