"""Constraint sets for design-space exploration.

The paper's case studies use a single error-rate bound ("the computing
error rate of memristor crossbar cannot be larger than 25 %"); real
design sign-off adds budgets on area, power, energy, and latency.
:class:`ConstraintSet` generalises the bound into a conjunction of
per-metric ceilings, usable both as a filter over explored points and
as a feasibility check for a single design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dse.explorer import DesignPoint
from repro.errors import ExplorationError


@dataclass(frozen=True)
class ConstraintSet:
    """Ceilings per metric; ``None`` means unconstrained.

    Attributes
    ----------
    max_area:
        Silicon area ceiling in m^2.
    max_energy:
        Per-sample dynamic energy ceiling in J.
    max_latency:
        Per-sample compute latency ceiling in s.
    max_power:
        Average power ceiling in W.
    max_error_rate:
        Worst-case computing error ceiling (0..1).
    """

    max_area: Optional[float] = None
    max_energy: Optional[float] = None
    max_latency: Optional[float] = None
    max_power: Optional[float] = None
    max_error_rate: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("max_area", "max_energy", "max_latency", "max_power",
                     "max_error_rate"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ExplorationError(f"{name} must be positive when set")

    # ------------------------------------------------------------------
    def violations(self, point: DesignPoint) -> Dict[str, float]:
        """Map of violated constraints to their overshoot ratio.

        An overshoot of 0.2 means the metric exceeds its ceiling by
        20 %.  Empty dict == feasible.
        """
        checks = {
            "max_area": point.area,
            "max_energy": point.energy,
            "max_latency": point.latency,
            "max_power": point.power,
            "max_error_rate": point.error_rate,
        }
        result = {}
        for name, value in checks.items():
            ceiling = getattr(self, name)
            if ceiling is not None and value > ceiling:
                result[name] = value / ceiling - 1.0
        return result

    def satisfied_by(self, point: DesignPoint) -> bool:
        """Feasibility of one design point."""
        return not self.violations(point)

    def filter(self, points: Sequence[DesignPoint]) -> List[DesignPoint]:
        """Feasible subset of ``points`` (order preserved)."""
        return [p for p in points if self.satisfied_by(p)]

    def tightest_constraint(
        self, points: Sequence[DesignPoint]
    ) -> Optional[str]:
        """The constraint that excludes the most points (None if all
        feasible or no constraints are set)."""
        counts: Dict[str, int] = {}
        for point in points:
            for name in self.violations(point):
                counts[name] = counts.get(name, 0) + 1
        if not counts:
            return None
        return max(counts, key=counts.get)
