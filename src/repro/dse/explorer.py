"""Traversal design-space exploration with per-metric optima (Fig. 9).

The explorer simulates every valid point of a :class:`~repro.dse.space.
DesignSpace`, discards points violating the error-rate constraint, and
reports the optimal design per optimization target — exactly the flow of
the paper's Tables IV and VI.  :func:`pentagon_factors` computes the
normalized five-axis comparison of Fig. 9 (reciprocal area, energy
efficiency, reciprocal power, speed, accuracy).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.arch.accelerator import Accelerator, AcceleratorSummary
from repro.campaign.dag import DagRunner, Stage, StageContext, register_executor
from repro.config import SimConfig
from repro.dse.space import DesignSpace
from repro.errors import ExplorationError
from repro.nn.networks import Network
from repro.obs import trace as obs_trace
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import JobSpec, content_key, network_fingerprint
from repro.runtime.metrics import RunMetrics
from repro.runtime.pool import RunPolicy, run_jobs

#: Optimization targets, matching the columns of Tables IV / VI.
OPTIMIZATION_METRICS = ("area", "energy", "latency", "accuracy")


@dataclass(frozen=True)
class DesignPoint:
    """One simulated design: its swept parameters and its metrics."""

    crossbar_size: int
    parallelism_degree: int
    interconnect_tech: int
    summary: AcceleratorSummary

    # Convenience accessors for ranking -------------------------------
    @property
    def area(self) -> float:
        return self.summary.area

    @property
    def energy(self) -> float:
        return self.summary.energy_per_sample

    @property
    def latency(self) -> float:
        return self.summary.compute_latency

    @property
    def power(self) -> float:
        return self.summary.power

    @property
    def error_rate(self) -> float:
        return self.summary.worst_error_rate

    def metric(self, name: str) -> float:
        """Metric value where *smaller is better* for every name."""
        if name == "area":
            return self.area
        if name == "energy":
            return self.energy
        if name == "latency":
            return self.latency
        if name == "power":
            return self.power
        if name == "accuracy":
            return self.error_rate
        raise ExplorationError(f"unknown optimization metric {name!r}")


# ----------------------------------------------------------------------
# Simulation jobs (the repro.runtime integration)
# ----------------------------------------------------------------------
_SUMMARY_FIELDS = (
    "area", "energy_per_sample", "sample_latency", "compute_latency",
    "pipeline_cycle", "power", "worst_error_rate", "average_error_rate",
)


def _evaluate_point(task: Tuple[SimConfig, Network]) -> AcceleratorSummary:
    """Worker: simulate one design point (runs in a pool process)."""
    config, network = task
    with obs_trace.span(
        "dse.point",
        xbar=config.crossbar_size,
        p=config.parallelism_degree,
        wire=config.interconnect_tech,
    ):
        return Accelerator(config, network).summary()


def _shape_group_key(config: SimConfig) -> str:
    """Canonical key of the accuracy-equivalent group a config is in.

    Parallelism degree changes only digital replication, never the
    crossbar computing accuracy (the paper's Sec. VII.C.1 observation),
    so configs differing only in ``parallelism_degree`` share one
    :meth:`~repro.arch.accelerator.Accelerator.accuracy` result.
    """
    entries = dict(config.to_dict())
    entries.pop("parallelism_degree", None)
    return json.dumps(entries, sort_keys=True, default=str)


def _evaluate_points_batch(
    tasks: List[Tuple[SimConfig, Network]],
) -> List[AcceleratorSummary]:
    """Batched worker: one group of design points, accuracy shared.

    Groups the points by crossbar shape (config minus parallelism
    degree) and evaluates each group's accuracy model once, reusing it
    for every member via ``summary(accuracy=...)``.  The shared value
    is the member's own computation verbatim, so results are
    byte-identical to :func:`_evaluate_point` on each task.
    """
    shared: Dict[str, Any] = {}
    summaries: List[AcceleratorSummary] = []
    for config, network in tasks:
        with obs_trace.span(
            "dse.point",
            xbar=config.crossbar_size,
            p=config.parallelism_degree,
            wire=config.interconnect_tech,
        ):
            accelerator = Accelerator(config, network)
            key = _shape_group_key(config)
            accuracy = shared.get(key)
            if accuracy is None:
                accuracy = shared[key] = accelerator.accuracy()
            summaries.append(accelerator.summary(accuracy=accuracy))
    return summaries


def _encode_summary(summary: AcceleratorSummary) -> dict:
    return {name: getattr(summary, name) for name in _SUMMARY_FIELDS}


def _decode_summary(data: dict) -> AcceleratorSummary:
    return AcceleratorSummary(**{name: data[name] for name in _SUMMARY_FIELDS})


def simulation_spec(config: SimConfig, network: Network,
                    fingerprint: Optional[str] = None) -> JobSpec:
    """The :class:`JobSpec` for one (config, network) simulation.

    The cache key folds the deterministic config serialization, the
    network fingerprint, and the engine schema version — the contract
    of ISSUE's "canonical serialization" requirement.
    """
    if fingerprint is None:
        fingerprint = network_fingerprint(network)
    return JobSpec(
        kind="simulate-point",
        payload=(config, network),
        key=content_key("simulate-point", config.to_dict(), fingerprint),
    )


def simulate_point(
    config: SimConfig,
    network: Network,
    *,
    cache: Optional[ResultCache] = None,
    metrics: Optional[RunMetrics] = None,
) -> AcceleratorSummary:
    """Simulate one design through the job engine (cache-aware)."""
    return run_jobs(
        _evaluate_point,
        [simulation_spec(config, network)],
        cache=cache,
        encode=_encode_summary,
        decode=_decode_summary,
        metrics=metrics,
    )[0]


def explore(
    base_config: SimConfig,
    network: Network,
    space: Optional[DesignSpace] = None,
    max_error_rate: Optional[float] = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    metrics: Optional[RunMetrics] = None,
    policy: Optional[RunPolicy] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    should_cancel: Optional[Callable[[], bool]] = None,
) -> List[DesignPoint]:
    """Simulate every valid design point.

    Parameters
    ----------
    base_config:
        Non-swept parameters (CMOS node, precisions, device, ...).
    network:
        The application mapped onto every candidate design.
    space:
        The swept grid (defaults to the paper's large-bank grid).
    max_error_rate:
        Optional constraint: points whose worst-case error rate exceeds
        this bound are dropped (the paper uses 25 % / 50 %).
    jobs:
        Worker processes for the sweep; ``1`` runs serially and
        ``jobs>1`` returns the exact same points in the same order
        (the engine guarantees result equivalence).
    cache:
        Optional :class:`~repro.runtime.cache.ResultCache`; previously
        simulated points are read back instead of recomputed.
    metrics:
        Optional :class:`~repro.runtime.metrics.RunMetrics` filled with
        stage times / cache hits for this sweep.
    policy:
        Full :class:`~repro.runtime.pool.RunPolicy` override (timeout,
        retries, chunking); when given, ``jobs`` is ignored.
    progress / should_cancel:
        Engine hooks forwarded to :func:`repro.runtime.pool.run_jobs`
        (per-sweep completion callback / cooperative cancellation).
    """
    space = space if space is not None else DesignSpace()
    # The sweep as a three-stage DAG on the shared campaign runner:
    # expand the grid, shard the solves through the engine, filter.
    # ``len(space)`` counts exactly the configs the map stage yields,
    # so the solve stage's weight (the progress denominator) is known
    # before any simulation runs.
    stages = [
        Stage(
            name="map",
            executor="dse.map",
            params={
                "config": base_config, "network": network, "space": space,
            },
        ),
        Stage(
            name="solve",
            executor="dse.solve",
            depends_on=("map",),
            weight=len(space),
        ),
        Stage(
            name="report",
            executor="dse.report",
            params={"max_error_rate": max_error_rate},
            depends_on=("map", "solve"),
        ),
    ]
    runner = DagRunner(
        stages,
        cache=cache,
        metrics=metrics,
        policy=policy if policy is not None else RunPolicy(jobs=jobs),
        progress=progress,
        should_cancel=should_cancel,
    )
    with obs_trace.span(
        "dse.explore", points=len(space), network=network.name,
    ):
        return runner.run()["report"]


@register_executor("dse.map")
def _stage_map(stage: Stage, context: StageContext) -> Dict[str, Any]:
    """Expand the design grid into configs and engine job specs."""
    space: DesignSpace = stage.params["space"]
    network: Network = stage.params["network"]
    configs = list(space.configs(stage.params["config"]))
    fingerprint = network_fingerprint(network)
    return {
        "configs": configs,
        "specs": [
            simulation_spec(config, network, fingerprint)
            for config in configs
        ],
    }


@register_executor("dse.solve")
def _stage_solve(
    stage: Stage, context: StageContext
) -> List[AcceleratorSummary]:
    """Shard the point simulations through the job engine."""
    return run_jobs(
        _evaluate_point,
        context.upstream["map"]["specs"],
        policy=context.policy,
        cache=context.cache,
        encode=_encode_summary,
        decode=_decode_summary,
        metrics=context.metrics,
        progress=context.progress,
        should_cancel=context.should_cancel,
        batch_worker=_evaluate_points_batch,
    )


@register_executor("dse.report")
def _stage_report(stage: Stage, context: StageContext) -> List[DesignPoint]:
    """Pair configs with summaries, dropping constraint violations."""
    max_error_rate = stage.params["max_error_rate"]
    configs = context.upstream["map"]["configs"]
    summaries = context.upstream["solve"]
    points: List[DesignPoint] = []
    for config, summary in zip(configs, summaries):
        if max_error_rate is not None and (
            summary.worst_error_rate > max_error_rate
        ):
            continue
        points.append(
            DesignPoint(
                crossbar_size=config.crossbar_size,
                parallelism_degree=config.parallelism_degree,
                interconnect_tech=config.interconnect_tech,
                summary=summary,
            )
        )
    return points


def optimal(points: Sequence[DesignPoint], metric: str) -> DesignPoint:
    """The best point for one optimization target (smallest value).

    Raises
    ------
    ExplorationError
        If no points remain (e.g. the constraint excluded everything).
    """
    if not points:
        raise ExplorationError(
            "no design satisfies the constraints; relax the error bound "
            "or widen the design space"
        )
    return min(points, key=lambda p: p.metric(metric))


def optimal_table(
    points: Sequence[DesignPoint],
    metrics: Iterable[str] = OPTIMIZATION_METRICS,
) -> Dict[str, DesignPoint]:
    """Optimal design per target — the column set of Tables IV / VI."""
    return {metric: optimal(points, metric) for metric in metrics}


def optimal_with_secondary(
    points: Sequence[DesignPoint],
    primary: str,
    secondary: str,
    tolerance: float = 0.0,
) -> DesignPoint:
    """Best point by ``primary``, ties broken by ``secondary``.

    The paper's Sec. VII.C.1 observation: "changing digital modules does
    not impact the computing accuracy of memristor crossbars, [so] the
    user can set a secondary optimization target for accuracy
    optimization" — many accuracy-equal designs exist and a secondary
    target picks among them.  ``tolerance`` widens the tie band to a
    relative margin around the primary optimum.
    """
    if tolerance < 0:
        raise ExplorationError("tolerance must be non-negative")
    best = optimal(points, primary)
    best_value = best.metric(primary)
    band = best_value * (1.0 + tolerance) + (
        0.0 if best_value else tolerance
    )
    candidates = [p for p in points if p.metric(primary) <= band]
    return min(candidates, key=lambda p: p.metric(secondary))


def weighted_optimal(
    points: Sequence[DesignPoint],
    weights: Dict[str, float],
) -> DesignPoint:
    """Scalarised multi-objective optimum.

    Each metric is min-max normalised over ``points`` (so weights are
    unit-free) and combined as a weighted sum; the smallest combined
    score wins.  Weights must be non-negative with at least one
    positive entry; valid metric names are ``area``, ``energy``,
    ``latency``, ``power``, ``accuracy`` (error rate).
    """
    if not points:
        raise ExplorationError("weighted optimisation needs points")
    if not weights:
        raise ExplorationError("at least one weight is required")
    if any(w < 0 for w in weights.values()):
        raise ExplorationError("weights must be non-negative")
    if all(w == 0 for w in weights.values()):
        raise ExplorationError("at least one weight must be positive")

    spans = {}
    for metric in weights:
        values = [p.metric(metric) for p in points]  # validates names
        low, high = min(values), max(values)
        spans[metric] = (low, (high - low) or 1.0)

    def score(point: DesignPoint) -> float:
        total = 0.0
        for metric, weight in weights.items():
            low, span = spans[metric]
            total += weight * (point.metric(metric) - low) / span
        return total

    return min(points, key=score)


def pentagon_factors(
    selected: Sequence[DesignPoint],
) -> List[Dict[str, float]]:
    """Fig. 9's normalized five-axis factors for the given designs.

    Reciprocal area, energy efficiency (1/energy), reciprocal power,
    and speed (1/latency) are normalized by the maximum over
    ``selected``; accuracy is ``1 - error`` (already in [0, 1]).
    """
    if not selected:
        raise ExplorationError("pentagon needs at least one design")

    def reciprocal(value: float) -> float:
        return float("inf") if value == 0 else 1.0 / value

    raw = [
        {
            "reciprocal_area": reciprocal(p.area),
            "energy_efficiency": reciprocal(p.energy),
            "reciprocal_power": reciprocal(p.power),
            "speed": reciprocal(p.latency),
            "accuracy": 1.0 - p.error_rate,
        }
        for p in selected
    ]
    result = []
    axes = ("reciprocal_area", "energy_efficiency", "reciprocal_power",
            "speed")
    maxima = {axis: max(entry[axis] for entry in raw) for axis in axes}
    for entry in raw:
        normalized = {
            axis: (entry[axis] / maxima[axis] if maxima[axis] > 0 else 0.0)
            for axis in axes
        }
        normalized["accuracy"] = entry["accuracy"]
        result.append(normalized)
    return result
