"""Serialisation of design-space exploration results.

Exploration runs produce hundreds of :class:`~repro.dse.explorer.
DesignPoint` records; these helpers persist them for plotting and
post-processing outside the simulator:

* :func:`points_to_rows` — flat dict rows (one per design point);
* :func:`to_csv` / :func:`to_json` — file export;
* :func:`from_json` — reload a previous run for re-ranking without
  re-simulating (the summaries round-trip exactly; re-ranking uses the
  same metric accessors).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.arch.accelerator import AcceleratorSummary
from repro.dse.explorer import DesignPoint
from repro.errors import ExplorationError

_SUMMARY_FIELDS = (
    "area",
    "energy_per_sample",
    "sample_latency",
    "compute_latency",
    "pipeline_cycle",
    "power",
    "worst_error_rate",
    "average_error_rate",
)

_POINT_FIELDS = ("crossbar_size", "parallelism_degree", "interconnect_tech")


def points_to_rows(points: Sequence[DesignPoint]) -> List[Dict[str, float]]:
    """Flatten design points into plain dict rows."""
    rows = []
    for point in points:
        row: Dict[str, float] = {
            field: getattr(point, field) for field in _POINT_FIELDS
        }
        for field in _SUMMARY_FIELDS:
            row[field] = getattr(point.summary, field)
        rows.append(row)
    return rows


def to_csv(points: Sequence[DesignPoint], path: Union[str, Path]) -> Path:
    """Write design points to a CSV file; returns the path."""
    if not points:
        raise ExplorationError("nothing to export")
    path = Path(path)
    rows = points_to_rows(points)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
    return path


def to_json(points: Sequence[DesignPoint], path: Union[str, Path]) -> Path:
    """Write design points to a JSON file; returns the path."""
    if not points:
        raise ExplorationError("nothing to export")
    path = Path(path)
    path.write_text(
        json.dumps(points_to_rows(points), indent=2), encoding="utf-8"
    )
    return path


def from_json(path: Union[str, Path]) -> List[DesignPoint]:
    """Reload design points exported by :func:`to_json`."""
    rows = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(rows, list):
        raise ExplorationError("expected a JSON list of design points")
    points = []
    for index, row in enumerate(rows):
        try:
            summary = AcceleratorSummary(
                **{field: float(row[field]) for field in _SUMMARY_FIELDS}
            )
            points.append(
                DesignPoint(
                    crossbar_size=int(row["crossbar_size"]),
                    parallelism_degree=int(row["parallelism_degree"]),
                    interconnect_tech=int(row["interconnect_tech"]),
                    summary=summary,
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExplorationError(
                f"malformed design-point record at index {index}: {exc}"
            ) from exc
    return points
