"""Design-space exploration (Sec. VII.C/D of the paper).

MNSIM's speed makes exhaustive traversal practical ("All the 10,220
designs are simulated within 4 seconds"); this package implements that
flow:

* :mod:`~repro.dse.space` — the parameter grid (crossbar size,
  parallelism degree, interconnect node) with validity filtering;
* :mod:`~repro.dse.explorer` — traversal, error-rate constraints,
  per-metric optima, and the normalized pentagon factors of Fig. 9;
* :mod:`~repro.dse.tradeoff` — the trade-off sweeps behind Table V and
  Figs. 7/8 (error/area/energy vs crossbar size; area/latency vs
  parallelism degree; Pareto frontier and knee detection).
"""

from repro.dse.space import DesignSpace
from repro.dse.explorer import (
    DesignPoint,
    OPTIMIZATION_METRICS,
    explore,
    optimal,
    optimal_table,
    optimal_with_secondary,
    pentagon_factors,
    weighted_optimal,
)
from repro.dse.autocomplete import CompletedDesign, suggest_designs
from repro.dse.constraints import ConstraintSet
from repro.dse.heterogeneous import (
    HeterogeneousDesign,
    optimise_heterogeneous,
    uniform_best,
)
from repro.dse.export import from_json, points_to_rows, to_csv, to_json
from repro.dse.tradeoff import (
    inflection_point,
    pareto_frontier,
    parallelism_sweep,
    size_tradeoff,
)

__all__ = [
    "DesignSpace",
    "DesignPoint",
    "OPTIMIZATION_METRICS",
    "explore",
    "optimal",
    "optimal_table",
    "optimal_with_secondary",
    "pentagon_factors",
    "parallelism_sweep",
    "size_tradeoff",
    "pareto_frontier",
    "inflection_point",
    "ConstraintSet",
    "points_to_rows",
    "to_csv",
    "to_json",
    "from_json",
    "HeterogeneousDesign",
    "optimise_heterogeneous",
    "uniform_best",
    "CompletedDesign",
    "suggest_designs",
    "weighted_optimal",
]
