"""Strict JSON parsing: duplicate keys are validation errors.

``json.loads`` silently keeps the *last* occurrence of a repeated
object key, so a document like ``{"numRuns": 1, "numRuns": 100}``
sails through "strict" schema validation with a surprise value — the
validator never sees the first binding.  Both service payloads and
campaign files are contracts where that silence is a bug: the whole
validation-first stance (DESIGN.md S21) is that a document the server
does not fully understand must never run.

:func:`loads_strict` closes the hole.  Objects are parsed into an
intermediate pairs form (``object_pairs_hook``) and then resolved in a
single walk that tracks the dotted path of every object, so a repeated
key raises a path-addressed
:class:`~repro.errors.ValidationError` — ``execution.numRuns:
duplicate object key`` — instead of silently shadowing the earlier
binding.  Everything else (types, ordering, numbers) is exactly
``json.loads``; well-formed documents round-trip unchanged, including
key order, which campaign ``combination`` sweeps rely on.
"""

from __future__ import annotations

import json
from typing import Any, List, Tuple

from repro.errors import ValidationError

__all__ = ["loads_strict"]


class _Pairs:
    """Marker wrapper for an object's raw key/value pairs."""

    __slots__ = ("pairs",)

    def __init__(self, pairs: List[Tuple[str, Any]]) -> None:
        self.pairs = pairs


def _resolve(node: Any, path: str) -> Any:
    if isinstance(node, _Pairs):
        out = {}
        for key, value in node.pairs:
            where = f"{path}.{key}" if path else str(key)
            if key in out:
                raise ValidationError(
                    "duplicate object key", path=where, value=key,
                )
            out[key] = _resolve(value, where)
        return out
    if isinstance(node, list):
        return [
            _resolve(item, f"{path}[{index}]")
            for index, item in enumerate(node)
        ]
    return node


def loads_strict(text: str) -> Any:
    """Parse JSON, rejecting duplicate object keys with a field path.

    Raises
    ------
    json.JSONDecodeError
        For malformed JSON (same as :func:`json.loads`).
    ValidationError
        For a repeated key anywhere in the document, addressed by its
        dotted path (e.g. ``settings.regular.faults.seed``).
    """
    return _resolve(json.loads(text, object_pairs_hook=_Pairs), "")
