"""Simulation configuration: the paper's Table I as a validated dataclass.

Users drive MNSIM with a configuration that selects design parameters at the
three hierarchy levels (Accelerator / Bank / Unit).  :class:`SimConfig`
mirrors the paper's configuration list, adds the data-precision knobs used in
the case studies (weight/signal bit widths), and performs eager validation so
that errors surface before any simulation starts.

A minimal INI-style configuration file is also supported via
:func:`SimConfig.from_file` (``key = value`` lines; ``#`` comments; values in
the same spellings as Table I, e.g. ``Crossbar_Size = 128``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from repro.errors import ConfigError, TechnologyError, ValidationError
from repro.tech import (
    CellType,
    get_cmos_node,
    get_interconnect_node,
    get_memristor_model,
)
from repro.tech.memristor import MemristorModel

# Algorithm families from Sec. II.B; "ANN" is the paper's default spelling
# for fully-connected deep networks and is normalised to "DNN".
NETWORK_TYPES = ("DNN", "SNN", "CNN")

_POWERS_OF_TWO = tuple(2**i for i in range(2, 11))  # 4 .. 1024


@dataclass(frozen=True)
class SimConfig:
    """All user-visible design parameters (paper Table I + precision knobs).

    Attributes mirror Table I (level in parentheses):

    * ``network_depth`` (Accelerator) — number of neuromorphic layers; usually
      inferred from the network description, so ``None`` is allowed here.
    * ``interface_number`` (Accelerator) — (input, output) bus line counts.
    * ``network_type`` (Bank) — ``DNN`` / ``SNN`` / ``CNN``.
    * ``crossbar_size`` (Bank) — rows = columns of each memristor crossbar.
    * ``pooling_size`` (Bank) — pooling window ``k`` for CNN banks.
    * ``spacial_size`` (Bank) — conv-kernel spatial size (1 for FC layers);
      the paper's (sic) spelling is kept for config-file compatibility.
    * ``weight_polarity`` (Unit) — 1 for unsigned weights, 2 for signed
      (two crossbars or paired columns per Sec. III.C.1).
    * ``cmos_tech`` (Unit) — CMOS node in nm.
    * ``cell_type`` (Unit) — ``1T1R`` or ``0T1R``.
    * ``memristor_model`` (Unit) — device model name (``RRAM``/``PCM``/...).
    * ``interconnect_tech`` (Unit) — wire node in nm.
    * ``parallelism_degree`` (Unit) — read circuits per crossbar; 0 means
      fully parallel (one read circuit per used column).
    * ``resistance_range`` (Unit) — (R_min, R_max) override in ohms.

    Precision knobs used by the evaluation section:

    * ``weight_bits`` — algorithm weight precision (signed total bits).
    * ``signal_bits`` — input/output signal precision.
    * ``device_sigma`` — optional device-variation override (0..0.3).
    """

    network_depth: Optional[int] = None
    interface_number: Tuple[int, int] = (128, 128)
    network_type: str = "DNN"
    crossbar_size: int = 128
    pooling_size: int = 2
    spacial_size: int = 1
    weight_polarity: int = 2
    cmos_tech: int = 90
    cell_type: CellType = CellType.ONE_T_ONE_R
    memristor_model: str = "RRAM"
    interconnect_tech: int = 28
    parallelism_degree: int = 0
    resistance_range: Optional[Tuple[float, float]] = None
    weight_bits: int = 8
    signal_bits: int = 8
    device_sigma: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "network_type", _normalize_network_type(self.network_type)
        )
        if isinstance(self.cell_type, str):
            object.__setattr__(
                self, "cell_type", CellType.from_string(self.cell_type)
            )
        object.__setattr__(
            self, "interface_number", _as_pair(self.interface_number, int)
        )
        if self.resistance_range is not None:
            object.__setattr__(
                self,
                "resistance_range",
                _as_pair(self.resistance_range, float),
            )
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        # Field-addressed errors: the CLI and the HTTP service both
        # surface the same structured ValidationError for bad fields.
        if self.network_depth is not None and self.network_depth < 1:
            raise ValidationError(
                "must be >= 1 when given",
                path="network_depth", value=self.network_depth,
            )
        if min(self.interface_number) < 1:
            raise ValidationError(
                "entries must be >= 1",
                path="interface_number", value=list(self.interface_number),
            )
        if self.crossbar_size < 2:
            raise ValidationError(
                "must be >= 2",
                path="crossbar_size", value=self.crossbar_size,
            )
        if self.crossbar_size & (self.crossbar_size - 1):
            raise ValidationError(
                "must be a power of two",
                path="crossbar_size", value=self.crossbar_size,
            )
        if self.pooling_size < 1:
            raise ValidationError(
                "must be >= 1", path="pooling_size", value=self.pooling_size,
            )
        if self.spacial_size < 1:
            raise ValidationError(
                "must be >= 1", path="spacial_size", value=self.spacial_size,
            )
        if self.weight_polarity not in (1, 2):
            raise ValidationError(
                "must be 1 (unsigned) or 2 (signed)",
                path="weight_polarity", value=self.weight_polarity,
                allowed=(1, 2),
            )
        if self.parallelism_degree < 0:
            raise ValidationError(
                "must be >= 0 (0 = all parallel)",
                path="parallelism_degree", value=self.parallelism_degree,
            )
        if self.parallelism_degree > self.crossbar_size:
            raise ValidationError(
                f"cannot exceed crossbar_size ({self.crossbar_size})",
                path="parallelism_degree", value=self.parallelism_degree,
            )
        if self.weight_bits < 1:
            raise ValidationError(
                "must be >= 1", path="weight_bits", value=self.weight_bits,
            )
        if self.signal_bits < 1:
            raise ValidationError(
                "must be >= 1", path="signal_bits", value=self.signal_bits,
            )
        if self.resistance_range is not None:
            low, high = self.resistance_range
            if not 0 < low < high:
                raise ValidationError(
                    "must satisfy 0 < min < max",
                    path="resistance_range",
                    value=list(self.resistance_range),
                )
        if self.device_sigma is not None and not 0 <= self.device_sigma <= 0.3:
            raise ValidationError(
                "must lie in [0, 0.3]",
                path="device_sigma", value=self.device_sigma,
            )
        # Eagerly resolve technology lookups so typos fail here, not later.
        _TECH_FIELDS = (
            ("cmos_tech", get_cmos_node, self.cmos_tech),
            ("interconnect_tech", get_interconnect_node,
             self.interconnect_tech),
            ("memristor_model", get_memristor_model, self.memristor_model),
        )
        for field_name, lookup, value in _TECH_FIELDS:
            try:
                lookup(value)
            except TechnologyError as exc:
                raise ValidationError(
                    str(exc), path=field_name, value=value,
                ) from exc

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def device(self) -> MemristorModel:
        """The resolved memristor model, with range/sigma overrides applied."""
        model = get_memristor_model(self.memristor_model)
        if self.resistance_range is not None:
            model = model.with_overrides(
                r_min=self.resistance_range[0],
                r_max=self.resistance_range[1],
            )
        if self.device_sigma is not None:
            model = model.with_sigma(self.device_sigma)
        return model

    @property
    def cmos(self):
        """The resolved :class:`~repro.tech.cmos.CmosNode`."""
        return get_cmos_node(self.cmos_tech)

    @property
    def wire(self):
        """The resolved :class:`~repro.tech.interconnect.InterconnectNode`."""
        return get_interconnect_node(self.interconnect_tech)

    @property
    def cells_per_weight(self) -> int:
        """Crossbars (bit slices) per weight from device precision.

        A ``weight_bits``-bit weight (one bit of which is sign when
        ``weight_polarity == 2``) is split across
        ``ceil(magnitude_bits / device_bits)`` cells, and the polarity
        doubles the cell count for the differential mapping.
        """
        magnitude_bits = self.weight_bits - (1 if self.weight_polarity == 2 else 0)
        magnitude_bits = max(magnitude_bits, 1)
        slices = math.ceil(magnitude_bits / self.device.precision_bits)
        return slices * self.weight_polarity

    @property
    def bit_slices(self) -> int:
        """Number of bit-sliced crossbar copies (excluding polarity)."""
        return self.cells_per_weight // self.weight_polarity

    @property
    def read_levels(self) -> int:
        """Quantization levels ``k`` of the read circuit (Sec. VI.C)."""
        return 2**self.signal_bits

    def effective_parallelism(self, used_columns: Optional[int] = None) -> int:
        """Read circuits active per crossbar for ``used_columns`` columns.

        ``parallelism_degree == 0`` means fully parallel: one read circuit
        per used column.  Otherwise the configured degree is clamped to the
        number of used columns.
        """
        columns = self.crossbar_size if used_columns is None else used_columns
        if columns < 1:
            raise ConfigError("used_columns must be >= 1")
        if self.parallelism_degree == 0:
            return columns
        return min(self.parallelism_degree, columns)

    # ------------------------------------------------------------------
    def replace(self, **kwargs) -> "SimConfig":
        """Return a copy with the given fields overridden."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Deterministic serialization (cache keys depend on this)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe mapping of every field, keys in sorted order.

        The ordering and value spellings are *stable by contract*:
        :mod:`repro.runtime` derives cache keys from this serialization,
        so any change here invalidates every cached result (bump
        :data:`repro.runtime.jobs.SCHEMA_VERSION` when that happens).
        """
        out = {}
        for name in sorted(self.__dataclass_fields__):
            value = getattr(self, name)
            if isinstance(value, CellType):
                value = value.value
            elif isinstance(value, tuple):
                value = list(value)
            out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimConfig":
        """Rebuild a configuration from a :meth:`to_dict` mapping."""
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValidationError(
                f"unknown configuration fields {sorted(unknown)}",
                path=sorted(unknown)[0],
                allowed=sorted(cls.__dataclass_fields__),
            )
        values = {
            name: tuple(value) if isinstance(value, list) else value
            for name, value in data.items()
        }
        return cls(**values)

    # ------------------------------------------------------------------
    # File I/O
    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "SimConfig":
        """Parse an INI-style configuration file into a :class:`SimConfig`.

        Lines are ``Key = value``; keys use the paper's Table I spellings
        (case-insensitive, underscores optional); ``#`` and ``;`` start
        comments; bracketed section headers are ignored.
        """
        text = Path(path).read_text(encoding="utf-8")
        return cls.from_string(text)

    @classmethod
    def from_string(cls, text: str) -> "SimConfig":
        """Parse configuration text (see :meth:`from_file`)."""
        values = {}
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].split(";", 1)[0].strip()
            if not line or (line.startswith("[") and line.endswith("]")):
                continue
            if "=" not in line:
                raise ConfigError(f"line {lineno}: expected 'key = value': {raw!r}")
            key, value = (part.strip() for part in line.split("=", 1))
            field_name = _KEY_ALIASES.get(key.lower().replace("_", ""))
            if field_name is None:
                raise ConfigError(f"line {lineno}: unknown configuration key {key!r}")
            values[field_name] = _parse_value(field_name, value)
        return cls(**values)


# Map normalised config-file keys (lowercase, underscores stripped) to
# dataclass field names.
_KEY_ALIASES = {
    "networkdepth": "network_depth",
    "interfacenumber": "interface_number",
    "networktype": "network_type",
    "crossbarsize": "crossbar_size",
    "poolingsize": "pooling_size",
    "spacialsize": "spacial_size",
    "spatialsize": "spacial_size",
    "weightpolarity": "weight_polarity",
    "cmostech": "cmos_tech",
    "celltype": "cell_type",
    "memristormodel": "memristor_model",
    "interconnecttech": "interconnect_tech",
    "parallelismdegree": "parallelism_degree",
    "resistancerange": "resistance_range",
    "weightbits": "weight_bits",
    "signalbits": "signal_bits",
    "devicesigma": "device_sigma",
}

_INT_FIELDS = {
    "network_depth",
    "crossbar_size",
    "pooling_size",
    "spacial_size",
    "weight_polarity",
    "parallelism_degree",
    "weight_bits",
    "signal_bits",
}


def _parse_value(field_name: str, raw: str):
    raw = raw.strip()
    if field_name in ("interface_number", "resistance_range"):
        return _parse_pair(raw)
    if field_name in _INT_FIELDS:
        return int(_parse_number(raw))
    if field_name in ("cmos_tech", "interconnect_tech"):
        return int(_parse_number(raw.lower().removesuffix("nm")))
    if field_name == "device_sigma":
        return float(raw)
    return raw


def _parse_number(raw: str) -> float:
    """Parse a number allowing SI suffixes ``k``/``M`` (e.g. ``500k``)."""
    raw = raw.strip()
    scale = 1.0
    if raw and raw[-1] in "kK":
        scale, raw = 1e3, raw[:-1]
    elif raw and raw[-1] == "M":
        scale, raw = 1e6, raw[:-1]
    try:
        return float(raw) * scale
    except ValueError:
        raise ConfigError(f"cannot parse number {raw!r}") from None


def _parse_pair(raw: str) -> Tuple[float, float]:
    cleaned = raw.strip().strip("[]()")
    parts = [p for chunk in cleaned.split(",") for p in chunk.split()]
    parts = [p for p in parts if p]
    if len(parts) != 2:
        raise ConfigError(f"expected a pair like [a, b], got {raw!r}")
    return (_parse_number(parts[0]), _parse_number(parts[1]))


def _as_pair(value: Sequence, cast) -> Tuple:
    try:
        first, second = value
    except (TypeError, ValueError):
        raise ConfigError(f"expected a pair, got {value!r}") from None
    return (cast(first), cast(second))


def _normalize_network_type(text: str) -> str:
    normalized = str(text).strip().upper()
    if normalized == "ANN":  # Table I default spelling
        normalized = "DNN"
    if normalized not in NETWORK_TYPES:
        raise ValidationError(
            "unknown network type",
            path="network_type", value=text,
            allowed=NETWORK_TYPES + ("ANN",),
        )
    return normalized
