"""Mapping a layer's weight matrix onto crossbar blocks (Sec. III.B.1).

A weight matrix of ``out_features x in_features`` is tiled into
``col_blocks x row_blocks`` sub-matrices of at most ``Crossbar_Size`` on a
side (Eq. 5); each tile, for each bit slice, becomes one computation
unit (whose one or two physical crossbars implement the configured
weight polarity).  The mapping records the exact active region of every
block so edge tiles are not over-charged for energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.config import SimConfig
from repro.errors import MappingError
from repro.nn.layers import LayerSpec


@dataclass(frozen=True)
class BlockShape:
    """Active region of one crossbar tile."""

    rows: int
    cols: int
    count: int  # identical tiles with this shape


@dataclass(frozen=True)
class LayerMapping:
    """How one layer's weights spread over computation units.

    Attributes
    ----------
    in_features, out_features:
        Weight-matrix dimensions (inputs map to crossbar rows).
    crossbar_size:
        Physical crossbar side length.
    row_blocks, col_blocks:
        Tile grid: ``ceil(in/size) x ceil(out/size)``.
    slices:
        Bit-sliced crossbar copies per tile (device precision driven).
    polarity:
        1 (unsigned) or 2 (differential pair per unit).
    """

    in_features: int
    out_features: int
    crossbar_size: int
    row_blocks: int
    col_blocks: int
    slices: int
    polarity: int

    @classmethod
    def for_layer(cls, layer: LayerSpec, config: SimConfig) -> "LayerMapping":
        """Build the mapping of ``layer`` under ``config``."""
        out_features, in_features = layer.weight_shape
        size = config.crossbar_size
        if in_features < 1 or out_features < 1:
            raise MappingError("layer has an empty weight matrix")
        return cls(
            in_features=in_features,
            out_features=out_features,
            crossbar_size=size,
            row_blocks=math.ceil(in_features / size),
            col_blocks=math.ceil(out_features / size),
            slices=config.bit_slices,
            polarity=config.weight_polarity,
        )

    # ------------------------------------------------------------------
    @property
    def units(self) -> int:
        """Computation units for this layer (tiles x bit slices)."""
        return self.row_blocks * self.col_blocks * self.slices

    @property
    def crossbars(self) -> int:
        """Physical crossbars (units x polarity)."""
        return self.units * self.polarity

    @property
    def cells(self) -> int:
        """Total memristor cells allocated (full arrays)."""
        return self.crossbars * self.crossbar_size**2

    @property
    def utilization(self) -> float:
        """Fraction of allocated cell positions holding real weights."""
        used = self.in_features * self.out_features
        allocated = (
            self.row_blocks * self.col_blocks * self.crossbar_size**2
        )
        return used / allocated

    def block_rows(self, row_block: int) -> int:
        """Active rows of tile-row ``row_block`` (0-based)."""
        if not 0 <= row_block < self.row_blocks:
            raise MappingError(f"row block {row_block} out of range")
        remaining = self.in_features - row_block * self.crossbar_size
        return min(self.crossbar_size, remaining)

    def block_cols(self, col_block: int) -> int:
        """Active columns of tile-column ``col_block`` (0-based)."""
        if not 0 <= col_block < self.col_blocks:
            raise MappingError(f"col block {col_block} out of range")
        remaining = self.out_features - col_block * self.crossbar_size
        return min(self.crossbar_size, remaining)

    def block_shapes(self) -> List[BlockShape]:
        """Distinct tile shapes and their multiplicities (per slice).

        At most four shapes exist: interior, right edge, bottom edge,
        corner — enumerating shapes instead of tiles keeps large-layer
        simulation O(1) in the tile count.
        """
        full_r = self.in_features // self.crossbar_size
        full_c = self.out_features // self.crossbar_size
        edge_r = self.in_features - full_r * self.crossbar_size
        edge_c = self.out_features - full_c * self.crossbar_size
        size = self.crossbar_size
        shapes = []
        if full_r and full_c:
            shapes.append(BlockShape(size, size, full_r * full_c))
        if edge_r and full_c:
            shapes.append(BlockShape(edge_r, size, full_c))
        if full_r and edge_c:
            shapes.append(BlockShape(size, edge_c, full_r))
        if edge_r and edge_c:
            shapes.append(BlockShape(edge_r, edge_c, 1))
        return shapes

    def iter_blocks(self) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(row_block, col_block, rows, cols)`` for every tile."""
        for i in range(self.row_blocks):
            for j in range(self.col_blocks):
                yield (i, j, self.block_rows(i), self.block_cols(j))

    @property
    def typical_active_cols(self) -> int:
        """Active columns of the dominant (interior or widest) tile."""
        return min(self.crossbar_size, self.out_features)

    @property
    def typical_active_rows(self) -> int:
        """Active rows of the dominant (interior or tallest) tile."""
        return min(self.crossbar_size, self.in_features)
