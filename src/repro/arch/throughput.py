"""Throughput and bottleneck analysis of pipelined operation.

The paper reports per-sample latency and pipeline cycle time; a system
integrator also needs **samples per second** and an answer to "what do
I fix first?".  This module provides the roofline-style analysis:

* each bank sustains ``1 / pass_latency`` passes per second, i.e.
  ``1 / (passes_per_sample * pass_latency)`` samples per second;
* the input and output bus interfaces sustain
  ``1 / transfer_latency`` samples per second;
* the accelerator's pipelined throughput is the minimum — the
  **bottleneck stage** — and the analysis names it, quantifies the
  headroom of every other stage, and prices the fix (the extra
  parallelism or bus lines needed to move the bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.arch.accelerator import Accelerator
from repro.errors import ConfigError


@dataclass(frozen=True)
class StageRate:
    """Sustained sample rate of one pipeline stage."""

    name: str
    samples_per_second: float
    latency_per_sample: float

    def headroom(self, bottleneck_rate: float) -> float:
        """How much faster this stage is than the bottleneck (>= 1)."""
        if bottleneck_rate <= 0:
            return float("inf")
        return self.samples_per_second / bottleneck_rate


@dataclass(frozen=True)
class ThroughputReport:
    """Pipelined-throughput summary of one design."""

    stages: Tuple[StageRate, ...]
    bottleneck: StageRate

    @property
    def samples_per_second(self) -> float:
        """Steady-state pipelined sample rate."""
        return self.bottleneck.samples_per_second

    @property
    def is_bus_bound(self) -> bool:
        """True when an interface, not a bank, limits throughput."""
        return self.bottleneck.name.endswith("interface")

    def render(self) -> str:
        """Human-readable stage table, bottleneck first."""
        from repro.report import format_table

        ordered = sorted(
            self.stages, key=lambda s: s.samples_per_second
        )
        rows = [
            [
                stage.name,
                f"{stage.samples_per_second:,.0f}",
                f"{stage.headroom(self.samples_per_second):.2f}x",
                "<-- bottleneck" if stage == self.bottleneck else "",
            ]
            for stage in ordered
        ]
        return format_table(
            ["stage", "samples/s", "headroom", ""], rows
        )


def throughput_report(accelerator: Accelerator) -> ThroughputReport:
    """Analyse the pipelined throughput of an accelerator.

    Banks process samples concurrently (the inter-layer pipeline of
    Sec. VII.D); each bank's sample rate accounts for its per-sample
    pass count (a conv bank needs one pass per output position).
    """
    stages: List[StageRate] = []
    for index, bank in enumerate(accelerator.banks):
        per_sample = bank.sample_performance().latency
        if per_sample <= 0:
            raise ConfigError(f"bank {index} has zero latency")
        stages.append(
            StageRate(
                name=f"bank[{index}]",
                samples_per_second=1.0 / per_sample,
                latency_per_sample=per_sample,
            )
        )
    for name, interface in (
        ("input_interface", accelerator.input_interface),
        ("output_interface", accelerator.output_interface),
    ):
        latency = interface.performance().latency
        if latency > 0:
            stages.append(
                StageRate(
                    name=name,
                    samples_per_second=1.0 / latency,
                    latency_per_sample=latency,
                )
            )
    bottleneck = min(stages, key=lambda s: s.samples_per_second)
    return ThroughputReport(stages=tuple(stages), bottleneck=bottleneck)


def bus_lines_for_balance(accelerator: Accelerator) -> Tuple[int, int]:
    """Bus widths that stop the interfaces from bottlenecking.

    Returns ``(input_lines, output_lines)`` such that each interface
    matches the slowest *bank* — the cheapest fix when the analysis
    says the design is bus-bound.
    """
    import math

    from repro.circuits.interface import BUS_CYCLE_TIME

    report = throughput_report(accelerator)
    bank_rates = [
        stage.samples_per_second
        for stage in report.stages
        if stage.name.startswith("bank")
    ]
    slowest_bank = min(bank_rates)
    # Transfers are quantized in bus cycles: the interface sustains the
    # bank rate when its cycle count fits in the bank's sample period.
    cycle_budget = math.floor(
        1.0 / (slowest_bank * BUS_CYCLE_TIME)
    )
    results = []
    for interface, lines in (
        (accelerator.input_interface, accelerator.config.interface_number[0]),
        (accelerator.output_interface,
         accelerator.config.interface_number[1]),
    ):
        latency = interface.performance().latency
        rate = 1.0 / latency if latency > 0 else float("inf")
        if rate >= slowest_bank:
            results.append(lines)
        elif cycle_budget < 1:
            # Banks outrun even a single-cycle transfer; the widest
            # useful bus moves the whole sample in one cycle.
            results.append(interface.sample_bits)
        else:
            results.append(
                math.ceil(interface.sample_bits / cycle_budget)
            )
    return (results[0], results[1])
