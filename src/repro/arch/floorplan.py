"""First-order floorplanning: die geometry and global-wire overhead.

The hierarchical performance model sums module areas; a physical chip
also pays for arranging them.  This module adds the classic first-order
corrections:

* **bank placement** — banks arranged in a near-square grid of
  rectangular slots, with a configurable white-space factor (routing
  channels, power grid), giving die dimensions and utilisation;
* **global interconnect** — the cascade bank[i] -> bank[i+1] travels a
  Manhattan distance estimated from the placement; global-wire delay
  (repeated-wire, delay linear in length) and energy (C·V²/2 per bit)
  add to the accelerator's latency/energy.

Deliberately behavior-level, matching the rest of MNSIM: it bounds the
effect of physical design, it does not replace a placer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.arch.accelerator import Accelerator
from repro.errors import ConfigError
from repro.report import Performance

# White space (routing, power, clock) added over pure module area.
DEFAULT_WHITESPACE_FACTOR = 1.25

# Repeated global wire: delay per length and capacitance per length.
GLOBAL_WIRE_DELAY_PER_M = 60e-12 / 1e-3  # 60 ps/mm
GLOBAL_WIRE_CAP_PER_M = 0.25e-12 / 1e-3  # 0.25 pF/mm


@dataclass(frozen=True)
class Slot:
    """Placed rectangle of one bank."""

    index: int
    x: float
    y: float
    width: float
    height: float

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)


@dataclass(frozen=True)
class Floorplan:
    """Die geometry plus the global-wire overheads.

    Attributes
    ----------
    die_width, die_height:
        Die dimensions in metres.
    slots:
        One placed rectangle per bank, in cascade order.
    utilization:
        Module area / die area.
    wire_latency:
        Total bank-to-bank global wire delay along the cascade (s).
    wire_energy_per_sample:
        Global-wire switching energy for one sample (J).
    """

    die_width: float
    die_height: float
    slots: Tuple[Slot, ...]
    utilization: float
    wire_latency: float
    wire_energy_per_sample: float

    @property
    def die_area(self) -> float:
        """Die area in m^2."""
        return self.die_width * self.die_height

    @property
    def aspect_ratio(self) -> float:
        """Width / height of the die."""
        return self.die_width / self.die_height

    def total_wire_length(self) -> float:
        """Manhattan length of the cascade route (m)."""
        total = 0.0
        for a, b in zip(self.slots, self.slots[1:]):
            (ax, ay), (bx, by) = a.center, b.center
            total += abs(ax - bx) + abs(ay - by)
        return total


def floorplan(
    accelerator: Accelerator,
    whitespace_factor: float = DEFAULT_WHITESPACE_FACTOR,
    vdd: float = None,
) -> Floorplan:
    """Place the accelerator's banks and estimate wiring overheads.

    Banks are laid out left-to-right, top-to-bottom in a
    ``ceil(sqrt(n))``-column grid; each bank's slot is a square of its
    (whitespace-inflated) area; rows are as tall as their tallest slot.
    """
    if whitespace_factor < 1.0:
        raise ConfigError("whitespace_factor must be >= 1")
    banks = accelerator.banks
    if vdd is None:
        vdd = accelerator.config.cmos.vdd

    areas = [
        bank.sample_performance().area * whitespace_factor
        for bank in banks
    ]
    columns = max(1, math.ceil(math.sqrt(len(banks))))

    slots: List[Slot] = []
    x = y = 0.0
    die_width = 0.0
    row_height = 0.0
    for index, area in enumerate(areas):
        side = math.sqrt(area)
        if index % columns == 0 and index > 0:
            y += row_height
            x = 0.0
            row_height = 0.0
        slots.append(Slot(index=index, x=x, y=y, width=side, height=side))
        x += side
        die_width = max(die_width, x)
        row_height = max(row_height, side)
    die_height = y + row_height

    plan_area = die_width * die_height
    module_area = sum(
        bank.sample_performance().area for bank in banks
    )
    utilization = module_area / plan_area if plan_area else 0.0

    # Global wires along the cascade.
    wire_length = 0.0
    for a, b in zip(slots, slots[1:]):
        (ax, ay), (bx, by) = a.center, b.center
        wire_length += abs(ax - bx) + abs(ay - by)
    wire_latency = wire_length * GLOBAL_WIRE_DELAY_PER_M

    # Bits crossing each hop: the producing layer's output sample.
    bits_per_hop = [
        layer.output_values * accelerator.config.signal_bits
        for layer in list(accelerator.network.layers)[:-1]
    ]
    wire_energy = 0.0
    for (a, b), bits in zip(zip(slots, slots[1:]), bits_per_hop):
        (ax, ay), (bx, by) = a.center, b.center
        hop = abs(ax - bx) + abs(ay - by)
        capacitance = hop * GLOBAL_WIRE_CAP_PER_M
        # Half the bits toggle on average.
        wire_energy += 0.5 * bits * capacitance * vdd**2

    return Floorplan(
        die_width=die_width,
        die_height=die_height,
        slots=tuple(slots),
        utilization=utilization,
        wire_latency=wire_latency,
        wire_energy_per_sample=wire_energy,
    )


def with_floorplan_overheads(
    accelerator: Accelerator,
    whitespace_factor: float = DEFAULT_WHITESPACE_FACTOR,
) -> Performance:
    """The accelerator's sample performance including die white space
    and global-wire latency/energy."""
    plan = floorplan(accelerator, whitespace_factor)
    base = accelerator.sample_performance()
    return Performance(
        area=plan.die_area,
        dynamic_energy=base.dynamic_energy + plan.wire_energy_per_sample,
        leakage_power=base.leakage_power,
        latency=base.latency + plan.wire_latency,
    )
