"""The three-level accelerator hierarchy (Sec. III of the paper).

* Level 3 — :class:`~repro.arch.unit.ComputationUnit`: crossbar(s) +
  decoder + input peripheral (DACs) + read circuits, with optional second
  crossbar and subtractors for signed weights and a configurable
  parallelism degree.
* Level 2 — :class:`~repro.arch.bank.ComputationBank`: the computation
  units of one neuromorphic layer, the adder tree, shift-add bit-slice
  merge, pooling module + pooling line buffer, neuron module, and output
  buffer.
* Level 1 — :class:`~repro.arch.accelerator.Accelerator`: cascaded banks
  plus the I/O interfaces.

:mod:`~repro.arch.mapping` splits a layer's weight matrix over crossbars
(block partitioning, polarity, bit slicing); :mod:`~repro.arch.isa`
provides the WRITE / READ / COMPUTE instruction set and controller.
"""

from repro.arch.mapping import LayerMapping
from repro.arch.unit import ComputationUnit
from repro.arch.bank import ComputationBank
from repro.arch.accelerator import Accelerator, AcceleratorSummary
from repro.arch.isa import Controller, Instruction, Opcode, assemble
from repro.arch.breakdown import Breakdown, accelerator_breakdown
from repro.arch.pipeline import InnerPipeline, PipelineStage, bank_inner_pipeline
from repro.arch.training import TrainingCost, TrainingCostModel
from repro.arch.floorplan import Floorplan, floorplan, with_floorplan_overheads
from repro.arch.throughput import (
    StageRate,
    ThroughputReport,
    bus_lines_for_balance,
    throughput_report,
)
from repro.arch.compare import compare_designs, relative_to
from repro.arch.reliability import (
    ReliabilityReport,
    max_sample_rate_for_lifetime,
    reliability_report,
)
from repro.arch.programming import (
    ProgrammingCost,
    expected_pulses_per_cell,
    programming_cost,
    reloads_supported,
)

__all__ = [
    "LayerMapping",
    "ComputationUnit",
    "ComputationBank",
    "Accelerator",
    "AcceleratorSummary",
    "Controller",
    "Instruction",
    "Opcode",
    "assemble",
    "Breakdown",
    "accelerator_breakdown",
    "InnerPipeline",
    "PipelineStage",
    "bank_inner_pipeline",
    "TrainingCost",
    "TrainingCostModel",
    "Floorplan",
    "floorplan",
    "with_floorplan_overheads",
    "ProgrammingCost",
    "expected_pulses_per_cell",
    "programming_cost",
    "reloads_supported",
    "StageRate",
    "ThroughputReport",
    "throughput_report",
    "bus_lines_for_balance",
    "ReliabilityReport",
    "reliability_report",
    "max_sample_rate_for_lifetime",
    "compare_designs",
    "relative_to",
]
