"""On-chip training cost and endurance model (paper future work).

The paper's conclusion lists "on-chip Training method [51]" as future
work; inference-only operation avoids the memristor's write cost and
endurance limit (Sec. II.B.1), but training re-programs weights every
update.  This module estimates what that costs on a mapped design:

* per-update WRITE cost — programming pulses for the fraction of cells
  whose quantized level actually changes;
* per-epoch energy/latency — forward (COMPUTE) + weight-update (WRITE)
  per batch;
* **endurance horizon** — how many updates the device's write-endurance
  budget sustains, and whether a training run fits.

The model is deliberately behavior-level, matching the rest of MNSIM:
it consumes update counts and sparsity, not gradients.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.accelerator import Accelerator
from repro.errors import ConfigError
from repro.report import Performance

# Typical RRAM write endurance (programming cycles per cell); devices
# span 1e6..1e12, 1e9 is a common mid-range figure.
DEFAULT_WRITE_ENDURANCE = 1e9


@dataclass(frozen=True)
class TrainingCost:
    """Cost summary of one training run.

    Attributes
    ----------
    energy_per_update:
        Dynamic energy (J) of one weight update across the accelerator.
    latency_per_update:
        Worst-case latency (s) of one weight update.
    energy_per_epoch / latency_per_epoch:
        Forward passes + updates over one epoch.
    writes_per_cell_per_update:
        Mean programming pulses each cell receives per update.
    endurance_updates:
        Updates the endurance budget sustains.
    endurance_epochs:
        Epochs the endurance budget sustains.
    """

    energy_per_update: float
    latency_per_update: float
    energy_per_epoch: float
    latency_per_epoch: float
    writes_per_cell_per_update: float
    endurance_updates: float
    endurance_epochs: float

    def supports_run(self, epochs: int) -> bool:
        """Whether the device endurance outlives a run of ``epochs``."""
        return epochs <= self.endurance_epochs


class TrainingCostModel:
    """Estimate training cost and endurance for a mapped accelerator.

    Parameters
    ----------
    accelerator:
        The design under evaluation (weights already mapped).
    update_sparsity:
        Fraction of cells whose quantized level changes per update
        (0..1).  Gradient updates rarely move every level: 0.1 is a
        reasonable default for 8-bit training.
    write_endurance:
        Programming cycles each cell tolerates before failure.
    """

    def __init__(
        self,
        accelerator: Accelerator,
        update_sparsity: float = 0.1,
        write_endurance: float = DEFAULT_WRITE_ENDURANCE,
    ) -> None:
        if not 0.0 < update_sparsity <= 1.0:
            raise ConfigError("update_sparsity must lie in (0, 1]")
        if write_endurance <= 0:
            raise ConfigError("write_endurance must be positive")
        self.accelerator = accelerator
        self.update_sparsity = update_sparsity
        self.write_endurance = write_endurance

    # ------------------------------------------------------------------
    def update_performance(self) -> Performance:
        """Cost of one weight update (sparse re-programming pass).

        Scales the full WRITE cost by the update sparsity: unchanged
        cells are skipped (write-verify schemes make this the common
        implementation).
        """
        full_write = self.accelerator.write_performance()
        return Performance(
            area=full_write.area,
            dynamic_energy=full_write.dynamic_energy * self.update_sparsity,
            leakage_power=full_write.leakage_power,
            latency=full_write.latency * self.update_sparsity,
        )

    def epoch_performance(
        self, samples_per_epoch: int, batch_size: int
    ) -> Performance:
        """Cost of one epoch: forward passes + one update per batch.

        The backward pass reuses the crossbars in transposed mode; its
        cost is modelled as one extra forward-equivalent COMPUTE per
        sample (the standard 2x-forward approximation).
        """
        if samples_per_epoch < 1 or batch_size < 1:
            raise ConfigError("samples_per_epoch and batch_size must be >= 1")
        forward = self.accelerator.sample_performance()
        updates = math.ceil(samples_per_epoch / batch_size)
        compute = forward.repeat(2 * samples_per_epoch)  # fwd + bwd
        update = self.update_performance().repeat(updates)
        return Performance(
            area=forward.area,
            dynamic_energy=compute.dynamic_energy + update.dynamic_energy,
            leakage_power=forward.leakage_power,
            latency=compute.latency + update.latency,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self, samples_per_epoch: int, batch_size: int
    ) -> TrainingCost:
        """Full training-cost summary for the given epoch geometry."""
        update = self.update_performance()
        epoch = self.epoch_performance(samples_per_epoch, batch_size)
        updates_per_epoch = math.ceil(samples_per_epoch / batch_size)

        writes_per_cell = self.update_sparsity
        endurance_updates = self.write_endurance / writes_per_cell
        endurance_epochs = endurance_updates / updates_per_epoch

        return TrainingCost(
            energy_per_update=update.dynamic_energy,
            latency_per_update=update.latency,
            energy_per_epoch=epoch.dynamic_energy,
            latency_per_epoch=epoch.latency,
            writes_per_cell_per_update=writes_per_cell,
            endurance_updates=endurance_updates,
            endurance_epochs=endurance_epochs,
        )

    def inference_amortisation(self, samples: int) -> float:
        """Energy share of the one-time weight load over ``samples``
        inference passes — the Sec. II.B.1 fixed-weights argument in
        number form (tends to 0 as ``samples`` grows)."""
        if samples < 1:
            raise ConfigError("samples must be >= 1")
        write = self.accelerator.write_performance().dynamic_energy
        compute = (
            self.accelerator.sample_performance().dynamic_energy * samples
        )
        return write / (write + compute)
