"""Level-2 Computation Bank (Sec. III.B, Fig. 1(c)).

A bank processes one neuromorphic layer: its computation units (one per
weight tile per bit slice), the adder tree merging the row-block partial
sums (Eq. 5), the shift-add merger reassembling bit slices, the pooling
module and pooling line buffer (CNN), the non-linear neuron module, and
the output buffer (register file for FC layers, Eq.-6 line buffers for
cascaded conv layers).

Cost accounting per *compute pass* (one matrix-vector operation over the
whole tiled matrix — a fully-connected layer runs one pass per sample, a
conv layer one pass per output spatial position):

* all units operate in parallel (latency = slowest unit);
* the merge/neuron path evaluates once per produced output value;
* pass latency is the worst-case cascade unit -> tree -> shift-add ->
  (pooling) -> neuron -> buffer (Sec. IV.A's worst-case rule).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.arch.mapping import LayerMapping
from repro.arch.unit import ComputationUnit
from repro.circuits import (
    AdderTreeModule,
    LineBufferModule,
    MaxPoolingModule,
    ModuleRegistry,
    RegisterFileModule,
    ShiftAddModule,
    neuron_for_network_type,
    output_line_buffer_length,
)
from repro.config import SimConfig
from repro.errors import MappingError
from repro.nn.layers import ConvLayer, LayerSpec
from repro.report import Performance, ReportNode


class ComputationBank:
    """The hardware of one neuromorphic layer.

    Parameters
    ----------
    config:
        Design configuration.
    layer:
        The layer spec this bank implements.
    next_layer:
        The following layer, if any — sizes the Eq.-6 output line
        buffers for cascaded conv layers.
    registry:
        Module registry for customization.
    """

    def __init__(
        self,
        config: SimConfig,
        layer: LayerSpec,
        next_layer: Optional[LayerSpec] = None,
        registry: Optional[ModuleRegistry] = None,
    ) -> None:
        self.config = config
        self.layer = layer
        self.next_layer = next_layer
        self.registry = registry if registry is not None else ModuleRegistry()
        self.mapping = LayerMapping.for_layer(layer, config)

        cmos = config.cmos
        mapping = self.mapping

        # One representative unit per distinct tile shape; shape counts
        # keep the accounting exact without instantiating every tile.
        self._shaped_units: List[Tuple[ComputationUnit, int]] = []
        for shape in mapping.block_shapes():
            unit = ComputationUnit(
                config,
                active_rows=shape.rows,
                active_cols=shape.cols,
                registry=self.registry,
            )
            self._shaped_units.append((unit, shape.count * mapping.slices))
        if not self._shaped_units:
            raise MappingError("layer mapped to zero units")

        # Parallel output lanes: each tile-column delivers p digitised
        # columns per read cycle.
        reference_unit = self._shaped_units[0][0]
        self.lanes = mapping.col_blocks * reference_unit.parallelism

        build = self.registry.build
        self.adder_tree = build(
            "adder_tree", AdderTreeModule, cmos=cmos,
            inputs=max(mapping.row_blocks, 1), bits=config.signal_bits,
        )
        self.shift_add = build(
            "shift_add", ShiftAddModule, cmos=cmos,
            slices=mapping.slices,
            slice_bits=config.device.precision_bits,
            input_bits=self.adder_tree.output_bits
            if isinstance(self.adder_tree, AdderTreeModule)
            else config.signal_bits,
        )
        self.neuron = build(
            "neuron", neuron_for_network_type,
            network_type=config.network_type, cmos=cmos,
            input_bits=config.signal_bits, output_bits=config.signal_bits,
        )

        self.pooling = None
        self.pooling_buffer = None
        if isinstance(layer, ConvLayer) and layer.pooling > 1:
            self.pooling = build(
                "pooling", MaxPoolingModule, cmos=cmos,
                window=layer.pooling, bits=config.signal_bits,
            )
            buffer_length = output_line_buffer_length(
                layer.conv_output_size, layer.pooling, layer.pooling
            )
            self.pooling_buffer = build(
                "pooling_buffer", LineBufferModule, cmos=cmos,
                length=buffer_length, bits=config.signal_bits,
                lanes=layer.out_channels,
            )

        self.output_buffer = self._build_output_buffer()

    # ------------------------------------------------------------------
    def _build_output_buffer(self):
        cmos = self.config.cmos
        layer = self.layer
        if isinstance(layer, ConvLayer):
            if isinstance(self.next_layer, ConvLayer):
                length = output_line_buffer_length(
                    self.next_layer.input_size,
                    self.next_layer.kernel,
                    self.next_layer.kernel,
                )
            else:
                # Final conv layer (or conv -> FC): hold one output row.
                length = layer.output_size
            return self.registry.build(
                "output_buffer", LineBufferModule, cmos=cmos,
                length=length, bits=self.config.signal_bits,
                lanes=layer.out_channels,
            )
        return self.registry.build(
            "output_buffer", RegisterFileModule, cmos=cmos,
            words=layer.output_values, bits=self.config.signal_bits,
        )

    # ------------------------------------------------------------------
    @property
    def units(self) -> int:
        """Computation units in this bank."""
        return self.mapping.units

    @property
    def crossbars(self) -> int:
        """Physical crossbars in this bank."""
        return self.mapping.crossbars

    # ------------------------------------------------------------------
    def synapse_pass_performance(self) -> Performance:
        """All units computing one pass concurrently (synapse sub-bank)."""
        total = Performance()
        worst_latency = 0.0
        for unit, count in self._shaped_units:
            perf = unit.compute_performance()
            total = Performance(
                area=total.area + perf.area * count,
                dynamic_energy=total.dynamic_energy
                + perf.dynamic_energy * count,
                leakage_power=total.leakage_power
                + perf.leakage_power * count,
                latency=max(total.latency, perf.latency),
            )
            worst_latency = max(worst_latency, perf.latency)
        return Performance(
            area=total.area,
            dynamic_energy=total.dynamic_energy,
            leakage_power=total.leakage_power,
            latency=worst_latency,
        )

    def merge_pass_performance(self) -> Performance:
        """Adder tree + shift-add for one pass (neuron sub-bank, part 1).

        Hardware is replicated per lane; energy charges one tree
        evaluation per output per slice and one shift-add per output.
        """
        outputs = self.mapping.out_features
        tree = self.adder_tree.performance()
        shift = self.shift_add.performance()
        lanes = max(self.lanes, 1)
        return Performance(
            area=tree.area * lanes + shift.area * lanes,
            dynamic_energy=(
                tree.dynamic_energy * outputs * self.mapping.slices
                + shift.dynamic_energy * outputs
            ),
            leakage_power=(tree.leakage_power + shift.leakage_power) * lanes,
            latency=tree.latency + shift.latency,
        )

    def neuron_pass_performance(self) -> Performance:
        """Pooling (if any) + neuron + buffers for one pass."""
        outputs = self.mapping.out_features
        neuron = self.neuron.performance()
        lanes = max(min(self.lanes, outputs), 1)
        perf = Performance(
            area=neuron.area * lanes,
            dynamic_energy=neuron.dynamic_energy * outputs,
            leakage_power=neuron.leakage_power * lanes,
            latency=neuron.latency,
        )
        if self.pooling is not None:
            pool = self.pooling.performance()
            pool_buffer = self.pooling_buffer.performance()
            window = self.layer.pooling**2
            perf = Performance(
                area=perf.area + pool.area * lanes + pool_buffer.area,
                dynamic_energy=(
                    perf.dynamic_energy
                    + pool.dynamic_energy * outputs / window
                    + pool_buffer.dynamic_energy  # one shift per pass
                ),
                leakage_power=perf.leakage_power
                + pool.leakage_power * lanes
                + pool_buffer.leakage_power,
                latency=perf.latency + pool.latency + pool_buffer.latency,
            )
        out_buffer = self.output_buffer.performance()
        return Performance(
            area=perf.area + out_buffer.area,
            dynamic_energy=perf.dynamic_energy + out_buffer.dynamic_energy,
            leakage_power=perf.leakage_power + out_buffer.leakage_power,
            latency=perf.latency + out_buffer.latency,
        )

    # ------------------------------------------------------------------
    def pass_performance(self) -> Performance:
        """One compute pass: units -> merge -> pooling/neuron/buffer."""
        synapse = self.synapse_pass_performance()
        merge = self.merge_pass_performance()
        neuron = self.neuron_pass_performance()
        return synapse.serial(merge).serial(neuron)

    def sample_performance(self) -> Performance:
        """One full input sample: ``compute_passes`` sequential passes."""
        return self.pass_performance().repeat(self.layer.compute_passes)

    def write_performance(self) -> Performance:
        """Programming every unit of the bank once (weight loading)."""
        total = Performance()
        for unit, count in self._shaped_units:
            perf = unit.write_performance()
            total = Performance(
                area=total.area,
                dynamic_energy=total.dynamic_energy
                + perf.dynamic_energy * count,
                leakage_power=total.leakage_power,
                # Tiles share write drivers: program sequentially per
                # row block, in parallel across column blocks.
                latency=total.latency + perf.latency * math.ceil(
                    count / max(self.mapping.col_blocks, 1)
                ),
            )
        return total

    # ------------------------------------------------------------------
    def report(self, name: str = "bank") -> ReportNode:
        """Hierarchical report of one sample's processing."""
        node = ReportNode(
            name=name,
            performance=self.sample_performance(),
            notes=(
                f"{self.mapping.out_features}x{self.mapping.in_features} "
                f"weights, {self.units} units, {self.crossbars} crossbars, "
                f"{self.layer.compute_passes} passes"
            ),
        )
        node.add(
            ReportNode("synapse_sub_bank", self.synapse_pass_performance())
        )
        node.add(ReportNode("adder_tree+shift_add",
                            self.merge_pass_performance()))
        node.add(ReportNode("neuron+pooling+buffers",
                            self.neuron_pass_performance()))
        return node
