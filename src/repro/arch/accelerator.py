"""Level-1 Accelerator (Sec. III.A, Fig. 1(b)).

The accelerator cascades one computation bank per neuromorphic layer
between an input and an output interface module.  Two latency views are
reported, following the paper:

* ``sample_latency`` — one sample traversing every bank in sequence
  (plus interface transfer), the fully-sequential worst case;
* ``pipeline_cycle`` — the slowest bank's pass latency, the cycle time
  of the pipelined multi-layer operation the case studies report
  ("latency per pipeline cycle", Table VI).

Accuracy is evaluated with the per-layer effective crossbar fill via
:class:`~repro.accuracy.model.AccuracyModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.accuracy.model import AccuracyModel, LayerAccuracy
from repro.arch.bank import ComputationBank
from repro.circuits import IoInterfaceModule, ModuleRegistry
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.nn.networks import Network
from repro.report import Performance, ReportNode


@dataclass(frozen=True)
class AcceleratorSummary:
    """The metrics the paper's evaluation tables report.

    Attributes
    ----------
    area:
        Total silicon area (m^2).
    energy_per_sample:
        Dynamic energy per input sample (J).
    sample_latency:
        Sequential per-sample latency (s), bus interfaces included.
    compute_latency:
        Per-sample latency of the banks alone (the view the paper's
        case-study tables report).
    pipeline_cycle:
        Slowest bank's pass latency (s) — the pipelined cycle time.
    power:
        Average power over one sample (W), leakage included.
    worst_error_rate / average_error_rate:
        Final digital error rates from the accuracy model.
    """

    area: float
    energy_per_sample: float
    sample_latency: float
    compute_latency: float
    pipeline_cycle: float
    power: float
    worst_error_rate: float
    average_error_rate: float

    @property
    def relative_accuracy(self) -> float:
        """``1 - average_error_rate``."""
        return 1.0 - self.average_error_rate

    @property
    def energy_efficiency(self) -> float:
        """Samples per joule."""
        if self.energy_per_sample == 0:
            return float("inf")
        return 1.0 / self.energy_per_sample


class Accelerator:
    """A full memristor-based neuromorphic accelerator.

    Parameters
    ----------
    config:
        Design configuration; its ``network_type`` is overridden by the
        network's own type, and ``network_depth`` (if set) must match.
    network:
        The application (an ordered chain of weight-bearing layers).
    registry:
        Module registry shared by every bank (customization hook).
    """

    def __init__(
        self,
        config: SimConfig,
        network: Network,
        registry: Optional[ModuleRegistry] = None,
    ) -> None:
        if config.network_depth is not None and config.network_depth != network.depth:
            raise ConfigError(
                f"configured network_depth {config.network_depth} does not "
                f"match network depth {network.depth}"
            )
        self.config = config.replace(
            network_type=network.network_type,
            network_depth=network.depth,
        )
        self.network = network
        self.registry = registry if registry is not None else ModuleRegistry()

        self.banks: List[ComputationBank] = []
        layers = list(network.layers)
        for index, layer in enumerate(layers):
            next_layer = layers[index + 1] if index + 1 < len(layers) else None
            self.banks.append(
                ComputationBank(
                    self.config, layer, next_layer=next_layer,
                    registry=self.registry,
                )
            )

        cmos = self.config.cmos
        in_lines, out_lines = self.config.interface_number
        self.input_interface = self.registry.build(
            "input_interface", IoInterfaceModule, cmos=cmos,
            lines=in_lines, sample_values=network.input_values,
            bits=self.config.signal_bits,
        )
        self.output_interface = self.registry.build(
            "output_interface", IoInterfaceModule, cmos=cmos,
            lines=out_lines, sample_values=network.output_values,
            bits=self.config.signal_bits,
        )

    # ------------------------------------------------------------------
    @property
    def total_units(self) -> int:
        """Computation units across all banks."""
        return sum(bank.units for bank in self.banks)

    @property
    def total_crossbars(self) -> int:
        """Physical crossbars across all banks."""
        return sum(bank.crossbars for bank in self.banks)

    # ------------------------------------------------------------------
    def sample_performance(self) -> Performance:
        """One sample through interfaces and every bank, sequentially."""
        perf = self.input_interface.performance()
        perf = perf.serial(self.compute_sample_performance())
        return perf.serial(self.output_interface.performance())

    def compute_sample_performance(self) -> Performance:
        """One sample through the banks only (no bus interfaces)."""
        perf = Performance()
        for bank in self.banks:
            perf = perf.serial(bank.sample_performance())
        return perf

    def pipeline_cycle_latency(self) -> float:
        """Cycle time of pipelined operation: the slowest bank pass."""
        return max(bank.pass_performance().latency for bank in self.banks)

    def write_performance(self) -> Performance:
        """One-time cost of loading all weights (WRITE of every bank)."""
        perf = Performance()
        for bank in self.banks:
            perf = perf.serial(bank.write_performance())
        return perf

    def accuracy(self) -> LayerAccuracy:
        """Propagated computing accuracy over the network's layers.

        Each layer's crossbars are modelled at their effective
        (possibly rectangular) fill: a layer narrower than the crossbar
        stresses fewer rows/columns.
        """
        model = AccuracyModel(self.config)
        layer_sizes = [
            (
                bank.mapping.typical_active_rows,
                bank.mapping.typical_active_cols,
            )
            for bank in self.banks
        ]
        return model.network_accuracy(layer_sizes=layer_sizes)

    # ------------------------------------------------------------------
    def summary(
        self, accuracy: Optional[LayerAccuracy] = None
    ) -> AcceleratorSummary:
        """The table-row view of this design point.

        ``accuracy`` lets callers share one computed
        :class:`~repro.accuracy.model.LayerAccuracy` across design
        points that are accuracy-equivalent — the paper's Sec. VII.C.1
        observation that digital parallelism does not affect crossbar
        computing accuracy, which the DSE explorer exploits to evaluate
        each shape-group's accuracy once.  Omitted, it is computed here
        (the historical behaviour).
        """
        sample = self.sample_performance()
        if accuracy is None:
            accuracy = self.accuracy()
        return AcceleratorSummary(
            area=sample.area,
            energy_per_sample=sample.dynamic_energy,
            sample_latency=sample.latency,
            compute_latency=self.compute_sample_performance().latency,
            pipeline_cycle=self.pipeline_cycle_latency(),
            power=sample.average_power,
            worst_error_rate=accuracy.worst_error_rate,
            average_error_rate=accuracy.average_error_rate,
        )

    def report(self) -> ReportNode:
        """Full hierarchical report of one sample's processing."""
        node = ReportNode(
            name=f"accelerator[{self.network.name}]",
            performance=self.sample_performance(),
            notes=(
                f"{len(self.banks)} banks, {self.total_units} units, "
                f"{self.total_crossbars} crossbars"
            ),
        )
        node.add(
            ReportNode("input_interface", self.input_interface.performance())
        )
        for index, bank in enumerate(self.banks):
            node.add(bank.report(name=f"bank[{index}]"))
        node.add(
            ReportNode("output_interface",
                       self.output_interface.performance())
        )
        return node
