"""Weight-programming model: write-verify tuning under variation.

Programming a multi-level memristor cell is not a single pulse: device
variation scatters the landed resistance, so practical flows use
program-and-verify loops (the paper cites Alibart's variation-tolerant
tuning algorithm [48] for its 7-bit device).  This module models that
cost:

* the expected **pulses per cell** to land within half a level given a
  per-pulse placement spread (derived from the device precision and
  sigma);
* the full **programming schedule** of an accelerator: cells written
  row-by-row (one row's cells in parallel across columns through the
  column drivers), banks programmed sequentially;
* the resulting one-time energy/latency, and the write-endurance
  consumed per full reload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.accelerator import Accelerator
from repro.errors import ConfigError
from repro.report import Performance
from repro.tech.memristor import MemristorModel


@dataclass(frozen=True)
class ProgrammingCost:
    """One full weight load, write-verify included.

    Attributes
    ----------
    pulses_per_cell:
        Expected program pulses per cell (>= 1).
    verify_reads_per_cell:
        Verify (read) operations per cell (one per pulse).
    energy / latency:
        Total one-time cost of loading every bank.
    endurance_consumed:
        Fraction of a 1e9-cycle endurance budget used by one load.
    """

    pulses_per_cell: float
    verify_reads_per_cell: float
    energy: float
    latency: float
    endurance_consumed: float


def expected_pulses_per_cell(
    device: MemristorModel, target_fraction: float = 0.5
) -> float:
    """Expected write-verify pulses to land a level within tolerance.

    Per-pulse placement error is modelled as uniform within
    ``+-sigma`` of the target resistance; the tuning loop succeeds when
    the landed value is within ``target_fraction`` of one level width.
    With success probability ``p`` per pulse, the expectation is
    ``1/p`` (geometric), clamped to at least one pulse.

    A zero-sigma device programs in exactly one pulse.
    """
    if not 0 < target_fraction <= 1:
        raise ConfigError("target_fraction must lie in (0, 1]")
    if device.sigma == 0:
        return 1.0
    # Level width as a fraction of the full resistance window; sigma is
    # a fraction of the target resistance, so compare like for like by
    # expressing both relative to the window midpoint.
    level_fraction = 1.0 / (device.levels - 1)
    tolerance = target_fraction * level_fraction
    success = min(1.0, tolerance / device.sigma)
    if success <= 0:
        raise ConfigError("degenerate tuning problem")
    return 1.0 / success


def programming_cost(
    accelerator: Accelerator,
    target_fraction: float = 0.5,
    write_endurance: float = 1e9,
) -> ProgrammingCost:
    """Full write-verify weight load of the accelerator.

    Builds on each bank's write model (cells through both decoders,
    banks sequential) and scales by the expected pulse count; each
    pulse is followed by one verify read through the unit's read path.
    """
    if write_endurance <= 0:
        raise ConfigError("write_endurance must be positive")
    device = accelerator.config.device
    pulses = expected_pulses_per_cell(device, target_fraction)

    total = Performance()
    for bank in accelerator.banks:
        write = bank.write_performance()
        verify_energy = 0.0
        verify_latency = 0.0
        for unit, count in bank._shaped_units:
            read = unit.read_performance()
            cells = unit.active_rows * unit.active_cols * unit.polarity
            verify_energy += read.dynamic_energy * cells * count
            verify_latency += read.latency * cells * math.ceil(
                count / max(bank.mapping.col_blocks, 1)
            )
        total = total.serial(
            Performance(
                dynamic_energy=(
                    write.dynamic_energy * pulses
                    + verify_energy * pulses
                ),
                latency=(
                    write.latency * pulses + verify_latency * pulses
                ),
            )
        )

    return ProgrammingCost(
        pulses_per_cell=pulses,
        verify_reads_per_cell=pulses,
        energy=total.dynamic_energy,
        latency=total.latency,
        endurance_consumed=pulses / write_endurance,
    )


def reloads_supported(
    accelerator: Accelerator,
    target_fraction: float = 0.5,
    write_endurance: float = 1e9,
) -> float:
    """How many full weight reloads the endurance budget sustains.

    Relevant for multi-tenant accelerators that swap networks: the
    paper's fixed-weight argument assumes one load; this quantifies the
    margin."""
    cost = programming_cost(accelerator, target_fraction, write_endurance)
    return 1.0 / cost.endurance_consumed
