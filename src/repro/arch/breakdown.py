"""Per-category area/energy breakdown of an accelerator.

Sec. V.C of the paper cites the ISAAC observation that "ADC circuits
take about half of the area and energy consumptions in memristor-based
DNNs and CNNs" — a claim that needs a breakdown view to check for any
given design point.  :func:`accelerator_breakdown` walks the hierarchy
and attributes area and per-sample dynamic energy to module categories:

``crossbar``, ``dac``, ``read_circuit`` (ADC/SA), ``decoder``, ``mux``,
``subtractor``, ``merge`` (adder tree + shift-add), ``neuron``,
``pooling``, ``buffer``, ``interface``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.arch.accelerator import Accelerator
from repro.report import format_table

CATEGORIES = (
    "crossbar",
    "dac",
    "read_circuit",
    "decoder",
    "mux",
    "subtractor",
    "merge",
    "neuron",
    "pooling",
    "buffer",
    "interface",
)


@dataclass
class Breakdown:
    """Area (m^2) and per-sample dynamic energy (J) per module category."""

    area: Dict[str, float] = field(default_factory=dict)
    energy: Dict[str, float] = field(default_factory=dict)

    def _add(self, category: str, area: float, energy: float) -> None:
        self.area[category] = self.area.get(category, 0.0) + area
        self.energy[category] = self.energy.get(category, 0.0) + energy

    @property
    def total_area(self) -> float:
        """Sum over all categories."""
        return sum(self.area.values())

    @property
    def total_energy(self) -> float:
        """Sum over all categories."""
        return sum(self.energy.values())

    def area_fraction(self, category: str) -> float:
        """Fraction of total area held by ``category`` (0 if absent)."""
        total = self.total_area
        if total == 0:
            return 0.0
        return self.area.get(category, 0.0) / total

    def energy_fraction(self, category: str) -> float:
        """Fraction of total energy consumed by ``category``."""
        total = self.total_energy
        if total == 0:
            return 0.0
        return self.energy.get(category, 0.0) / total

    def render(self) -> str:
        """Aligned table of fractions, largest area share first."""
        rows: List[List[str]] = []
        for category in sorted(
            self.area, key=self.area.get, reverse=True
        ):
            rows.append([
                category,
                f"{self.area_fraction(category):.1%}",
                f"{self.energy_fraction(category):.1%}",
            ])
        return format_table(["category", "area share", "energy share"], rows)


def accelerator_breakdown(accelerator: Accelerator) -> Breakdown:
    """Attribute the accelerator's area and per-sample energy to
    module categories.

    The attribution mirrors the cost model of
    :class:`~repro.arch.unit.ComputationUnit` /
    :class:`~repro.arch.bank.ComputationBank`: unit-level modules are
    scaled by their replication (rows of DACs, ``p x polarity`` read
    circuits, ...) and bank-level modules by their per-pass evaluation
    counts times the layer's compute passes.
    """
    result = Breakdown()

    for bank in accelerator.banks:
        passes = bank.layer.compute_passes
        mapping = bank.mapping
        for unit, count in bank._shaped_units:
            crossbar = unit.crossbar.performance()
            polarity = unit.polarity
            cycles = unit.read_cycles
            adc = unit.read_circuit.performance()
            adc_count = unit.parallelism * polarity
            dac = unit.dac.performance()
            mux = unit.column_mux.performance()
            row_dec = unit.row_decoder.performance()
            col_dec = unit.col_decoder.performance()

            read_phase = cycles * (mux.latency + adc.latency)
            crossbar_energy = (
                unit.crossbar.compute_power
                * (crossbar.latency + read_phase)
                * polarity
            )
            scale = count * passes
            result._add(
                "crossbar",
                crossbar.area * polarity * count,
                crossbar_energy * scale,
            )
            result._add(
                "dac",
                dac.area * unit.active_rows * count,
                dac.dynamic_energy * unit.active_rows * scale,
            )
            result._add(
                "read_circuit",
                adc.area * adc_count * count,
                adc.dynamic_energy * cycles * adc_count * scale,
            )
            result._add(
                "decoder",
                (row_dec.area + col_dec.area) * count,
                row_dec.dynamic_energy * scale,
            )
            result._add(
                "mux",
                mux.area * polarity * count,
                mux.dynamic_energy * cycles * polarity * scale,
            )
            if unit.subtractor is not None:
                sub = unit.subtractor.performance()
                result._add(
                    "subtractor",
                    sub.area * unit.parallelism * count,
                    sub.dynamic_energy * unit.active_cols * scale,
                )

        merge = bank.merge_pass_performance()
        result._add("merge", merge.area, merge.dynamic_energy * passes)

        neuron = bank.neuron.performance()
        lanes = max(min(bank.lanes, mapping.out_features), 1)
        result._add(
            "neuron",
            neuron.area * lanes,
            neuron.dynamic_energy * mapping.out_features * passes,
        )
        if bank.pooling is not None:
            pool = bank.pooling.performance()
            pool_buffer = bank.pooling_buffer.performance()
            window = bank.layer.pooling**2
            result._add(
                "pooling",
                pool.area * lanes + pool_buffer.area,
                (
                    pool.dynamic_energy * mapping.out_features / window
                    + pool_buffer.dynamic_energy
                )
                * passes,
            )
        out_buffer = bank.output_buffer.performance()
        result._add(
            "buffer", out_buffer.area, out_buffer.dynamic_energy * passes
        )

    for interface in (accelerator.input_interface,
                      accelerator.output_interface):
        perf = interface.performance()
        result._add("interface", perf.area, perf.dynamic_energy)

    return result
