"""Inner-layer pipeline modelling (paper future work / ISAAC-style).

The reference design computes each bank "entirely parallel" per pass;
ISAAC instead pipelines the *inside* of a tile over 22 stages
(Sec. VII.E.2), and the paper's conclusion lists inner-layer pipelining
as future work.  This module provides the generic machinery:

* :class:`PipelineStage` — a named stage with a latency (optionally
  derived from a circuit module);
* :class:`InnerPipeline` — a stage chain with cycle time (slowest
  stage), fill/drain accounting, throughput, and energy over a run;
* :func:`bank_inner_pipeline` — decompose a
  :class:`~repro.arch.bank.ComputationBank`'s pass into its natural
  stages (input drive, crossbar, read, merge, neuron/buffer), ready to
  be re-balanced or extended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.arch.bank import ComputationBank
from repro.errors import ConfigError
from repro.report import Performance


@dataclass(frozen=True)
class PipelineStage:
    """One stage of an inner pipeline.

    ``latency`` is the stage's propagation time; ``energy`` is consumed
    each time a token passes through the stage.
    """

    name: str
    latency: float
    energy: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.energy < 0:
            raise ConfigError("stage latency and energy must be >= 0")


class InnerPipeline:
    """A linear pipeline of stages processing a stream of tokens.

    Parameters
    ----------
    stages:
        The stage chain, first to last.
    cycle_time:
        Optional fixed clock period; defaults to the slowest stage
        (fully-balanced assumption).  A slower explicit clock models
        designs like ISAAC's 100 ns cycle.
    """

    def __init__(
        self,
        stages: Sequence[PipelineStage],
        cycle_time: float = None,
    ) -> None:
        if not stages:
            raise ConfigError("a pipeline needs at least one stage")
        self.stages = tuple(stages)
        slowest = max(stage.latency for stage in self.stages)
        if cycle_time is None:
            cycle_time = slowest
        if cycle_time < slowest:
            raise ConfigError(
                f"cycle_time {cycle_time} is shorter than the slowest "
                f"stage ({slowest})"
            )
        self.cycle_time = cycle_time

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of stages."""
        return len(self.stages)

    @property
    def fill_latency(self) -> float:
        """Time for the first token to emerge (depth x cycle)."""
        return self.depth * self.cycle_time

    def run_latency(self, tokens: int) -> float:
        """Total time to stream ``tokens`` through: fill + (n-1) cycles."""
        if tokens < 1:
            raise ConfigError("tokens must be >= 1")
        return self.fill_latency + (tokens - 1) * self.cycle_time

    def throughput(self) -> float:
        """Steady-state tokens per second."""
        return 1.0 / self.cycle_time

    def run_energy(self, tokens: int) -> float:
        """Dynamic energy of streaming ``tokens`` tokens."""
        if tokens < 1:
            raise ConfigError("tokens must be >= 1")
        per_token = sum(stage.energy for stage in self.stages)
        return per_token * tokens

    def run_performance(self, tokens: int, area: float = 0.0,
                        leakage_power: float = 0.0) -> Performance:
        """Package a run as a :class:`Performance` record."""
        return Performance(
            area=area,
            dynamic_energy=self.run_energy(tokens),
            leakage_power=leakage_power,
            latency=self.run_latency(tokens),
        )

    # ------------------------------------------------------------------
    def speedup_over_sequential(self, tokens: int) -> float:
        """Throughput gain vs processing each token start-to-finish.

        Sequential time is ``tokens x sum(stage latencies)``; the
        pipeline approaches ``depth``-fold speed-up (for balanced
        stages) as the stream grows.
        """
        sequential = tokens * sum(stage.latency for stage in self.stages)
        return sequential / self.run_latency(tokens)


def bank_inner_pipeline(bank: ComputationBank) -> InnerPipeline:
    """Decompose one bank pass into its natural pipeline stages.

    Stages: input drive (DAC + decoder), crossbar settle, sequential
    read (mux + ADC over the unit's read cycles), merge (adder tree +
    shift-add), and neuron/pooling/buffer.  Energies carry the per-pass
    dynamic energy of each phase, so ``run_energy(passes)`` reproduces
    the bank's per-sample energy.
    """
    unit, _count = bank._shaped_units[0]
    dac = unit.dac.performance()
    decoder = unit.row_decoder.performance()
    crossbar = unit.crossbar.performance()
    adc = unit.read_circuit.performance()
    mux = unit.column_mux.performance()

    synapse = bank.synapse_pass_performance()
    merge = bank.merge_pass_performance()
    neuron = bank.neuron_pass_performance()

    read_latency = unit.read_cycles * (mux.latency + adc.latency)
    if unit.subtractor is not None:
        read_latency += unit.subtractor.performance().latency
    drive_latency = max(dac.latency, decoder.latency)
    # Attribute the synapse sub-bank's pass energy across its phases in
    # proportion to their share of the unit latency.
    unit_latency = drive_latency + crossbar.latency + read_latency
    if unit_latency <= 0:
        raise ConfigError("degenerate unit latency")

    def share(latency: float) -> float:
        return synapse.dynamic_energy * (latency / unit_latency)

    stages = [
        PipelineStage("input_drive", drive_latency, share(drive_latency)),
        PipelineStage("crossbar", crossbar.latency, share(crossbar.latency)),
        PipelineStage("read", read_latency, share(read_latency)),
        PipelineStage("merge", merge.latency, merge.dynamic_energy),
        PipelineStage("neuron_buffer", neuron.latency,
                      neuron.dynamic_energy),
    ]
    return InnerPipeline(stages)
