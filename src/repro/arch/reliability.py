"""Lifetime and reliability modelling: retention, disturb, refresh.

The paper's inference-only usage avoids *endurance* wear (Sec. II.B.1),
but two slower mechanisms still erode a deployed crossbar:

* **retention drift** — programmed resistances relax toward the window
  midpoint over time (thermally activated); once the accumulated drift
  reaches half a level width the stored weight reads wrong;
* **read disturb** — every COMPUTE biases the cells; a tiny per-read
  drift accumulates with sample count.

Both are repaired by re-programming (**refresh**).  This module derives
the refresh interval a deployment needs and what the refresh traffic
costs — closing the loop with the write-verify model
(:mod:`repro.arch.programming`) and the endurance budget: refreshing
too often wears the device out, the classic NVM retention/endurance
squeeze.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.arch.accelerator import Accelerator
from repro.arch.programming import programming_cost
from repro.errors import ConfigError

# Fraction of a level width the weight may drift before refresh.
DEFAULT_DRIFT_BUDGET = 0.5

# Retention: time for the resistance to drift one full level width at
# operating temperature.  RRAM retention specs run months to 10 years;
# one year per level is a mid-range figure.
DEFAULT_RETENTION_PER_LEVEL = 365.0 * 24 * 3600

# Read disturb: fractional level drift per compute operation.  Low-bias
# reads disturb extremely weakly; 1e-9 levels/read is representative.
DEFAULT_DISTURB_PER_READ = 1e-9


@dataclass(frozen=True)
class ReliabilityReport:
    """Lifetime summary of one deployment.

    Attributes
    ----------
    refresh_interval:
        Seconds between refreshes (drift budget / combined drift rate).
    refreshes_per_year:
        Refresh operations per year of continuous operation.
    refresh_energy_per_year:
        Energy spent refreshing per year (J).
    refresh_duty_cycle:
        Fraction of wall-clock time spent refreshing.
    endurance_lifetime_years:
        Years until the refresh traffic exhausts the write endurance.
    retention_limited:
        True when retention (not read disturb) sets the interval.
    hard_fault_rate:
        Fraction of cells with unrepairable hard faults (stuck/open);
        see :func:`reliability_report` for how it tightens the policy.
    """

    refresh_interval: float
    refreshes_per_year: float
    refresh_energy_per_year: float
    refresh_duty_cycle: float
    endurance_lifetime_years: float
    retention_limited: bool
    hard_fault_rate: float = 0.0


def reliability_report(
    accelerator: Accelerator,
    samples_per_second: float,
    drift_budget: float = DEFAULT_DRIFT_BUDGET,
    retention_per_level: float = DEFAULT_RETENTION_PER_LEVEL,
    disturb_per_read: float = DEFAULT_DISTURB_PER_READ,
    write_endurance: float = 1e9,
    hard_fault_rate: float = 0.0,
) -> ReliabilityReport:
    """Derive the refresh policy and lifetime of a deployment.

    Parameters
    ----------
    accelerator:
        The deployed design (its programming cost prices each refresh).
    samples_per_second:
        Sustained inference rate (drives the read-disturb term).
    drift_budget:
        Levels of drift tolerated before refresh (default: half).
    retention_per_level:
        Seconds for retention drift to cross one level width.
    disturb_per_read:
        Levels of drift per compute operation.
    write_endurance:
        Programming cycles each cell tolerates.
    hard_fault_rate:
        Fraction of cells with unrepairable hard faults, e.g. the
        ``cell_fault_fraction`` of a measured or sampled
        :class:`~repro.faults.models.FaultMask`.  First-order model:
        stuck/open cells permanently consume part of the array's error
        margin, so the drift budget the *healthy* cells may spend
        shrinks to ``drift_budget * (1 - hard_fault_rate)`` and every
        refresh-derived quantity tightens proportionally.  Must lie in
        ``[0, 1)`` — a fully-faulted array has no refresh policy.
    """
    if samples_per_second < 0:
        raise ConfigError("samples_per_second must be >= 0")
    if drift_budget <= 0:
        raise ConfigError("drift_budget must be positive")
    if retention_per_level <= 0 or disturb_per_read < 0:
        raise ConfigError("bad drift parameters")
    if not 0.0 <= hard_fault_rate < 1.0:
        raise ConfigError("hard_fault_rate must lie in [0, 1)")
    drift_budget = drift_budget * (1.0 - hard_fault_rate)

    retention_rate = 1.0 / retention_per_level  # levels per second
    disturb_rate = disturb_per_read * samples_per_second
    total_rate = retention_rate + disturb_rate
    if total_rate <= 0:
        raise ConfigError("degenerate drift model")

    refresh_interval = drift_budget / total_rate
    year = 365.0 * 24 * 3600
    refreshes_per_year = year / refresh_interval

    refresh = programming_cost(
        accelerator, write_endurance=write_endurance
    )
    refresh_energy_per_year = refresh.energy * refreshes_per_year
    refresh_duty_cycle = min(1.0, refresh.latency / refresh_interval)

    # Each refresh writes every cell pulses_per_cell times.
    writes_per_year = refresh.pulses_per_cell * refreshes_per_year
    endurance_lifetime_years = write_endurance / writes_per_year

    return ReliabilityReport(
        refresh_interval=refresh_interval,
        refreshes_per_year=refreshes_per_year,
        refresh_energy_per_year=refresh_energy_per_year,
        refresh_duty_cycle=refresh_duty_cycle,
        endurance_lifetime_years=endurance_lifetime_years,
        retention_limited=retention_rate >= disturb_rate,
        hard_fault_rate=hard_fault_rate,
    )


def max_sample_rate_for_lifetime(
    accelerator: Accelerator,
    target_years: float,
    drift_budget: float = DEFAULT_DRIFT_BUDGET,
    retention_per_level: float = DEFAULT_RETENTION_PER_LEVEL,
    disturb_per_read: float = DEFAULT_DISTURB_PER_READ,
    write_endurance: float = 1e9,
) -> Optional[float]:
    """Highest sustained sample rate meeting a lifetime target.

    Returns ``None`` when even an idle device (retention refreshes
    alone) cannot reach the target — the retention floor.
    """
    if target_years <= 0:
        raise ConfigError("target_years must be positive")
    idle = reliability_report(
        accelerator, 0.0, drift_budget, retention_per_level,
        disturb_per_read, write_endurance,
    )
    if idle.endurance_lifetime_years < target_years:
        return None
    if disturb_per_read == 0:
        return math.inf
    # lifetime(yrs) = endurance / (pulses * year * total_rate / budget)
    # Solve total_rate for the target, subtract the retention part.
    refresh = programming_cost(
        accelerator, write_endurance=write_endurance
    )
    year = 365.0 * 24 * 3600
    allowed_rate = (
        write_endurance * drift_budget
        / (refresh.pulses_per_cell * year * target_years)
    )
    disturb_budget = allowed_rate - 1.0 / retention_per_level
    if disturb_budget <= 0:
        return 0.0
    return disturb_budget / disturb_per_read
