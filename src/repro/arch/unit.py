"""Level-3 Computation Unit (Sec. III.C, Fig. 1(d)).

A unit holds ``weight_polarity`` crossbars storing one tile of one bit
slice, a computation-oriented row decoder (plus a memory-oriented column
decoder for WRITE), one DAC per active row, ``p`` read circuits shared
over the active columns through a mux, and — for the differential
signed-weight mapping — subtractors merging the two crossbars' outputs.

The COMPUTE operation of one unit:

1. DACs convert and drive all active rows in the same cycle (the
   decoder's select-all NOR path opens every transfer gate);
2. the crossbar(s) settle (analog matrix-vector multiplication), holding
   their operating current while the outputs are read;
3. ``ceil(active_cols / p)`` sequential read cycles digitise the
   columns; each cycle steps the mux, converts, and (signed mapping)
   subtracts the two polarities.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.circuits import (
    AdcModule,
    ColumnMuxModule,
    CrossbarModule,
    DacModule,
    DecoderModule,
    ModuleRegistry,
    SubtractorModule,
)
from repro.config import SimConfig
from repro.report import Performance, ReportNode
from repro.tech.cmos import REFERENCE_READ_FREQUENCY


class ComputationUnit:
    """One computation unit of a bank.

    Parameters
    ----------
    config:
        The design configuration.
    active_rows, active_cols:
        The tile's used region (defaults: the full crossbar).
    registry:
        Module registry for customization; reference designs are used
        for any slot without an override.
    """

    def __init__(
        self,
        config: SimConfig,
        active_rows: Optional[int] = None,
        active_cols: Optional[int] = None,
        registry: Optional[ModuleRegistry] = None,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else ModuleRegistry()
        size = config.crossbar_size
        self.active_rows = size if active_rows is None else active_rows
        self.active_cols = size if active_cols is None else active_cols
        if not 0 < self.active_rows <= size or not 0 < self.active_cols <= size:
            raise ValueError("active region must fit in the crossbar")

        cmos = config.cmos
        device = config.device
        self.parallelism = config.effective_parallelism(self.active_cols)
        self.read_cycles = math.ceil(self.active_cols / self.parallelism)

        build = self.registry.build
        self.crossbar = build(
            "crossbar",
            CrossbarModule,
            device=device,
            cell_type=config.cell_type,
            rows=size,
            cols=size,
            wire=config.wire,
            active_rows=self.active_rows,
            active_cols=self.active_cols,
            cmos_leakage_per_gate=cmos.leakage_per_gate,
        )
        self.row_decoder = build(
            "row_decoder", DecoderModule, cmos=cmos, lines=size,
            computation_oriented=True,
        )
        self.col_decoder = build(
            "col_decoder", DecoderModule, cmos=cmos, lines=size,
            computation_oriented=False,
        )
        self.dac = build("dac", DacModule, cmos=cmos, bits=config.signal_bits)
        self.read_circuit = build(
            "read_circuit", AdcModule, cmos=cmos, bits=config.signal_bits,
            frequency=REFERENCE_READ_FREQUENCY,
        )
        self.column_mux = build(
            "column_mux", ColumnMuxModule, cmos=cmos,
            columns=self.active_cols, read_circuits=self.parallelism,
        )
        if config.weight_polarity == 2:
            self.subtractor = build(
                "subtractor", SubtractorModule, cmos=cmos,
                bits=config.signal_bits + 1,
            )
        else:
            self.subtractor = None

    # ------------------------------------------------------------------
    @property
    def polarity(self) -> int:
        """Physical crossbars in the unit (1 or 2)."""
        return self.config.weight_polarity

    def area(self) -> float:
        """Total unit area in m^2."""
        return self.compute_performance().area

    # ------------------------------------------------------------------
    def compute_performance(self) -> Performance:
        """Cost of one COMPUTE operation (one matrix-vector multiply)."""
        crossbar = self.crossbar.performance()
        row_decoder = self.row_decoder.performance()
        col_decoder = self.col_decoder.performance()
        dac = self.dac.performance()
        adc = self.read_circuit.performance()
        mux = self.column_mux.performance()

        polarity = self.polarity
        adc_count = self.parallelism * polarity
        conversions_per_adc = self.read_cycles

        # Latency: DAC drive (decoder switches concurrently), crossbar
        # settle, then the sequential read cycles; the subtractor adds
        # one stage after the final conversion.
        read_phase = conversions_per_adc * (mux.latency + adc.latency)
        latency = (
            max(dac.latency, row_decoder.latency)
            + crossbar.latency
            + read_phase
        )

        # The crossbars conduct for the whole settle + read window.
        crossbar_window = crossbar.latency + read_phase
        crossbar_energy = (
            self.crossbar.compute_power * crossbar_window * polarity
        )

        energy = (
            dac.dynamic_energy * self.active_rows
            + row_decoder.dynamic_energy
            + crossbar_energy
            + mux.dynamic_energy * conversions_per_adc * polarity
            + adc.dynamic_energy * conversions_per_adc * adc_count
        )
        area = (
            crossbar.area * polarity
            + row_decoder.area
            + col_decoder.area
            + dac.area * self.active_rows
            + adc.area * adc_count
            + mux.area * polarity
        )
        leakage = (
            crossbar.leakage_power * polarity
            + row_decoder.leakage_power
            + col_decoder.leakage_power
            + dac.leakage_power * self.active_rows
            + adc.leakage_power * adc_count
            + mux.leakage_power * polarity
        )
        if self.subtractor is not None:
            sub = self.subtractor.performance()
            latency += sub.latency
            energy += sub.dynamic_energy * self.active_cols
            area += sub.area * self.parallelism
            leakage += sub.leakage_power * self.parallelism
        return Performance(
            area=area,
            dynamic_energy=energy,
            leakage_power=leakage,
            latency=latency,
        )

    def write_performance(self) -> Performance:
        """Cost of programming the unit's active region (WRITE).

        Cells are written one at a time through both decoders; the two
        polarity planes double the cell count.
        """
        cells = self.active_rows * self.active_cols * self.polarity
        crossbar_write = self.crossbar.write_performance(
            self.active_rows * self.active_cols
        )
        row_decoder = self.row_decoder.performance()
        col_decoder = self.col_decoder.performance()
        decoder_energy = (
            (row_decoder.dynamic_energy + col_decoder.dynamic_energy) * cells
        )
        return Performance(
            area=self.compute_performance().area,
            dynamic_energy=(
                crossbar_write.dynamic_energy * self.polarity + decoder_energy
            ),
            leakage_power=crossbar_write.leakage_power * self.polarity,
            latency=crossbar_write.latency * self.polarity,
        )

    def read_performance(self) -> Performance:
        """Cost of a memory-mode READ of one cell."""
        read = self.crossbar.read_performance()
        row_decoder = self.row_decoder.performance()
        col_decoder = self.col_decoder.performance()
        adc = self.read_circuit.performance()
        return Performance(
            area=self.compute_performance().area,
            dynamic_energy=(
                read.dynamic_energy
                + row_decoder.dynamic_energy
                + col_decoder.dynamic_energy
                + adc.dynamic_energy
            ),
            leakage_power=read.leakage_power,
            latency=(
                max(row_decoder.latency, col_decoder.latency)
                + read.latency
                + adc.latency
            ),
        )

    # ------------------------------------------------------------------
    def report(self, name: str = "unit") -> ReportNode:
        """Hierarchical report of one COMPUTE operation."""
        node = ReportNode(
            name=name,
            performance=self.compute_performance(),
            notes=(
                f"{self.active_rows}x{self.active_cols} active, "
                f"p={self.parallelism}, cycles={self.read_cycles}, "
                f"polarity={self.polarity}"
            ),
        )
        node.add(ReportNode("crossbar", self.crossbar.performance()))
        node.add(ReportNode("row_decoder", self.row_decoder.performance()))
        node.add(ReportNode("dac", self.dac.performance()))
        node.add(ReportNode("read_circuit", self.read_circuit.performance()))
        node.add(ReportNode("column_mux", self.column_mux.performance()))
        if self.subtractor is not None:
            node.add(ReportNode("subtractor", self.subtractor.performance()))
        return node
