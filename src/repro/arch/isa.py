"""The basic instruction set and controller (Sec. III.D).

An application-specific memristor accelerator supports three basic
instructions — WRITE, READ, COMPUTE — and MNSIM simulates designs built
on them; richer ISAs are a customization.  The :class:`Controller` here
executes an instruction sequence against an :class:`Accelerator`,
accumulating cost:

* ``WRITE <bank|all>`` — program the weights of one bank (or all banks);
* ``READ <bank>`` — memory-mode read of one cell in one bank (unit 0);
* ``COMPUTE [n]`` — run ``n`` input samples through the accelerator.

:func:`assemble` parses a small text format (one instruction per line,
``#`` comments) so programs can live in files.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.arch.accelerator import Accelerator
from repro.errors import ConfigError


class Opcode(enum.Enum):
    """The three basic instructions."""

    WRITE = "WRITE"
    READ = "READ"
    COMPUTE = "COMPUTE"


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``operand`` is the bank index for WRITE/READ (None = all banks for
    WRITE) and the sample count for COMPUTE (default 1).
    """

    opcode: Opcode
    operand: Optional[int] = None

    def __str__(self) -> str:
        if self.operand is None:
            return self.opcode.value
        return f"{self.opcode.value} {self.operand}"


def assemble(text: str) -> List[Instruction]:
    """Parse an instruction program from text.

    >>> assemble("WRITE\\nCOMPUTE 10")
    [Instruction(opcode=<Opcode.WRITE: 'WRITE'>, operand=None), \
Instruction(opcode=<Opcode.COMPUTE: 'COMPUTE'>, operand=10)]
    """
    program: List[Instruction] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        mnemonic = parts[0].upper()
        try:
            opcode = Opcode(mnemonic)
        except ValueError:
            raise ConfigError(
                f"line {lineno}: unknown instruction {parts[0]!r}"
            ) from None
        operand: Optional[int] = None
        if len(parts) > 1:
            if len(parts) > 2:
                raise ConfigError(f"line {lineno}: too many operands")
            if parts[1].lower() == "all":
                operand = None
            else:
                try:
                    operand = int(parts[1])
                except ValueError:
                    raise ConfigError(
                        f"line {lineno}: bad operand {parts[1]!r}"
                    ) from None
        program.append(Instruction(opcode, operand))
    return program


@dataclass
class ExecutionTrace:
    """Accumulated cost of one program run."""

    instructions: int = 0
    samples_computed: int = 0
    banks_written: int = 0
    cells_read: int = 0
    total_energy: float = 0.0
    total_latency: float = 0.0
    history: List[str] = field(default_factory=list)


class Controller:
    """Executes WRITE/READ/COMPUTE programs on an accelerator."""

    def __init__(self, accelerator: Accelerator) -> None:
        self.accelerator = accelerator

    def _bank(self, index: Optional[int]):
        banks = self.accelerator.banks
        if index is None:
            raise ConfigError("this instruction requires a bank index")
        if not 0 <= index < len(banks):
            raise ConfigError(
                f"bank index {index} out of range 0..{len(banks) - 1}"
            )
        return banks[index]

    def run(self, program: Sequence[Instruction]) -> ExecutionTrace:
        """Execute ``program``, returning the accumulated trace.

        Instruction costs are the corresponding performance-model
        figures; latencies add sequentially (a simple in-order
        controller).
        """
        trace = ExecutionTrace()
        for instruction in program:
            if instruction.opcode is Opcode.WRITE:
                if instruction.operand is None:
                    perf = self.accelerator.write_performance()
                    trace.banks_written += len(self.accelerator.banks)
                else:
                    perf = self._bank(instruction.operand).write_performance()
                    trace.banks_written += 1
            elif instruction.opcode is Opcode.READ:
                bank = self._bank(
                    0 if instruction.operand is None else instruction.operand
                )
                perf = bank._shaped_units[0][0].read_performance()
                trace.cells_read += 1
            elif instruction.opcode is Opcode.COMPUTE:
                samples = 1 if instruction.operand is None else instruction.operand
                if samples < 1:
                    raise ConfigError("COMPUTE needs a positive sample count")
                perf = self.accelerator.sample_performance().repeat(samples)
                trace.samples_computed += samples
            else:  # pragma: no cover - enum is exhaustive
                raise ConfigError(f"unhandled opcode {instruction.opcode}")
            trace.instructions += 1
            trace.total_energy += perf.dynamic_energy
            trace.total_latency += perf.latency
            trace.history.append(str(instruction))
        return trace
