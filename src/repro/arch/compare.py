"""Side-by-side comparison of accelerator designs.

Every example and case study ends with the same move: put two or more
designs next to each other and read across.  :func:`compare_designs`
standardises that table — one column per design, the paper's metric
rows, plus structure counts — and :func:`relative_to` re-expresses the
columns as ratios against a baseline (the "X times better" view).
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.accelerator import Accelerator
from repro.errors import ConfigError
from repro.report import format_table
from repro.units import MM2, MW, UJ, US

_ROWS = (
    ("area (mm^2)", lambda s: s.area / MM2, "{:.4f}"),
    ("energy/sample (uJ)", lambda s: s.energy_per_sample / UJ, "{:.4f}"),
    ("compute latency (us)", lambda s: s.compute_latency / US, "{:.4f}"),
    ("pipeline cycle (us)", lambda s: s.pipeline_cycle / US, "{:.4f}"),
    ("power (mW)", lambda s: s.power / MW, "{:.2f}"),
    ("worst error rate", lambda s: s.worst_error_rate, "{:.2%}"),
    ("relative accuracy", lambda s: s.relative_accuracy, "{:.2%}"),
)


def compare_designs(designs: Dict[str, Accelerator]) -> str:
    """Render a metric-by-design comparison table.

    ``designs`` maps display labels to built accelerators; columns
    appear in insertion order.
    """
    if not designs:
        raise ConfigError("nothing to compare")
    summaries = {label: acc.summary() for label, acc in designs.items()}
    rows: List[List[str]] = []
    for name, extract, fmt in _ROWS:
        rows.append(
            [name]
            + [fmt.format(extract(summaries[label])) for label in designs]
        )
    rows.append(
        ["units"] + [str(acc.total_units) for acc in designs.values()]
    )
    rows.append(
        ["crossbars"]
        + [str(acc.total_crossbars) for acc in designs.values()]
    )
    return format_table(["metric", *designs.keys()], rows)


def relative_to(
    designs: Dict[str, Accelerator], baseline: str
) -> str:
    """Render each design's metrics as ratios against ``baseline``.

    Ratios below 1 mean "less than the baseline" for every row (so
    smaller is better everywhere except relative accuracy, where the
    ratio reads directly).
    """
    if baseline not in designs:
        raise ConfigError(f"unknown baseline {baseline!r}")
    summaries = {label: acc.summary() for label, acc in designs.items()}
    base = summaries[baseline]
    rows: List[List[str]] = []
    for name, extract, _fmt in _ROWS:
        base_value = extract(base)
        row = [name]
        for label in designs:
            value = extract(summaries[label])
            if base_value == 0:
                row.append("-" if value == 0 else "inf")
            else:
                row.append(f"{value / base_value:.3f}x")
        rows.append(row)
    return format_table([f"metric (vs {baseline})", *designs.keys()], rows)
