"""Exception hierarchy for the MNSIM reproduction.

All library-specific errors derive from :class:`MnsimError` so callers can
catch a single base class.  Each subclass corresponds to one stage of the
simulation flow:

* configuration parsing / validation -> :class:`ConfigError`
* field-addressed input validation -> :class:`ValidationError`
* technology lookup -> :class:`TechnologyError`
* mapping a network onto crossbars -> :class:`MappingError`
* circuit-level solving -> :class:`SolverError`
* design-space exploration -> :class:`ExplorationError`
* parallel job execution -> :class:`JobExecutionError`
* cooperative job cancellation -> :class:`JobCancelled`
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple


class MnsimError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(MnsimError, ValueError):
    """An invalid or inconsistent configuration value was supplied."""


#: Sentinel distinguishing "no offending value recorded" from ``None``
#: (which is itself a perfectly reportable offending value).
_UNSET = object()


class ValidationError(ConfigError):
    """A structured, field-addressed input-validation failure.

    Carries machine-readable context alongside the human message so the
    CLI and the HTTP service report malformed input identically:

    * ``path`` — dotted address of the offending field (e.g.
      ``"montecarlo.trials"`` or ``"config.crossbar_size"``);
    * ``value`` — the offending value as supplied (when recorded);
    * ``allowed`` — the accepted vocabulary, for enum-like fields.

    Subclasses :class:`ConfigError`, so every existing ``except
    ConfigError`` site (and the CLI's exit code 2) keeps working.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str = "",
        value: Any = _UNSET,
        allowed: Optional[Sequence[Any]] = None,
    ) -> None:
        self.path = path
        self.value = None if value is _UNSET else value
        self.has_value = value is not _UNSET
        self.allowed: Optional[Tuple[Any, ...]] = (
            tuple(allowed) if allowed is not None else None
        )
        parts = [f"{path}: {message}" if path else message]
        if value is not _UNSET:
            parts.append(f"(got {value!r})")
        if self.allowed is not None:
            parts.append(f"(allowed: {list(self.allowed)})")
        super().__init__(" ".join(parts))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form used by the service's error responses."""
        out: Dict[str, Any] = {"message": str(self), "path": self.path}
        if self.has_value:
            out["value"] = _json_safe(self.value)
        if self.allowed is not None:
            out["allowed"] = [_json_safe(item) for item in self.allowed]
        return out


def _json_safe(value: Any) -> Any:
    """Best-effort reduction of an offending value for a JSON error."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


class TechnologyError(MnsimError, KeyError):
    """An unknown technology node, device, or module was requested."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it readable.
        return Exception.__str__(self)


class MappingError(MnsimError, ValueError):
    """A network layer cannot be mapped onto the configured hardware."""


class SolverError(MnsimError, RuntimeError):
    """The circuit-level solver failed to converge or was mis-specified."""


class ExplorationError(MnsimError, RuntimeError):
    """Design-space exploration found no design satisfying the constraints."""


class JobExecutionError(MnsimError, RuntimeError):
    """A simulation job failed (crash/timeout) after exhausting retries.

    Raised by :func:`repro.runtime.pool.run_jobs` with a summarized,
    traceback-free message so CLIs can report it cleanly.
    """


class JobCancelled(MnsimError, RuntimeError):
    """A run was cancelled cooperatively via its ``should_cancel`` hook.

    Raised by :func:`repro.runtime.pool.run_jobs` between jobs/chunks
    when the caller-supplied predicate turns true; partial results are
    discarded and nothing is written to the cache for pending jobs.
    """
