"""Exception hierarchy for the MNSIM reproduction.

All library-specific errors derive from :class:`MnsimError` so callers can
catch a single base class.  Each subclass corresponds to one stage of the
simulation flow:

* configuration parsing / validation -> :class:`ConfigError`
* technology lookup -> :class:`TechnologyError`
* mapping a network onto crossbars -> :class:`MappingError`
* circuit-level solving -> :class:`SolverError`
* design-space exploration -> :class:`ExplorationError`
* parallel job execution -> :class:`JobExecutionError`
"""

from __future__ import annotations


class MnsimError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(MnsimError, ValueError):
    """An invalid or inconsistent configuration value was supplied."""


class TechnologyError(MnsimError, KeyError):
    """An unknown technology node, device, or module was requested."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it readable.
        return Exception.__str__(self)


class MappingError(MnsimError, ValueError):
    """A network layer cannot be mapped onto the configured hardware."""


class SolverError(MnsimError, RuntimeError):
    """The circuit-level solver failed to converge or was mis-specified."""


class ExplorationError(MnsimError, RuntimeError):
    """Design-space exploration found no design satisfying the constraints."""


class JobExecutionError(MnsimError, RuntimeError):
    """A simulation job failed (crash/timeout) after exhausting retries.

    Raised by :func:`repro.runtime.pool.run_jobs` with a summarized,
    traceback-free message so CLIs can report it cleanly.
    """
