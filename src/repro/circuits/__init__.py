"""Reference circuit-module library (behavior-level cost models).

Every module of the paper's reference design lives here, each exposing a
single :meth:`~repro.circuits.base.CircuitModule.performance` method that
returns a :class:`~repro.report.Performance` record derived from the
technology substrate (:mod:`repro.tech`).

Modules
-------
* :mod:`~repro.circuits.gates` — NAND2-equivalent digital primitives.
* :mod:`~repro.circuits.crossbar` — memristor crossbar (Eq. 7/8 area,
  harmonic-mean average-case power, Sec. V.A).
* :mod:`~repro.circuits.decoder` — memory- and computation-oriented
  decoders (Fig. 4).
* :mod:`~repro.circuits.dac` / :mod:`~repro.circuits.adc` — input DACs and
  read circuits (multi-level sense amplifier, survey ADCs; Sec. V.C).
* :mod:`~repro.circuits.adder` — ripple adders, the bank adder tree, and
  shift-add bit-slice mergers.
* :mod:`~repro.circuits.mux` — column multiplexers + control counter for
  shared read circuits (parallelism degree).
* :mod:`~repro.circuits.neuron` — sigmoid / ReLU / integrate-and-fire.
* :mod:`~repro.circuits.pooling` — max-pooling comparator tree.
* :mod:`~repro.circuits.buffers` — registers, pooling line buffer, output
  line buffer (Eq. 6).
* :mod:`~repro.circuits.interface` — accelerator I/O interface modules.
* :mod:`~repro.circuits.registry` — custom-module override hooks (the
  NVSim-cooperation interface of Sec. III.E.4).
"""

from repro.circuits.base import CircuitModule, CustomModule
from repro.circuits.crossbar import CrossbarModule
from repro.circuits.decoder import DecoderModule
from repro.circuits.dac import DacModule
from repro.circuits.adc import AdcModule, get_adc_design, available_adc_designs
from repro.circuits.adder import (
    AdderModule,
    AdderTreeModule,
    ShiftAddModule,
    SubtractorModule,
)
from repro.circuits.mux import ColumnMuxModule
from repro.circuits.neuron import (
    SigmoidNeuronModule,
    ReluNeuronModule,
    IntegrateFireNeuronModule,
    neuron_for_network_type,
)
from repro.circuits.pooling import MaxPoolingModule
from repro.circuits.buffers import RegisterFileModule, LineBufferModule, output_line_buffer_length
from repro.circuits.interface import IoInterfaceModule
from repro.circuits.registry import ModuleRegistry

__all__ = [
    "CircuitModule",
    "CustomModule",
    "CrossbarModule",
    "DecoderModule",
    "DacModule",
    "AdcModule",
    "get_adc_design",
    "available_adc_designs",
    "AdderModule",
    "AdderTreeModule",
    "ShiftAddModule",
    "SubtractorModule",
    "ColumnMuxModule",
    "SigmoidNeuronModule",
    "ReluNeuronModule",
    "IntegrateFireNeuronModule",
    "neuron_for_network_type",
    "MaxPoolingModule",
    "RegisterFileModule",
    "LineBufferModule",
    "output_line_buffer_length",
    "IoInterfaceModule",
    "ModuleRegistry",
]
