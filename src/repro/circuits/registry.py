"""Module registry: the customization hook of Sec. III.E / Sec. IV.A.

The hierarchy builders (:mod:`repro.arch`) resolve every reference module
through a :class:`ModuleRegistry`.  Users customize a design by overriding
slots with their own factories or with fixed published numbers (a
:class:`~repro.circuits.base.CustomModule`), without changing the
simulation flow — exactly the red-dotted-line path of Fig. 3.

Slot names used by the reference design:

``crossbar``, ``row_decoder``, ``col_decoder``, ``dac``, ``read_circuit``,
``column_mux``, ``subtractor``, ``adder_tree``, ``shift_add``, ``neuron``,
``pooling``, ``pooling_buffer``, ``output_buffer``, ``input_interface``,
``output_interface``.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.circuits.base import CircuitModule, CustomModule
from repro.errors import ConfigError
from repro.report import Performance

ModuleFactory = Callable[..., CircuitModule]


class ModuleRegistry:
    """Maps hierarchy slot names to circuit-module factories.

    A factory receives the keyword arguments the hierarchy builder passes
    for that slot (documented on each builder) and returns a
    :class:`CircuitModule`.  Overriding a slot replaces the reference
    design for every place that slot is instantiated.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, ModuleFactory] = {}
        self._removed: set = set()

    def override(self, slot: str, factory: ModuleFactory) -> None:
        """Install ``factory`` for ``slot`` (replacing any previous one)."""
        if not callable(factory):
            raise ConfigError(f"factory for slot {slot!r} must be callable")
        self._removed.discard(slot)
        self._factories[slot] = factory

    def override_fixed(self, slot: str, performance: Performance) -> None:
        """Pin ``slot`` to fixed published numbers (NVSim/ISAAC import)."""
        self.override(slot, lambda **_kwargs: CustomModule(slot, performance))

    def remove(self, slot: str) -> None:
        """Eliminate ``slot`` entirely (e.g. DAC-free designs [24], [30]).

        The builder will substitute a zero-cost module.
        """
        self._factories.pop(slot, None)
        self._removed.add(slot)

    def restore(self, slot: str) -> None:
        """Undo an override or removal, restoring the reference design."""
        self._factories.pop(slot, None)
        self._removed.discard(slot)

    def is_removed(self, slot: str) -> bool:
        """True if the slot was eliminated via :meth:`remove`."""
        return slot in self._removed

    def build(
        self, slot: str, default: ModuleFactory, **kwargs
    ) -> CircuitModule:
        """Instantiate ``slot`` using the override, removal, or ``default``."""
        if slot in self._removed:
            return CustomModule(f"{slot} (removed)", Performance())
        factory = self._factories.get(slot, default)
        return factory(**kwargs)

    def copy(self) -> "ModuleRegistry":
        """Shallow copy (factories shared, override sets independent)."""
        clone = ModuleRegistry()
        clone._factories = dict(self._factories)
        clone._removed = set(self._removed)
        return clone
