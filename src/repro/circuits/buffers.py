"""Register files and line buffers (pooling buffer, output buffer).

Fully-connected layers use a plain register file of ``C_out`` words for the
output buffer (Sec. III.B.5).  Convolutional layers use shift-register line
buffers: a pooling line buffer ahead of the pooling module (Fig. 1(f)) and
per-channel output line buffers whose length follows Eq. 6::

    L_out = W_next * (h_next - 1) + w_next

so that the next layer's convolution window is always resident and the
conv layers pipeline through the flowing data.
"""

from __future__ import annotations

from repro.circuits import gates
from repro.circuits.base import CircuitModule
from repro.report import Performance
from repro.tech.cmos import CmosNode


def output_line_buffer_length(
    next_feature_width: int, next_kernel_h: int, next_kernel_w: int
) -> int:
    """Length of one output line buffer per Eq. 6.

    Parameters
    ----------
    next_feature_width:
        ``W^{i+1}``, the width of the next layer's input feature map.
    next_kernel_h, next_kernel_w:
        ``h^{i+1}`` and ``w^{i+1}``, the next layer's kernel size.
    """
    if next_feature_width < 1 or next_kernel_h < 1 or next_kernel_w < 1:
        raise ValueError("feature and kernel sizes must be >= 1")
    return next_feature_width * (next_kernel_h - 1) + next_kernel_w


class RegisterFileModule(CircuitModule):
    """A ``words x bits`` register file (fully-connected output buffer).

    Energy models one full write of all words (the per-sample cost of a
    fully-connected layer's output); latency is one register write.
    """

    kind = "register_file"

    def __init__(self, cmos: CmosNode, words: int, bits: int) -> None:
        if words < 1 or bits < 1:
            raise ValueError("words and bits must be >= 1")
        self.cmos = cmos
        self.words = words
        self.bits = bits

    def gate_count(self) -> float:
        """Storage flip-flops only (word lines are simple fixed wires)."""
        return self.words * gates.register_gates(self.bits)

    def performance(self) -> Performance:
        """One full refill of the register file."""
        return gates.logic_performance(
            self.cmos,
            self.gate_count(),
            gates.FO4_DFF_CLK_TO_Q,
        )


class LineBufferModule(CircuitModule):
    """A shift-register line buffer of ``length`` words of ``bits`` bits.

    Each iteration a new word enters the head and every stored word shifts
    by one register (Fig. 1(f)); the energy of one shift step clocks the
    entire chain.

    ``lanes`` replicates the buffer (e.g. one line buffer per output
    channel of a conv layer).
    """

    kind = "line_buffer"

    def __init__(
        self, cmos: CmosNode, length: int, bits: int, lanes: int = 1
    ) -> None:
        if length < 1 or bits < 1 or lanes < 1:
            raise ValueError("length, bits, lanes must be >= 1")
        self.cmos = cmos
        self.length = length
        self.bits = bits
        self.lanes = lanes

    def gate_count(self) -> float:
        """Flip-flop chain across all lanes."""
        return self.lanes * self.length * gates.register_gates(self.bits)

    def performance(self) -> Performance:
        """One shift step (all registers clock simultaneously)."""
        return gates.logic_performance(
            self.cmos,
            self.gate_count(),
            gates.FO4_DFF_CLK_TO_Q,
        )
