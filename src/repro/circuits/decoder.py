"""Row/column decoders: memory-oriented and computation-oriented (Fig. 4).

A memory decoder selects exactly one line via an address AND tree driving a
transfer gate.  The computation-oriented decoder of the paper inserts a NOR
gate between the address decoder and each transfer gate: when the COMPUTE
control signal is asserted, *every* transfer gate opens so the whole
crossbar computes in parallel (Sec. III.C.2, Sec. V.B).
"""

from __future__ import annotations

import math

from repro.circuits import gates
from repro.circuits.base import CircuitModule
from repro.report import Performance
from repro.tech.cmos import CmosNode


class DecoderModule(CircuitModule):
    """Decoder for ``lines`` crossbar lines.

    Parameters
    ----------
    cmos:
        CMOS technology node.
    lines:
        Number of selectable lines (crossbar rows or columns).
    computation_oriented:
        If True, add the per-line NOR gate of Fig. 4(b) enabling
        select-all COMPUTE operation.
    """

    kind = "decoder"

    def __init__(
        self, cmos: CmosNode, lines: int, computation_oriented: bool = True
    ) -> None:
        if lines < 1:
            raise ValueError("decoder needs at least one line")
        self.cmos = cmos
        self.lines = lines
        self.computation_oriented = computation_oriented

    @property
    def address_bits(self) -> int:
        """Width of the address input."""
        return max(1, math.ceil(math.log2(self.lines)))

    def gate_count(self) -> float:
        """Total NAND2-equivalent gates in the decoder."""
        per_line = (
            gates.decoder_and_gates(self.address_bits)
            + gates.GE_TRANSMISSION_GATE
        )
        if self.computation_oriented:
            per_line += gates.GE_NOR2
        address_buffers = self.address_bits * 2 * gates.GE_INVERTER
        return self.lines * per_line + address_buffers

    def fo4_depth(self) -> float:
        """Critical path: address buffer -> AND tree -> (NOR) -> gate."""
        depth = 1.0 + self.address_bits * gates.FO4_NAND2
        if self.computation_oriented:
            depth += gates.FO4_NAND2  # the added NOR stage
        return depth

    def performance(self) -> Performance:
        """One select (or select-all) operation.

        In COMPUTE mode all lines toggle, so the whole decoder's switched
        capacitance is charged once per operation -- which is what the
        gate-count energy model already expresses.
        """
        return gates.logic_performance(
            self.cmos, self.gate_count(), self.fo4_depth()
        )
