"""Non-linear neuron modules: sigmoid, ReLU, integrate-and-fire.

The reference designs follow Sec. III.B.4 of the paper: sigmoid for DNNs
(a look-up-table implementation over the quantized input), ReLU for CNNs
(sign check + mux to zero), and integrate-and-fire for SNNs (accumulator +
threshold comparator + reset).
"""

from __future__ import annotations

from repro.circuits import gates
from repro.circuits.base import CircuitModule
from repro.errors import ConfigError
from repro.report import Performance
from repro.tech.cmos import CmosNode

# LUT neurons index with at most this many address bits; wider inputs are
# truncated to the MSBs first (standard piecewise-LUT sigmoid practice).
_MAX_LUT_ADDRESS_BITS = 10


class SigmoidNeuronModule(CircuitModule):
    """LUT-based sigmoid neuron (DNN reference design)."""

    kind = "sigmoid_neuron"

    def __init__(self, cmos: CmosNode, input_bits: int, output_bits: int) -> None:
        if input_bits < 1 or output_bits < 1:
            raise ValueError("bit widths must be >= 1")
        self.cmos = cmos
        self.input_bits = input_bits
        self.output_bits = output_bits

    @property
    def address_bits(self) -> int:
        """LUT address width (input truncated to the MSBs if very wide)."""
        return min(self.input_bits, _MAX_LUT_ADDRESS_BITS)

    def performance(self) -> Performance:
        """One activation evaluation."""
        gate_count = gates.lut_gates(self.address_bits, self.output_bits)
        depth = gates.lut_depth(self.address_bits)
        return gates.logic_performance(self.cmos, gate_count, depth)


class ReluNeuronModule(CircuitModule):
    """ReLU neuron: sign check plus a mux to zero (CNN reference design)."""

    kind = "relu_neuron"

    def __init__(self, cmos: CmosNode, input_bits: int) -> None:
        if input_bits < 1:
            raise ValueError("input_bits must be >= 1")
        self.cmos = cmos
        self.input_bits = input_bits

    def performance(self) -> Performance:
        """One activation evaluation."""
        gate_count = (
            gates.GE_INVERTER  # sign bit
            + self.input_bits * gates.GE_AND2  # gating to zero
        )
        depth = gates.FO4_INVERTER + gates.FO4_NAND2
        return gates.logic_performance(self.cmos, gate_count, depth)


class IntegrateFireNeuronModule(CircuitModule):
    """Integrate-and-fire neuron (SNN reference design).

    An accumulator integrates the merged synapse current each cycle; a
    comparator fires a spike and resets when the membrane potential
    crosses the threshold.
    """

    kind = "if_neuron"

    def __init__(self, cmos: CmosNode, input_bits: int,
                 potential_bits: int = None) -> None:
        if input_bits < 1:
            raise ValueError("input_bits must be >= 1")
        self.cmos = cmos
        self.input_bits = input_bits
        self.potential_bits = (
            input_bits + 2 if potential_bits is None else potential_bits
        )
        if self.potential_bits < input_bits:
            raise ValueError("potential_bits must be >= input_bits")

    def performance(self) -> Performance:
        """One integrate step (accumulate, compare, conditional reset)."""
        bits = self.potential_bits
        gate_count = (
            gates.ripple_adder_gates(bits)  # integrator
            + gates.register_gates(bits)  # membrane potential
            + gates.comparator_gates(bits)  # threshold
            + bits * gates.GE_AND2  # reset gating
        )
        depth = (
            gates.ripple_adder_depth(bits)
            + gates.comparator_depth(bits)
            + gates.FO4_DFF_CLK_TO_Q
        )
        return gates.logic_performance(self.cmos, gate_count, depth)


def neuron_for_network_type(
    network_type: str, cmos: CmosNode, input_bits: int, output_bits: int
) -> CircuitModule:
    """Build the reference neuron for a network type (Sec. III.B.4).

    DNN -> sigmoid, SNN -> integrate-and-fire, CNN -> ReLU.
    """
    normalized = str(network_type).strip().upper()
    if normalized in ("DNN", "ANN"):
        return SigmoidNeuronModule(cmos, input_bits, output_bits)
    if normalized == "SNN":
        return IntegrateFireNeuronModule(cmos, input_bits)
    if normalized == "CNN":
        return ReluNeuronModule(cmos, input_bits)
    raise ConfigError(f"no reference neuron for network type {network_type!r}")
