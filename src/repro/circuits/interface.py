"""Accelerator I/O interface modules (Sec. III.A).

The input interface buffers a full input sample arriving over a limited
number of bus lines (``Interface_Number[0]``) and releases it to the first
computation bank only when complete, preserving the fully-parallel crossbar
operation; the output interface streams the final results back over
``Interface_Number[1]`` lines.  Transfer latency therefore serialises over
``ceil(sample_bits / lines)`` bus cycles.
"""

from __future__ import annotations

import math

from repro.circuits import gates
from repro.circuits.base import CircuitModule
from repro.report import Performance
from repro.tech.cmos import CmosNode
from repro.units import NS

# One bus transfer cycle (a modest 100 MHz peripheral bus).
BUS_CYCLE_TIME = 10 * NS


class IoInterfaceModule(CircuitModule):
    """Input or output interface of the accelerator.

    Parameters
    ----------
    cmos:
        CMOS technology node.
    lines:
        Bus lines available (one bit per line per cycle).
    sample_values:
        Values per sample crossing this interface.
    bits:
        Precision of each value.
    """

    kind = "io_interface"

    def __init__(
        self, cmos: CmosNode, lines: int, sample_values: int, bits: int
    ) -> None:
        if lines < 1 or sample_values < 1 or bits < 1:
            raise ValueError("lines, sample_values, bits must be >= 1")
        self.cmos = cmos
        self.lines = lines
        self.sample_values = sample_values
        self.bits = bits

    @property
    def sample_bits(self) -> int:
        """Total bits per sample."""
        return self.sample_values * self.bits

    @property
    def transfer_cycles(self) -> int:
        """Bus cycles to move one full sample."""
        return math.ceil(self.sample_bits / self.lines)

    def gate_count(self) -> float:
        """Sample buffer plus the serialisation counter/muxes."""
        buffer_ge = self.sample_values * gates.register_gates(self.bits)
        counter_bits = max(1, math.ceil(math.log2(max(2, self.transfer_cycles))))
        control_ge = gates.counter_gates(counter_bits) + gates.mux_tree_gates(
            max(2, self.transfer_cycles), 1
        )
        return buffer_ge + control_ge

    def performance(self) -> Performance:
        """One full sample transfer."""
        logic = gates.logic_performance(
            self.cmos, self.gate_count(), gates.FO4_DFF_CLK_TO_Q
        )
        return Performance(
            area=logic.area,
            dynamic_energy=logic.dynamic_energy,
            leakage_power=logic.leakage_power,
            latency=self.transfer_cycles * BUS_CYCLE_TIME,
        )
