"""Max-pooling module: a comparator tree over the pooling window.

The spatial pooling function of CNNs selects the maximum of the
neighbouring ``k x k`` results (Sec. III.B.3).  The module is a binary
tree of ``k*k - 1`` compare-and-select stages.
"""

from __future__ import annotations

import math

from repro.circuits import gates
from repro.circuits.base import CircuitModule
from repro.report import Performance
from repro.tech.cmos import CmosNode


class MaxPoolingModule(CircuitModule):
    """Max pooling over a ``window x window`` region of ``bits``-bit data."""

    kind = "max_pooling"

    def __init__(self, cmos: CmosNode, window: int, bits: int) -> None:
        if window < 1:
            raise ValueError("pooling window must be >= 1")
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.cmos = cmos
        self.window = window
        self.bits = bits

    @property
    def inputs(self) -> int:
        """Values compared per pooling operation."""
        return self.window * self.window

    @property
    def stages(self) -> int:
        """Compare-and-select stages in the tree."""
        return max(0, self.inputs - 1)

    def gate_count(self) -> float:
        """Comparator + select mux per stage."""
        per_stage = (
            gates.comparator_gates(self.bits)
            + self.bits * gates.GE_MUX2
        )
        return self.stages * per_stage

    def fo4_depth(self) -> float:
        """Critical path through ``ceil(log2(inputs))`` tree levels."""
        if self.inputs <= 1:
            return 0.0
        levels = math.ceil(math.log2(self.inputs))
        per_level = gates.comparator_depth(self.bits) + gates.FO4_MUX2
        return levels * per_level

    def performance(self) -> Performance:
        """One pooling operation (identity / zero cost for window == 1)."""
        if self.stages == 0:
            return Performance()
        return gates.logic_performance(
            self.cmos, self.gate_count(), self.fo4_depth()
        )
