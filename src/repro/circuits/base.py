"""Base class and custom-module hook for circuit cost models."""

from __future__ import annotations

import abc

from repro.report import Performance


class CircuitModule(abc.ABC):
    """A circuit module with a behavior-level cost model.

    Subclasses capture their design parameters in ``__init__`` and derive
    all four metrics from the technology substrate in :meth:`performance`.
    ``performance()`` must be pure (idempotent, no state), so callers may
    cache its result freely.
    """

    #: Human-readable module kind, overridden by subclasses.
    kind: str = "module"

    @abc.abstractmethod
    def performance(self) -> Performance:
        """Return the module's area/energy/leakage/latency record."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} kind={self.kind!r}>"


class CustomModule(CircuitModule):
    """A module whose costs are supplied directly by the user.

    This is the paper's cooperation interface (Sec. III.E.3-4): results from
    NVSim, a datasheet, or a publication (e.g. ISAAC's eDRAM buffer and
    S&H) can be dropped into any slot of the hierarchy by wrapping the
    published numbers in a :class:`CustomModule`.
    """

    kind = "custom"

    def __init__(self, name: str, performance: Performance) -> None:
        if not name:
            raise ValueError("custom module needs a non-empty name")
        self.name = name
        self._performance = performance

    def performance(self) -> Performance:
        """Return the user-supplied performance record verbatim."""
        return self._performance
