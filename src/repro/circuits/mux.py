"""Column multiplexers + control counter for shared read circuits.

When the parallelism degree ``p`` is smaller than the number of used
columns, each read circuit is time-shared over ``ceil(cols / p)`` columns
through an analog mux steered by a digital counter (Sec. III.C.4).
"""

from __future__ import annotations

import math

from repro.circuits import gates
from repro.circuits.base import CircuitModule
from repro.report import Performance
from repro.tech.cmos import CmosNode


class ColumnMuxModule(CircuitModule):
    """Routing network between crossbar columns and read circuits.

    Parameters
    ----------
    cmos:
        CMOS technology node.
    columns:
        Used crossbar columns to be read.
    read_circuits:
        Number of read circuits (the effective parallelism degree).
    """

    kind = "column_mux"

    def __init__(self, cmos: CmosNode, columns: int, read_circuits: int) -> None:
        if columns < 1 or read_circuits < 1:
            raise ValueError("columns and read_circuits must be >= 1")
        if read_circuits > columns:
            raise ValueError("cannot have more read circuits than columns")
        self.cmos = cmos
        self.columns = columns
        self.read_circuits = read_circuits

    @property
    def inputs_per_circuit(self) -> int:
        """Columns multiplexed onto each read circuit."""
        return math.ceil(self.columns / self.read_circuits)

    @property
    def cycles(self) -> int:
        """Sequential read cycles needed to cover all columns."""
        return self.inputs_per_circuit

    def gate_count(self) -> float:
        """Analog transmission gates + the shared control counter.

        Every multiplexed column needs its own select-line decode (the
        counter itself is shared across the read circuits), so the
        select network is sized per column, not per read circuit.
        """
        tgates = self.columns * gates.GE_TRANSMISSION_GATE
        if self.inputs_per_circuit == 1:
            return tgates  # all-parallel: pass gates only, no control
        counter_bits = max(1, math.ceil(math.log2(self.inputs_per_circuit)))
        select_decode = self.columns * gates.decoder_and_gates(counter_bits)
        return tgates + gates.counter_gates(counter_bits) + select_decode

    def fo4_depth(self) -> float:
        """Switching delay of one mux step."""
        if self.inputs_per_circuit == 1:
            return gates.FO4_INVERTER
        return gates.mux_tree_depth(self.inputs_per_circuit) + gates.FO4_DFF_CLK_TO_Q

    def performance(self) -> Performance:
        """One routing step (one read cycle's worth of switching)."""
        return gates.logic_performance(
            self.cmos, self.gate_count(), self.fo4_depth()
        )
