"""Memristor crossbar cost model (Sec. V.A of the paper).

Area follows the memory-array formulas Eq. 7 (MOS-accessed, 1T1R) and Eq. 8
(cross-point, 0T1R).  Computation power differs from a memory: *all* cells
conduct simultaneously, so MNSIM replaces every cell resistance with the
harmonic mean of ``R_min`` and ``R_max`` and every input with the average
input voltage to get the average case.  Latency is the analog settle time of
the array plus the wire RC (Elmore) delay of the longest line.

The paper validates the area model against a 130 nm layout (Fig. 6) and
folds the layout/estimate ratio back in as a calibration coefficient; the
same mechanism is exposed here as ``layout_coefficient``.
"""

from __future__ import annotations

from repro.circuits.base import CircuitModule
from repro.report import Performance
from repro.tech.cmos import CROSSBAR_SETTLE_TIME
from repro.tech.interconnect import InterconnectNode
from repro.tech.memristor import CellType, MemristorModel

# Fig. 6: the fabricated 32x32 1T1R layout measures 3420 um^2 against a
# 2251 um^2 estimate; the ratio (~1.52) becomes the default area
# calibration coefficient users may override for their own technology.
DEFAULT_LAYOUT_COEFFICIENT = 3420.0 / 2251.0

# Fraction of a gate's leakage attributed to one 1T1R access transistor
# (it is a single, mostly-off device vs. a 4-transistor NAND2).
_ACCESS_LEAKAGE_FRACTION = 0.1


class CrossbarModule(CircuitModule):
    """One ``rows x cols`` memristor crossbar in compute mode.

    Parameters
    ----------
    device:
        The memristor model (resistance window, geometry, nonlinearity).
    cell_type:
        1T1R or 0T1R (selects the Eq. 7 / Eq. 8 area formula).
    rows, cols:
        Physical array dimensions.
    wire:
        Interconnect node (for the Elmore wire-delay term).
    active_rows, active_cols:
        How much of the array a mapped sub-matrix actually uses; energy
        scales with the active region while area covers the full array.
    layout_coefficient:
        Multiplier calibrating estimated area to layout area (Fig. 6).
    cmos_leakage_per_gate:
        Per-gate leakage of the CMOS node, used for access transistors.
    """

    kind = "crossbar"

    def __init__(
        self,
        device: MemristorModel,
        cell_type: CellType,
        rows: int,
        cols: int,
        wire: InterconnectNode,
        active_rows: int = None,
        active_cols: int = None,
        layout_coefficient: float = DEFAULT_LAYOUT_COEFFICIENT,
        cmos_leakage_per_gate: float = 0.0,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("crossbar dimensions must be >= 1")
        self.device = device
        self.cell_type = cell_type
        self.rows = rows
        self.cols = cols
        self.wire = wire
        self.active_rows = rows if active_rows is None else active_rows
        self.active_cols = cols if active_cols is None else active_cols
        if not 0 < self.active_rows <= rows or not 0 < self.active_cols <= cols:
            raise ValueError("active region must fit inside the array")
        self.layout_coefficient = layout_coefficient
        self.cmos_leakage_per_gate = cmos_leakage_per_gate

    # ------------------------------------------------------------------
    @property
    def area(self) -> float:
        """Array area in m^2 (Eq. 7 / Eq. 8 times the layout coefficient)."""
        cell = self.device.cell_area(self.cell_type)
        return self.rows * self.cols * cell * self.layout_coefficient

    @property
    def segment_resistance(self) -> float:
        """Wire resistance ``r`` of one cell-to-cell segment (ohms)."""
        return self.wire.segment_resistance(
            self.device.cell_pitch(self.cell_type)
        )

    @property
    def compute_power(self) -> float:
        """Average-case computation power in watts (Sec. V.A).

        Every active cell carries the average input voltage across the
        harmonic-mean resistance.
        """
        v_avg = self.device.read_voltage / 2.0
        cell_power = v_avg**2 / self.device.harmonic_mean_resistance
        return self.active_rows * self.active_cols * cell_power

    @property
    def read_power(self) -> float:
        """Memory-mode READ power in watts (one selected cell)."""
        v = self.device.read_voltage
        return v**2 / self.device.harmonic_mean_resistance

    @property
    def settle_time(self) -> float:
        """Analog settle latency of one compute operation (seconds)."""
        pitch = self.device.cell_pitch(self.cell_type)
        r_line = self.segment_resistance * self.rows
        c_line = self.wire.segment_capacitance(pitch) * self.rows
        elmore = r_line * c_line / 2.0
        return CROSSBAR_SETTLE_TIME + elmore

    @property
    def leakage_power(self) -> float:
        """Static leakage: access-transistor leakage for 1T1R, ~0 for 0T1R."""
        if self.cell_type is not CellType.ONE_T_ONE_R:
            return 0.0
        per_cell = self.cmos_leakage_per_gate * _ACCESS_LEAKAGE_FRACTION
        return self.rows * self.cols * per_cell

    # ------------------------------------------------------------------
    def performance(self) -> Performance:
        """Compute-mode performance of one matrix-vector operation."""
        settle = self.settle_time
        return Performance(
            area=self.area,
            dynamic_energy=self.compute_power * settle,
            leakage_power=self.leakage_power,
            latency=settle,
        )

    def read_performance(self) -> Performance:
        """Memory-mode READ of one cell (for the READ instruction)."""
        settle = self.settle_time
        return Performance(
            area=self.area,
            dynamic_energy=self.read_power * settle,
            leakage_power=self.leakage_power,
            latency=settle,
        )

    def write_performance(self, cells: int = None) -> Performance:
        """Programming ``cells`` cells sequentially (WRITE instruction).

        Defaults to writing the whole active region, the cost of loading a
        weight sub-matrix once before inference.
        """
        if cells is None:
            cells = self.active_rows * self.active_cols
        if cells < 0:
            raise ValueError("cells must be >= 0")
        pulse = self.device.write_pulse
        return Performance(
            area=self.area,
            dynamic_energy=self.device.write_energy_per_cell() * cells,
            leakage_power=self.leakage_power,
            latency=pulse * cells,
        )
