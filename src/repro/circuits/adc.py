"""Read circuits: multi-level sense amplifiers and ADC designs (Sec. V.C).

The paper's reference read circuit is a variable-level sense amplifier
clocked at 50 MHz; its precision is set by the algorithm (8-bit fixed point
for most CNNs), and a small library of published ADC operating points
(Murmann-survey style) is provided for customization — including the 32 nm
1.2 GS/s SAR used in the ISAAC case study.

Energy follows the Walden figure of merit::

    E_conv = FoM * 2**bits

with the FoM improving linearly with the technology node from a 90 nm
anchor.  Area is a SAR-style decomposition: a capacitive DAC of
``2**bits`` unit elements plus comparator and successive-approximation
logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.circuits.base import CircuitModule
from repro.errors import TechnologyError
from repro.report import Performance
from repro.tech.cmos import CmosNode, REFERENCE_READ_FREQUENCY
from repro.units import MHZ, GHZ, NM

# Walden figure of merit at the 90 nm anchor node (J per conversion step).
_FOM_90NM = 100e-15

# Area of one capacitive-DAC unit element in F^2.
_CAP_UNIT_AREA_F2 = 200.0

# Gate-equivalents of comparator + SAR logic per bit.
_SAR_LOGIC_GE_PER_BIT = 30.0


def scaled_fom(cmos: CmosNode) -> float:
    """Walden FoM (J/step) for ``cmos``, scaled linearly from 90 nm."""
    return _FOM_90NM * (cmos.feature_size / (90 * NM))


class AdcModule(CircuitModule):
    """One read circuit (multi-level SA / ADC).

    Parameters
    ----------
    cmos:
        CMOS technology node.
    bits:
        Output precision; the circuit distinguishes ``2**bits`` levels.
    frequency:
        Conversion rate in Hz (reference: 50 MHz, Sec. V.C).
    fom:
        Optional Walden FoM override (J/step); default scales with node.
    area_override, energy_override:
        Optional published values (used when importing survey designs).
    """

    kind = "adc"

    def __init__(
        self,
        cmos: CmosNode,
        bits: int,
        frequency: float = REFERENCE_READ_FREQUENCY,
        fom: Optional[float] = None,
        area_override: Optional[float] = None,
        energy_override: Optional[float] = None,
    ) -> None:
        if bits < 1:
            raise ValueError("ADC needs at least 1 bit")
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        self.cmos = cmos
        self.bits = bits
        self.frequency = frequency
        self.fom = scaled_fom(cmos) if fom is None else fom
        self.area_override = area_override
        self.energy_override = energy_override

    @property
    def levels(self) -> int:
        """Distinguishable output levels ``k``."""
        return 2**self.bits

    @property
    def conversion_time(self) -> float:
        """Seconds per conversion."""
        return 1.0 / self.frequency

    def conversion_energy(self) -> float:
        """Joules per conversion."""
        if self.energy_override is not None:
            return self.energy_override
        return self.fom * self.levels

    def area(self) -> float:
        """Circuit area in m^2."""
        if self.area_override is not None:
            return self.area_override
        cap_array = self.levels * _CAP_UNIT_AREA_F2 * self.cmos.feature_size**2
        logic = self.cmos.gate_area(self.bits * _SAR_LOGIC_GE_PER_BIT)
        return cap_array + logic

    def performance(self) -> Performance:
        """One analog-to-digital conversion."""
        logic_ge = self.bits * _SAR_LOGIC_GE_PER_BIT
        return Performance(
            area=self.area(),
            dynamic_energy=self.conversion_energy(),
            leakage_power=self.cmos.gate_leakage(logic_ge),
            latency=self.conversion_time,
        )


@dataclass(frozen=True)
class AdcDesign:
    """A published ADC operating point importable as a read circuit."""

    name: str
    bits: int
    frequency: float
    fom: Optional[float] = None
    energy_per_conversion: Optional[float] = None
    area: Optional[float] = None

    def build(self, cmos: CmosNode) -> AdcModule:
        """Instantiate an :class:`AdcModule` for this design point."""
        return AdcModule(
            cmos,
            bits=self.bits,
            frequency=self.frequency,
            fom=self.fom,
            area_override=self.area,
            energy_override=self.energy_per_conversion,
        )


_ADC_DESIGNS: Dict[str, AdcDesign] = {
    # Reference design: variable-level SA at 50 MHz (Li et al., IMW'11).
    "SA-50MHZ": AdcDesign(name="SA-50MHZ", bits=8, frequency=50 * MHZ),
    # Kull et al., ISSCC'13: 8 b, 1.2 GS/s, 3.1 mW in 32 nm SOI (the ADC
    # adopted by the ISAAC case study).  E/conv = 3.1 mW / 1.2 GHz.
    "SAR-1.2GS-32NM": AdcDesign(
        name="SAR-1.2GS-32NM",
        bits=8,
        frequency=1.2 * GHZ,
        energy_per_conversion=3.1e-3 / 1.2e9,
        area=0.0015e-6,  # ~0.0015 mm^2
    ),
    # A slow, low-power 6-bit SAR point for PRIME-style 6-bit IO.
    "SAR-6B-10MS": AdcDesign(name="SAR-6B-10MS", bits=6, frequency=10 * MHZ),
    # A mid-rate 8-bit SAR (generic survey point, model-derived costs).
    "SAR-8B-100MS": AdcDesign(
        name="SAR-8B-100MS", bits=8, frequency=100 * MHZ
    ),
    # A 4-bit flash converter: one comparator per level makes it fast
    # but energy-hungry per step (flash FoM ~5x the SAR baseline).
    "FLASH-4B-2GS": AdcDesign(
        name="FLASH-4B-2GS", bits=4, frequency=2 * GHZ, fom=500e-15
    ),
    # A near-threshold sense amplifier for duty-cycled edge designs.
    "SA-10MHZ": AdcDesign(
        name="SA-10MHZ", bits=8, frequency=10 * MHZ, fom=30e-15
    ),
}


def available_adc_designs() -> tuple:
    """Names of the built-in ADC designs."""
    return tuple(sorted(_ADC_DESIGNS))


def get_adc_design(name: str) -> AdcDesign:
    """Look up a built-in :class:`AdcDesign` by name."""
    try:
        return _ADC_DESIGNS[str(name).strip().upper()]
    except KeyError:
        raise TechnologyError(
            f"unknown ADC design {name!r}; available: {available_adc_designs()}"
        ) from None
