"""Digital gate-level primitives in NAND2-equivalent units.

All digital peripheral modules (decoders, adders, neurons, buffers, ...)
are costed as counts of NAND2-equivalent gates plus a logic depth in FO4
units, the same abstraction CACTI uses.  The constants below are classical
gate-equivalent (GE) figures from standard-cell libraries.

Functions return plain floats (gate counts or FO4 depths); the conversion
to physical area/energy/delay/leakage happens through
:class:`~repro.tech.cmos.CmosNode` helpers.
"""

from __future__ import annotations

import math

from repro.tech.cmos import CmosNode
from repro.report import Performance

# Gate-equivalent (NAND2 = 1.0) sizes of common cells.
GE_INVERTER = 0.5
GE_NAND2 = 1.0
GE_NOR2 = 1.0
GE_AND2 = 1.5
GE_XOR2 = 2.5
GE_MUX2 = 2.0
GE_TRANSMISSION_GATE = 0.5
GE_DFF = 5.0
GE_FULL_ADDER = 6.0
GE_COMPARATOR_PER_BIT = 3.5
GE_SRAM_BIT = 0.25  # ROM/LUT storage bit, denser than logic

# FO4 logic depths of common cells.
FO4_INVERTER = 0.5
FO4_NAND2 = 1.0
FO4_FULL_ADDER_CARRY = 2.0
FO4_MUX2 = 1.5
FO4_DFF_CLK_TO_Q = 3.0
FO4_COMPARATOR_PER_BIT = 0.6


def logic_performance(
    cmos: CmosNode,
    gate_count: float,
    fo4_depth: float,
    evaluations: float = 1.0,
) -> Performance:
    """Build a :class:`Performance` record for a block of random logic.

    Parameters
    ----------
    cmos:
        Technology node supplying area/energy/delay/leakage per gate.
    gate_count:
        Total NAND2-equivalent gates in the block.
    fo4_depth:
        Critical-path depth in FO4 units.
    evaluations:
        How many times the block evaluates per operation (scales dynamic
        energy only; latency models the critical path of one evaluation).
    """
    if gate_count < 0 or fo4_depth < 0 or evaluations < 0:
        raise ValueError("gate_count, fo4_depth, evaluations must be >= 0")
    return Performance(
        area=cmos.gate_area(gate_count),
        dynamic_energy=cmos.gate_energy(gate_count) * evaluations,
        leakage_power=cmos.gate_leakage(gate_count),
        latency=cmos.gate_delay(fo4_depth),
    )


def register_gates(bits: int) -> float:
    """Gate count of a ``bits``-wide register (D flip-flops)."""
    return bits * GE_DFF


def ripple_adder_gates(bits: int) -> float:
    """Gate count of a ``bits``-bit ripple-carry adder."""
    return bits * GE_FULL_ADDER


def ripple_adder_depth(bits: int) -> float:
    """FO4 depth of a ``bits``-bit ripple-carry adder (carry chain)."""
    return bits * FO4_FULL_ADDER_CARRY


def comparator_gates(bits: int) -> float:
    """Gate count of a ``bits``-bit magnitude comparator."""
    return bits * GE_COMPARATOR_PER_BIT


def comparator_depth(bits: int) -> float:
    """FO4 depth of a ``bits``-bit magnitude comparator."""
    return bits * FO4_COMPARATOR_PER_BIT


def counter_gates(bits: int) -> float:
    """Gate count of a ``bits``-bit binary counter (DFF + increment)."""
    return bits * (GE_DFF + GE_FULL_ADDER * 0.5)


def decoder_and_gates(address_bits: int) -> float:
    """Gate count of one output AND of an ``address_bits`` decoder.

    Wide ANDs decompose into a NAND/NOR tree; cost grows with fan-in.
    """
    if address_bits <= 0:
        return 0.0
    return max(1.0, address_bits * 0.75)


def mux_tree_gates(inputs: int, bits: int) -> float:
    """Gate count of an ``inputs``-to-1 mux, ``bits`` wide."""
    if inputs <= 1:
        return 0.0
    return (inputs - 1) * bits * GE_MUX2


def mux_tree_depth(inputs: int) -> float:
    """FO4 depth of an ``inputs``-to-1 mux tree."""
    if inputs <= 1:
        return 0.0
    return math.ceil(math.log2(inputs)) * FO4_MUX2


def lut_gates(address_bits: int, data_bits: int) -> float:
    """Gate count of a ROM look-up table with 2**address_bits entries."""
    entries = 2**address_bits
    storage = entries * data_bits * GE_SRAM_BIT
    decode = entries * decoder_and_gates(address_bits)
    return storage + decode


def lut_depth(address_bits: int) -> float:
    """FO4 depth of a LUT read (decode + wordline + output mux)."""
    return 2.0 * max(address_bits, 1) * FO4_NAND2
