"""Adders, the computation-bank adder tree, and shift-add bit-slice merge.

A computation bank merges the partial results of the computation units in a
row of the sub-matrix grid with a binary adder tree (Sec. III.B.2).  When a
weight is bit-sliced over several crossbars, the slices are merged by the
same tree with shifters inserted (shift-and-add).
"""

from __future__ import annotations

import math

from repro.circuits import gates
from repro.circuits.base import CircuitModule
from repro.report import Performance
from repro.tech.cmos import CmosNode


class AdderModule(CircuitModule):
    """A single ``bits``-bit ripple-carry adder."""

    kind = "adder"

    def __init__(self, cmos: CmosNode, bits: int) -> None:
        if bits < 1:
            raise ValueError("adder needs at least 1 bit")
        self.cmos = cmos
        self.bits = bits

    def performance(self) -> Performance:
        """One addition."""
        return gates.logic_performance(
            self.cmos,
            gates.ripple_adder_gates(self.bits),
            gates.ripple_adder_depth(self.bits),
        )


class AdderTreeModule(CircuitModule):
    """Binary adder tree merging ``inputs`` partial sums (Fig. 1(c)).

    Bit widths grow by one per tree level to avoid overflow; the critical
    path is ``ceil(log2(inputs))`` ripple adders.

    Parameters
    ----------
    cmos:
        CMOS technology node.
    inputs:
        Number of partial results to merge (>= 1; 1 means a wire).
    bits:
        Bit width of each leaf input.
    """

    kind = "adder_tree"

    def __init__(self, cmos: CmosNode, inputs: int, bits: int) -> None:
        if inputs < 1:
            raise ValueError("adder tree needs at least 1 input")
        if bits < 1:
            raise ValueError("adder tree needs at least 1-bit inputs")
        self.cmos = cmos
        self.inputs = inputs
        self.bits = bits

    @property
    def depth(self) -> int:
        """Tree depth in adder stages."""
        if self.inputs <= 1:
            return 0
        return math.ceil(math.log2(self.inputs))

    @property
    def output_bits(self) -> int:
        """Bit width of the merged result."""
        return self.bits + self.depth

    def gate_count(self) -> float:
        """Total gates: level ``l`` (from leaves) has adders of
        ``bits + l`` bits; a full binary tree of ``inputs`` leaves has
        ``inputs - 1`` adders."""
        total = 0.0
        remaining = self.inputs
        level = 0
        while remaining > 1:
            adders = remaining // 2
            total += adders * gates.ripple_adder_gates(self.bits + level)
            remaining = math.ceil(remaining / 2)
            level += 1
        return total

    def fo4_depth(self) -> float:
        """Critical path through all tree levels."""
        depth = 0.0
        for level in range(self.depth):
            depth += gates.ripple_adder_depth(self.bits + level)
        return depth

    def performance(self) -> Performance:
        """One merge of all inputs."""
        return gates.logic_performance(
            self.cmos, self.gate_count(), self.fo4_depth()
        )


class ShiftAddModule(CircuitModule):
    """Shift-and-add merger for ``slices`` bit-sliced crossbar outputs.

    Slice ``i`` is shifted left by ``i * slice_bits`` (a wiring cost, free)
    and accumulated by ``slices - 1`` adders of the full result width
    (Sec. III.B.2: "the shifters need to be added").
    """

    kind = "shift_add"

    def __init__(self, cmos: CmosNode, slices: int, slice_bits: int,
                 input_bits: int) -> None:
        if slices < 1:
            raise ValueError("need at least 1 slice")
        if slice_bits < 1 or input_bits < 1:
            raise ValueError("bit widths must be >= 1")
        self.cmos = cmos
        self.slices = slices
        self.slice_bits = slice_bits
        self.input_bits = input_bits

    @property
    def output_bits(self) -> int:
        """Width of the fully merged value."""
        return self.input_bits + self.slice_bits * (self.slices - 1)

    def performance(self) -> Performance:
        """One merge of all slices (sequential accumulate chain)."""
        if self.slices == 1:
            return Performance()
        adders = self.slices - 1
        gate_count = adders * gates.ripple_adder_gates(self.output_bits)
        depth = adders * gates.ripple_adder_depth(self.output_bits)
        return gates.logic_performance(self.cmos, gate_count, depth)


class SubtractorModule(CircuitModule):
    """Subtractor merging the two polarity crossbars of a signed unit.

    A subtractor is an adder plus an inverting stage on one operand
    (Sec. III.C.1, the optional dotted modules of Fig. 1(d)).
    """

    kind = "subtractor"

    def __init__(self, cmos: CmosNode, bits: int) -> None:
        if bits < 1:
            raise ValueError("subtractor needs at least 1 bit")
        self.cmos = cmos
        self.bits = bits

    def performance(self) -> Performance:
        """One subtraction."""
        gate_count = (
            gates.ripple_adder_gates(self.bits)
            + self.bits * gates.GE_INVERTER
        )
        depth = gates.ripple_adder_depth(self.bits) + gates.FO4_INVERTER
        return gates.logic_performance(self.cmos, gate_count, depth)
