"""Input peripheral circuit: per-row DAC + input transfer gates.

The reference computation unit drives every used crossbar row with an
``n``-bit DAC in the same cycle (Sec. III.C.3).  The model charges the
binary-weighted element array and an output driver per conversion; the
current actually delivered *into* the crossbar is accounted by the
crossbar's own compute-power model, so it is deliberately not double
counted here.
"""

from __future__ import annotations

from repro.circuits import gates
from repro.circuits.base import CircuitModule
from repro.report import Performance
from repro.tech.cmos import CmosNode
from repro.units import NS

# Area of one unit element (current source / cap) in F^2.
_UNIT_ELEMENT_AREA_F2 = 30.0

# Switched capacitance of one unit element, relative to a NAND2 gate cap.
_UNIT_ELEMENT_CAP_RATIO = 0.3

# Gate-equivalents of the output driver and input switch network.
_DRIVER_GE = 20.0

# Default conversion (settling) time of the reference DAC.
DEFAULT_DAC_CONVERSION_TIME = 5 * NS


class DacModule(CircuitModule):
    """One ``bits``-bit input DAC plus its transfer-gate switch.

    Parameters
    ----------
    cmos:
        CMOS technology node.
    bits:
        Input signal precision (``signal_bits`` of the configuration).
    conversion_time:
        Settling time of one conversion in seconds.
    """

    kind = "dac"

    def __init__(
        self,
        cmos: CmosNode,
        bits: int,
        conversion_time: float = DEFAULT_DAC_CONVERSION_TIME,
    ) -> None:
        if bits < 1:
            raise ValueError("DAC needs at least 1 bit")
        if conversion_time <= 0:
            raise ValueError("conversion_time must be positive")
        self.cmos = cmos
        self.bits = bits
        self.conversion_time = conversion_time

    @property
    def unit_elements(self) -> int:
        """Binary-weighted unit elements in the conversion array."""
        return 2**self.bits

    def performance(self) -> Performance:
        """One digital-to-analog conversion."""
        cmos = self.cmos
        element_area = (
            self.unit_elements * _UNIT_ELEMENT_AREA_F2 * cmos.feature_size**2
        )
        logic_ge = self.bits * gates.GE_DFF + _DRIVER_GE
        # On average half the unit elements switch per conversion.
        element_energy = (
            0.5
            * self.unit_elements
            * _UNIT_ELEMENT_CAP_RATIO
            * cmos.nand2_cap
            * cmos.vdd**2
        )
        return Performance(
            area=element_area + cmos.gate_area(logic_ge),
            dynamic_energy=element_energy + cmos.gate_energy(logic_ge),
            leakage_power=cmos.gate_leakage(logic_ge),
            latency=self.conversion_time,
        )
