"""The job manager: queued execution of validated payloads.

:class:`JobManager` owns the service's unit of multi-tenancy — a *job*
is one validated :class:`~repro.service.schema.SimulationPayload`
moving through ``queued -> running -> done`` (or ``failed`` /
``cancelled``).  The HTTP layer (:mod:`repro.service.server`) is a thin
shell over this class; all state lives here, guarded by one lock, so
the manager is equally usable in-process (tests drive it directly).

Dedupe is content-addressed end to end: the job id *is* the payload
fingerprint (:meth:`SimulationPayload.fingerprint`), so N identical
submissions collapse onto one record and one engine execution, and the
engine's sqlite :class:`~repro.runtime.cache.ResultCache` dedupes the
underlying sweep points across manager restarts.

Progress and lifecycle transitions are recorded as a monotonic
:class:`JobEvent` sequence per job; :meth:`JobManager.events_since`
blocks on a condition variable until new events arrive, which is what
the server's chunked ``/jobs/{id}/events`` stream long-polls.

Observability is job-scoped (DESIGN.md S23): the engine runs inside a
:class:`repro.obs.trace.JobContext`, so every span and labelled metric
sample it emits — in the executor thread *and* in worker processes —
carries the job id.  A :class:`~repro.obs.progress.ProgressTracker`
turns the engine's progress callbacks into ``eta_seconds`` /
``throughput`` on each ``progress`` event, and when the job finishes
its spans and metric samples are frozen onto the record (served by
``GET /jobs/{id}/trace`` and ``GET /jobs/{id}/metrics``) before the
job's label sets are rolled back into the base series — global scrape
cardinality stays bounded no matter how many jobs have run.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import JobCancelled, MnsimError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.progress import ProgressTracker
from repro.runtime.cache import ResultCache
from repro.runtime.metrics import RunMetrics
from repro.service.schema import SimulationPayload
from repro.service.workloads import render_document, run_payload

_log = logging.getLogger("repro.service")


class JobState:
    """String vocabulary for the job lifecycle (JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobEvent:
    """One entry in a job's monotonic event log.

    ``progress`` events additionally carry the live ETA estimate
    (``eta_seconds`` — None until the first completed chunk), the
    smoothed ``throughput`` in jobs/second, and a ``resources``
    snapshot (wall/CPU seconds, peak RSS, cache hits/misses, solver
    counters) accumulated at chunk boundaries.
    """

    seq: int
    event: str  # "state" or "progress"
    state: str
    done: int = 0
    total: int = 0
    error: Optional[Dict[str, Any]] = None
    eta_seconds: Optional[float] = None
    throughput: Optional[float] = None
    resources: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "seq": self.seq,
            "event": self.event,
            "state": self.state,
            "done": self.done,
            "total": self.total,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.event == "progress":
            out["eta_seconds"] = self.eta_seconds
            out["throughput"] = self.throughput
            if self.resources is not None:
                out["resources"] = self.resources
        return out


@dataclass
class JobRecord:
    """All manager-side state of one job (mutate under the lock)."""

    job_id: str
    payload: SimulationPayload
    state: str = JobState.QUEUED
    done: int = 0
    total: int = 0
    error: Optional[Dict[str, Any]] = None
    result_text: Optional[str] = None
    cancel_requested: bool = False
    events: List[JobEvent] = field(default_factory=list)
    # Live observability (filled while RUNNING):
    eta_seconds: Optional[float] = None
    throughput: Optional[float] = None
    resources: Optional[Dict[str, Any]] = None
    run_metrics: Optional[RunMetrics] = None
    # Frozen observability artefacts (filled just before the terminal
    # state event; served by /jobs/{id}/trace and /jobs/{id}/metrics):
    run_summary: Optional[Dict[str, Any]] = None
    metrics_families: Optional[Dict[str, Any]] = None
    metrics_text: Optional[str] = None
    trace_spans: Optional[List[Dict[str, Any]]] = None

    def status_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "job_id": self.job_id,
            "kind": self.payload.kind.value,
            "description": self.payload.describe(),
            "state": self.state,
            "done": self.done,
            "total": self.total,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.eta_seconds is not None:
            out["eta_seconds"] = self.eta_seconds
        if self.throughput is not None:
            out["throughput"] = self.throughput
        if self.resources:
            out["resources"] = self.resources
        return out


class JobManager:
    """Thread-backed queue of payload executions, deduped by content.

    Parameters
    ----------
    cache_dir:
        Directory for the engine's sqlite result cache; ``None`` runs
        uncached.  Each execution opens its own :class:`ResultCache`
        (sqlite connections are per-thread).
    workers:
        Executor threads.  The default of 1 serialises engine runs —
        the engine parallelises *inside* a job via its process pool, so
        one executor thread is usually the right degree.
    observe:
        Enable span/metric collection for the manager's lifetime so
        per-job traces, metrics and resource accounting are populated
        (the default — per-job observability is the service's
        contract).  If tracing was already on it is left untouched;
        otherwise :meth:`shutdown` restores the disabled state.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 workers: int = 1, observe: bool = True) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.cache_dir = cache_dir
        self.observe = observe
        self._obs_was_enabled = obs_trace.enabled()
        if observe and not self._obs_was_enabled:
            obs_trace.enable()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: Dict[str, JobRecord] = {}
        self._queue: Deque[str] = deque()
        self._order: List[str] = []
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------
    def submit(self, payload: SimulationPayload) -> Tuple[JobRecord, bool]:
        """Enqueue a validated payload; dedupe onto an existing job.

        Returns ``(record, created)``.  A payload whose fingerprint
        matches a queued / running / done job joins that job instead of
        re-running the engine; failed and cancelled jobs are retried
        with a fresh record under the same id.
        """
        job_id = payload.fingerprint()
        with self._wake:
            if self._closed:
                raise RuntimeError("manager is shut down")
            record = self._jobs.get(job_id)
            if record is not None and record.state not in (
                JobState.FAILED, JobState.CANCELLED
            ):
                obs_metrics.counter(
                    "repro_service_jobs_total",
                    "Service job submissions by outcome",
                ).inc(event="deduplicated")
                return record, False
            record = JobRecord(job_id=job_id, payload=payload)
            self._jobs[job_id] = record
            self._order.append(job_id)
            self._append_event(record, "state")
            self._queue.append(job_id)
            obs_metrics.counter(
                "repro_service_jobs_total",
                "Service job submissions by outcome",
            ).inc(event="submitted")
            self._wake.notify_all()
        return record, True

    # -- queries -------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Status dicts for every known job, in submission order."""
        with self._lock:
            seen = set()
            out = []
            for job_id in self._order:
                if job_id in seen:
                    continue
                seen.add(job_id)
                out.append(self._jobs[job_id].status_dict())
            return out

    def result_text(self, job_id: str) -> Optional[str]:
        """The stored result document of a finished job (else None)."""
        with self._lock:
            record = self._jobs.get(job_id)
            return record.result_text if record is not None else None

    def events_since(
        self,
        job_id: str,
        after: int = 0,
        timeout: Optional[float] = None,
    ) -> List[JobEvent]:
        """Events with ``seq > after``, blocking until some exist.

        Returns immediately (possibly empty) once the job is terminal;
        otherwise waits up to ``timeout`` seconds for new events.

        The wait is a ``Condition.wait_for`` on a *this-job* predicate:
        the manager's condition variable is shared by every job, so a
        bare ``wait`` would return early (and empty) whenever any
        *other* job appended an event — a long-poll on a quiet job
        degenerated into a busy poll under concurrent load.
        ``wait_for`` re-evaluates the predicate on each wakeup and
        keeps waiting out the remaining deadline until this job has
        fresh events or goes terminal.

        Ordering contract: a job that completes successfully always
        appends a final ``progress`` event with ``done == total``
        *before* its terminal ``state`` event (enforced in
        :meth:`_finish`), so a client that stops reading at the
        terminal event never ends on a stale count.
        """
        with self._wake:
            record = self._jobs.get(job_id)
            if record is None:
                return []

            def fresh() -> List[JobEvent]:
                return [e for e in record.events if e.seq > after]

            self._wake.wait_for(
                lambda: bool(fresh()) or record.state in JobState.TERMINAL,
                timeout=timeout,
            )
            return fresh()

    def wait(self, job_id: str, timeout: Optional[float] = None) -> str:
        """Block until the job reaches a terminal state; return it."""
        with self._wake:
            record = self._jobs.get(job_id)
            if record is None:
                raise KeyError(job_id)
            self._wake.wait_for(
                lambda: record.state in JobState.TERMINAL, timeout=timeout
            )
            return record.state

    # -- cancellation --------------------------------------------------
    def cancel(self, job_id: str) -> Optional[str]:
        """Request cancellation; returns the resulting state.

        A queued job is cancelled immediately (it never reaches the
        engine); a running job gets its cancel flag raised and stops at
        the engine's next chunk boundary via ``should_cancel``.
        """
        with self._wake:
            record = self._jobs.get(job_id)
            if record is None:
                return None
            if record.state == JobState.QUEUED:
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass  # a worker grabbed it between checks
                record.cancel_requested = True
                self._finish(record, JobState.CANCELLED)
            elif record.state == JobState.RUNNING:
                record.cancel_requested = True
            return record.state

    # -- shutdown ------------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop accepting work and join the executor threads."""
        with self._wake:
            self._closed = True
            for job_id in list(self._queue):
                record = self._jobs[job_id]
                record.cancel_requested = True
                self._finish(record, JobState.CANCELLED)
            self._queue.clear()
            for record in self._jobs.values():
                if record.state == JobState.RUNNING:
                    record.cancel_requested = True
            self._wake.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        if self.observe and not self._obs_was_enabled:
            obs_trace.disable()

    # -- internals -----------------------------------------------------
    def _append_event(
        self, record: JobRecord, event: str,
        error: Optional[Dict[str, Any]] = None,
    ) -> None:
        # Caller holds the lock.
        is_progress = event == "progress"
        record.events.append(JobEvent(
            seq=len(record.events) + 1,
            event=event,
            state=record.state,
            done=record.done,
            total=record.total,
            error=error,
            eta_seconds=record.eta_seconds if is_progress else None,
            throughput=record.throughput if is_progress else None,
            resources=(
                dict(record.resources)
                if is_progress and record.resources else None
            ),
        ))
        self._wake.notify_all()

    def _finish(self, record: JobRecord, state: str,
                error: Optional[Dict[str, Any]] = None) -> None:
        # Caller holds the lock.
        if state == JobState.DONE:
            # Stream ordering contract (see events_since): the terminal
            # "done" state event is always preceded by a progress event
            # carrying done == total.
            # Always appended (even if the engine's last report already
            # had done == total) because only this event carries the
            # complete resource snapshot — counters like jobs_executed
            # land after the engine's final progress callback.
            record.done = max(record.done, record.total)
            record.total = record.done
            record.eta_seconds = 0.0
            self._append_event(record, "progress")
        record.state = state
        record.error = error
        self._append_event(record, "state", error=error)
        obs_metrics.counter(
            "repro_service_jobs_total",
            "Service job submissions by outcome",
        ).inc(event=state)

    def _next_job(self) -> Optional[JobRecord]:
        with self._wake:
            while True:
                if self._closed:
                    return None
                while self._queue:
                    job_id = self._queue.popleft()
                    record = self._jobs[job_id]
                    if record.state != JobState.QUEUED:
                        continue  # cancelled while queued
                    record.state = JobState.RUNNING
                    self._append_event(record, "state")
                    return record
                self._wake.wait()

    def _worker_loop(self) -> None:
        while True:
            record = self._next_job()
            if record is None:
                return
            self._execute(record)

    def _execute(self, record: JobRecord) -> None:
        payload = record.payload
        metrics = RunMetrics()
        tracker = ProgressTracker(total=payload.total_work())
        with self._lock:
            record.run_metrics = metrics
            record.total = tracker.total

        def progress(done: int, total: int) -> None:
            tracker.update(done, total)
            snapshot = tracker.snapshot()
            with self._wake:
                record.done = tracker.done
                record.total = tracker.total
                record.eta_seconds = snapshot["eta_seconds"]
                record.throughput = snapshot["throughput"]
                record.resources = metrics.resource_snapshot()
                self._append_event(record, "progress")
            # The job label is injected by the active JobContext — the
            # sanctioned path for per-job labels (never pass job=).
            obs_metrics.gauge(
                "repro_service_job_progress",
                "Completed engine jobs of the most recent progress "
                "report, per service job",
            ).set(done)

        def should_cancel() -> bool:
            return record.cancel_requested

        # sqlite connections are bound to their creating thread, so the
        # executor opens a fresh handle per job rather than sharing one.
        cache = (
            ResultCache(self.cache_dir) if self.cache_dir is not None
            else None
        )
        outcome = JobState.FAILED
        error: Optional[Dict[str, Any]] = None
        text: Optional[str] = None
        try:
            # Everything the engine emits below — spans, metric
            # samples, resource accounting, in this thread and in the
            # worker processes — is tagged with this job id.
            with obs_trace.JobContext(record.job_id):
                with obs_trace.span(
                    "service.job", kind=payload.kind.value,
                    job=record.job_id[:12],
                ):
                    # Seed the stream with the payload's exact work
                    # estimate before any engine code runs.
                    progress(0, tracker.total)
                    document = run_payload(
                        payload,
                        cache=cache,
                        metrics=metrics,
                        progress=progress,
                        should_cancel=should_cancel,
                    )
                text = render_document(document)
            outcome = JobState.DONE
        except JobCancelled:
            outcome = JobState.CANCELLED
        except MnsimError as exc:
            error = {"type": type(exc).__name__, "message": str(exc)}
        except Exception as exc:
            _log.exception("job %s crashed", record.job_id[:12])
            error = {"type": type(exc).__name__, "message": str(exc)}
        finally:
            if cache is not None:
                cache.close()
        # Freeze trace/metrics artefacts and roll up the job's label
        # sets *before* the terminal event: the moment a client sees
        # the stream end, /jobs/{id}/trace and /jobs/{id}/metrics are
        # servable and global cardinality is already back to baseline.
        self._persist_observability(record, metrics)
        with self._wake:
            if outcome == JobState.DONE:
                record.result_text = text
                record.resources = metrics.resource_snapshot()
            self._finish(record, outcome, error=error)

    def _persist_observability(
        self, record: JobRecord, metrics: RunMetrics
    ) -> None:
        """Freeze the job's observability artefacts onto its record.

        The job's metric samples are snapshotted into a detached
        registry view and its spans are drained from the shared buffer;
        then :meth:`MetricsRegistry.rollup_job` folds the job's label
        sets back into the base series so the global ``/metrics``
        scrape does not grow with job count.
        """
        job_registry = obs_metrics.REGISTRY.filter_job(record.job_id)
        families = job_registry.to_dict()
        text = job_registry.to_prometheus()
        spans = obs_trace.take_job_spans(record.job_id)
        summary = metrics.to_dict()
        with self._lock:
            record.metrics_families = families
            record.metrics_text = text
            record.trace_spans = spans
            record.run_summary = summary
        evicted = obs_metrics.REGISTRY.rollup_job(record.job_id)
        if evicted:
            _log.debug(
                "job %s: rolled up %d job-labelled metric series",
                record.job_id[:12], evicted,
            )
