"""The job manager: queued execution of validated payloads.

:class:`JobManager` owns the service's unit of multi-tenancy — a *job*
is one validated :class:`~repro.service.schema.SimulationPayload`
moving through ``queued -> running -> done`` (or ``failed`` /
``cancelled``).  The HTTP layer (:mod:`repro.service.server`) is a thin
shell over this class; all state lives here, guarded by one lock, so
the manager is equally usable in-process (tests drive it directly).

Dedupe is content-addressed end to end: the job id *is* the payload
fingerprint (:meth:`SimulationPayload.fingerprint`), so N identical
submissions collapse onto one record and one engine execution, and the
engine's sqlite :class:`~repro.runtime.cache.ResultCache` dedupes the
underlying sweep points across manager restarts.

Progress and lifecycle transitions are recorded as a monotonic
:class:`JobEvent` sequence per job; :meth:`JobManager.events_since`
blocks on a condition variable until new events arrive, which is what
the server's chunked ``/jobs/{id}/events`` stream long-polls.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import JobCancelled, MnsimError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.cache import ResultCache
from repro.runtime.metrics import RunMetrics
from repro.service.schema import SimulationPayload
from repro.service.workloads import render_document, run_payload

_log = logging.getLogger("repro.service")


class JobState:
    """String vocabulary for the job lifecycle (JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobEvent:
    """One entry in a job's monotonic event log."""

    seq: int
    event: str  # "state" or "progress"
    state: str
    done: int = 0
    total: int = 0
    error: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "seq": self.seq,
            "event": self.event,
            "state": self.state,
            "done": self.done,
            "total": self.total,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass
class JobRecord:
    """All manager-side state of one job (mutate under the lock)."""

    job_id: str
    payload: SimulationPayload
    state: str = JobState.QUEUED
    done: int = 0
    total: int = 0
    error: Optional[Dict[str, Any]] = None
    result_text: Optional[str] = None
    cancel_requested: bool = False
    events: List[JobEvent] = field(default_factory=list)

    def status_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "job_id": self.job_id,
            "kind": self.payload.kind.value,
            "description": self.payload.describe(),
            "state": self.state,
            "done": self.done,
            "total": self.total,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


class JobManager:
    """Thread-backed queue of payload executions, deduped by content.

    Parameters
    ----------
    cache_dir:
        Directory for the engine's sqlite result cache; ``None`` runs
        uncached.  Each execution opens its own :class:`ResultCache`
        (sqlite connections are per-thread).
    workers:
        Executor threads.  The default of 1 serialises engine runs —
        the engine parallelises *inside* a job via its process pool, so
        one executor thread is usually the right degree.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.cache_dir = cache_dir
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: Dict[str, JobRecord] = {}
        self._queue: Deque[str] = deque()
        self._order: List[str] = []
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------
    def submit(self, payload: SimulationPayload) -> Tuple[JobRecord, bool]:
        """Enqueue a validated payload; dedupe onto an existing job.

        Returns ``(record, created)``.  A payload whose fingerprint
        matches a queued / running / done job joins that job instead of
        re-running the engine; failed and cancelled jobs are retried
        with a fresh record under the same id.
        """
        job_id = payload.fingerprint()
        with self._wake:
            if self._closed:
                raise RuntimeError("manager is shut down")
            record = self._jobs.get(job_id)
            if record is not None and record.state not in (
                JobState.FAILED, JobState.CANCELLED
            ):
                obs_metrics.counter(
                    "repro_service_jobs_total",
                    "Service job submissions by outcome",
                ).inc(event="deduplicated")
                return record, False
            record = JobRecord(job_id=job_id, payload=payload)
            self._jobs[job_id] = record
            self._order.append(job_id)
            self._append_event(record, "state")
            self._queue.append(job_id)
            obs_metrics.counter(
                "repro_service_jobs_total",
                "Service job submissions by outcome",
            ).inc(event="submitted")
            self._wake.notify_all()
        return record, True

    # -- queries -------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Status dicts for every known job, in submission order."""
        with self._lock:
            seen = set()
            out = []
            for job_id in self._order:
                if job_id in seen:
                    continue
                seen.add(job_id)
                out.append(self._jobs[job_id].status_dict())
            return out

    def result_text(self, job_id: str) -> Optional[str]:
        """The stored result document of a finished job (else None)."""
        with self._lock:
            record = self._jobs.get(job_id)
            return record.result_text if record is not None else None

    def events_since(
        self,
        job_id: str,
        after: int = 0,
        timeout: Optional[float] = None,
    ) -> List[JobEvent]:
        """Events with ``seq > after``, blocking until some exist.

        Returns immediately (possibly empty) once the job is terminal;
        otherwise waits up to ``timeout`` seconds for new events.
        """
        with self._wake:
            record = self._jobs.get(job_id)
            if record is None:
                return []

            def fresh() -> List[JobEvent]:
                return [e for e in record.events if e.seq > after]

            events = fresh()
            if events or record.state in JobState.TERMINAL:
                return events
            self._wake.wait(timeout=timeout)
            return fresh()

    def wait(self, job_id: str, timeout: Optional[float] = None) -> str:
        """Block until the job reaches a terminal state; return it."""
        with self._wake:
            record = self._jobs.get(job_id)
            if record is None:
                raise KeyError(job_id)
            self._wake.wait_for(
                lambda: record.state in JobState.TERMINAL, timeout=timeout
            )
            return record.state

    # -- cancellation --------------------------------------------------
    def cancel(self, job_id: str) -> Optional[str]:
        """Request cancellation; returns the resulting state.

        A queued job is cancelled immediately (it never reaches the
        engine); a running job gets its cancel flag raised and stops at
        the engine's next chunk boundary via ``should_cancel``.
        """
        with self._wake:
            record = self._jobs.get(job_id)
            if record is None:
                return None
            if record.state == JobState.QUEUED:
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass  # a worker grabbed it between checks
                record.cancel_requested = True
                self._finish(record, JobState.CANCELLED)
            elif record.state == JobState.RUNNING:
                record.cancel_requested = True
            return record.state

    # -- shutdown ------------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop accepting work and join the executor threads."""
        with self._wake:
            self._closed = True
            for job_id in list(self._queue):
                record = self._jobs[job_id]
                record.cancel_requested = True
                self._finish(record, JobState.CANCELLED)
            self._queue.clear()
            for record in self._jobs.values():
                if record.state == JobState.RUNNING:
                    record.cancel_requested = True
            self._wake.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)

    # -- internals -----------------------------------------------------
    def _append_event(
        self, record: JobRecord, event: str,
        error: Optional[Dict[str, Any]] = None,
    ) -> None:
        # Caller holds the lock.
        record.events.append(JobEvent(
            seq=len(record.events) + 1,
            event=event,
            state=record.state,
            done=record.done,
            total=record.total,
            error=error,
        ))
        self._wake.notify_all()

    def _finish(self, record: JobRecord, state: str,
                error: Optional[Dict[str, Any]] = None) -> None:
        # Caller holds the lock.
        record.state = state
        record.error = error
        self._append_event(record, "state", error=error)
        obs_metrics.counter(
            "repro_service_jobs_total",
            "Service job submissions by outcome",
        ).inc(event=state)

    def _next_job(self) -> Optional[JobRecord]:
        with self._wake:
            while True:
                if self._closed:
                    return None
                while self._queue:
                    job_id = self._queue.popleft()
                    record = self._jobs[job_id]
                    if record.state != JobState.QUEUED:
                        continue  # cancelled while queued
                    record.state = JobState.RUNNING
                    self._append_event(record, "state")
                    return record
                self._wake.wait()

    def _worker_loop(self) -> None:
        while True:
            record = self._next_job()
            if record is None:
                return
            self._execute(record)

    def _execute(self, record: JobRecord) -> None:
        payload = record.payload

        def progress(done: int, total: int) -> None:
            with self._wake:
                record.done = done
                record.total = total
                self._append_event(record, "progress")
            obs_metrics.gauge(
                "repro_service_job_progress",
                "Completed engine jobs of the most recent progress "
                "report, per service job",
            ).set(done, job=record.job_id[:12])

        def should_cancel() -> bool:
            return record.cancel_requested

        # sqlite connections are bound to their creating thread, so the
        # executor opens a fresh handle per job rather than sharing one.
        cache = (
            ResultCache(self.cache_dir) if self.cache_dir is not None
            else None
        )
        metrics = RunMetrics()
        try:
            with obs_trace.span(
                "service.job", kind=payload.kind.value,
                job=record.job_id[:12],
            ):
                document = run_payload(
                    payload,
                    cache=cache,
                    metrics=metrics,
                    progress=progress,
                    should_cancel=should_cancel,
                )
            text = render_document(document)
            with self._wake:
                record.result_text = text
                record.done = max(record.done, record.total)
                self._finish(record, JobState.DONE)
        except JobCancelled:
            with self._wake:
                self._finish(record, JobState.CANCELLED)
        except MnsimError as exc:
            with self._wake:
                self._finish(record, JobState.FAILED, error={
                    "type": type(exc).__name__, "message": str(exc),
                })
        except Exception as exc:
            _log.exception("job %s crashed", record.job_id[:12])
            with self._wake:
                self._finish(record, JobState.FAILED, error={
                    "type": type(exc).__name__, "message": str(exc),
                })
        finally:
            if cache is not None:
                cache.close()
