"""Stdlib HTTP front-end for the job manager.

A deliberately dependency-free JSON API over
:class:`~repro.service.jobs.JobManager`, built on
``http.server.ThreadingHTTPServer`` (one thread per connection, which
the long-polling event stream needs):

===========  ==============================  ==================================
Method       Path                            Meaning
===========  ==============================  ==================================
``POST``     ``/jobs``                       Submit a payload (202; 400 with a
                                             structured, path-addressed error
                                             for invalid documents)
``GET``      ``/jobs``                       List known jobs
``GET``      ``/jobs/{id}``                  One job's status
``GET``      ``/jobs/{id}/result``           The stored result document
                                             (409 until the job is done)
``GET``      ``/jobs/{id}/events``           Chunked JSON-lines progress
                                             stream (``?after=N`` resumes)
``GET``      ``/jobs/{id}/trace``            The job's spans as a Chrome
                                             trace-event JSON document
``GET``      ``/jobs/{id}/metrics``          The job's metric samples (JSON;
                                             ``?format=prometheus`` for text
                                             exposition)
``POST``     ``/jobs/{id}/cancel``           Cancel a queued/running job
``GET``      ``/metrics``                    Prometheus text exposition
``GET``      ``/healthz``                    Liveness probe
===========  ==============================  ==================================

Every response carries an explicit ``Content-Length`` except the event
stream, which uses HTTP/1.1 chunked transfer and terminates once the
job reaches a terminal state.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import ValidationError
from repro.jsonio import loads_strict
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.jobs import JobManager, JobState
from repro.service.schema import SimulationPayload

_log = logging.getLogger("repro.service")

#: Upper bound on accepted payload documents (1 MiB is generous for
#: configuration-sized JSON and keeps slow-loris bodies cheap).
MAX_BODY_BYTES = 1 << 20

#: Long-poll interval of the event stream; bounds how long a client
#: waits between keep-alive flushes when a job is idle.
EVENT_POLL_SECONDS = 1.0


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`JobManager`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 manager: JobManager) -> None:
        super().__init__(address, _Handler)
        self.manager = manager


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceServer

    # -- plumbing ------------------------------------------------------
    @property
    def manager(self) -> JobManager:
        return self.server.manager

    def log_message(self, fmt: str, *args: Any) -> None:
        _log.debug("%s %s", self.address_string(), fmt % args)

    def _send_bytes(self, status: int, body: bytes,
                    content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, doc: Dict[str, Any]) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        self._send_bytes(status, body, "application/json")

    def _send_error_json(self, status: int, message: str,
                         **extra: Any) -> None:
        doc: Dict[str, Any] = {"error": {"message": message}}
        doc["error"].update(extra)
        self._send_json(status, doc)
        obs_metrics.counter(
            "repro_service_http_errors_total",
            "Service HTTP error responses by status",
        ).inc(status=status)

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_error_json(413, "request body missing or too large")
            return None
        return self.rfile.read(length)

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._send_bytes(200, b"ok\n", "text/plain")
            elif parts == ["metrics"]:
                text = obs_metrics.REGISTRY.to_prometheus()
                self._send_bytes(
                    200, text.encode("utf-8"),
                    "text/plain; version=0.0.4",
                )
            elif parts == ["jobs"]:
                self._send_json(200, {"jobs": self.manager.snapshot()})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._get_job(parts[1])
            elif len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "result":
                self._get_result(parts[1])
            elif len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "events":
                self._stream_events(parts[1], url.query)
            elif len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "trace":
                self._get_trace(parts[1])
            elif len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "metrics":
                self._get_job_metrics(parts[1], url.query)
            else:
                self._send_error_json(404, f"no such route: {url.path}")
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-response (common for event streams).
            obs_metrics.counter(
                "repro_service_disconnects_total",
                "Client disconnects during response writes",
            ).inc()

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                self._submit_job()
            elif len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "cancel":
                self._cancel_job(parts[1])
            else:
                self._send_error_json(404, f"no such route: {url.path}")
        except (BrokenPipeError, ConnectionResetError):
            obs_metrics.counter(
                "repro_service_disconnects_total",
                "Client disconnects during response writes",
            ).inc()

    # -- handlers ------------------------------------------------------
    def _submit_job(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            # Strict parse: a duplicate key is a path-addressed
            # ValidationError (the structured 400 below), never a
            # silently-shadowed binding (see repro.jsonio).
            data = loads_strict(body.decode("utf-8"))
            payload = SimulationPayload.from_dict(data)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, f"request body is not JSON: {exc}")
            return
        except ValidationError as exc:
            # The structured rejection contract: the offending field's
            # path, value, and allowed vocabulary — never a traceback,
            # and the engine was never reached.
            self._send_json(400, {"error": exc.to_dict()})
            obs_metrics.counter(
                "repro_service_http_errors_total",
                "Service HTTP error responses by status",
            ).inc(status=400)
            return
        record, created = self.manager.submit(payload)
        self._send_json(202 if created else 200, {
            "job_id": record.job_id,
            "state": record.state,
            "deduplicated": not created,
        })

    def _get_job(self, job_id: str) -> None:
        record = self.manager.get(job_id)
        if record is None:
            self._send_error_json(404, f"unknown job {job_id!r}")
            return
        self._send_json(200, record.status_dict())

    def _get_result(self, job_id: str) -> None:
        record = self.manager.get(job_id)
        if record is None:
            self._send_error_json(404, f"unknown job {job_id!r}")
            return
        if record.state != JobState.DONE or record.result_text is None:
            self._send_error_json(
                409, f"job is {record.state}, result not available",
                state=record.state,
            )
            return
        # The stored text verbatim — this is the byte-identity surface.
        self._send_bytes(
            200, record.result_text.encode("utf-8"), "application/json"
        )

    def _get_trace(self, job_id: str) -> None:
        record = self.manager.get(job_id)
        if record is None:
            self._send_error_json(404, f"unknown job {job_id!r}")
            return
        # Finished jobs serve their frozen span snapshot; running jobs
        # serve whatever has completed so far from the live buffer.
        spans = record.trace_spans
        if spans is None:
            spans = obs_trace.spans_for_job(record.job_id)
        self._send_json(200, {
            "displayTimeUnit": "ms",
            "traceEvents": obs_trace.to_chrome_events(spans),
        })

    def _get_job_metrics(self, job_id: str, query: str) -> None:
        record = self.manager.get(job_id)
        if record is None:
            self._send_error_json(404, f"unknown job {job_id!r}")
            return
        params = parse_qs(query)
        fmt = params.get("format", ["json"])[0]
        if fmt == "prometheus":
            text = record.metrics_text
            if text is None:
                text = obs_metrics.REGISTRY.filter_job(
                    record.job_id
                ).to_prometheus()
            self._send_bytes(
                200, text.encode("utf-8"), "text/plain; version=0.0.4"
            )
            return
        if fmt != "json":
            self._send_error_json(
                400, f"unknown format {fmt!r} (expected json or prometheus)"
            )
            return
        families = record.metrics_families
        if families is None:
            families = obs_metrics.REGISTRY.filter_job(
                record.job_id
            ).to_dict()
        self._send_json(200, {
            "job_id": record.job_id,
            "state": record.state,
            "families": families,
            "resources": dict(record.resources or {}),
            "run": record.run_summary,
        })

    def _stream_events(self, job_id: str, query: str) -> None:
        record = self.manager.get(job_id)
        if record is None:
            self._send_error_json(404, f"unknown job {job_id!r}")
            return
        params = parse_qs(query)
        try:
            after = int(params.get("after", ["0"])[0])
        except ValueError:
            self._send_error_json(400, "after must be an integer")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def write_chunk(data: bytes) -> None:
            self.wfile.write(b"%x\r\n%s\r\n" % (len(data), data))

        while True:
            events = self.manager.events_since(
                job_id, after=after, timeout=EVENT_POLL_SECONDS
            )
            for event in events:
                after = max(after, event.seq)
                line = json.dumps(event.to_dict(), sort_keys=True) + "\n"
                write_chunk(line.encode("utf-8"))
            self.wfile.flush()
            current = self.manager.get(job_id)
            if current is None or (
                current.state in JobState.TERMINAL
                and not self.manager.events_since(job_id, after=after,
                                                  timeout=0)
            ):
                break
        write_chunk(b"")  # terminating zero-length chunk

    def _cancel_job(self, job_id: str) -> None:
        state = self.manager.cancel(job_id)
        if state is None:
            self._send_error_json(404, f"unknown job {job_id!r}")
            return
        self._send_json(200, {"job_id": job_id, "state": state})


def serve(host: str, port: int,
          manager: JobManager) -> ServiceServer:
    """Bind a :class:`ServiceServer` (port 0 picks an ephemeral port)."""
    server = ServiceServer((host, port), manager)
    _log.info(
        "service listening on http://%s:%d/", *server.server_address[:2]
    )
    return server
