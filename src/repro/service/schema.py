"""Validated simulation payloads: the service's input contract.

:class:`SimulationPayload` is the single, self-contained contract that
defines one submittable unit of work — the FastSim ``SimulationPayload``
philosophy (SNIPPETS.md #2) rebuilt on stdlib dataclasses: strict typing,
``Enum`` vocabularies instead of magic strings, and upfront validation
that rejects malformed or logically inconsistent input with structured,
path-addressed :class:`~repro.errors.ValidationError`\\ s *before* any
engine code runs.

A payload is a plain JSON document::

    {
      "kind": "montecarlo",                 # PayloadKind vocabulary
      "config": {"crossbar_size": 64},      # SimConfig fields (optional)
      "montecarlo": {"trials": 8, "seed": 0, "size": 16},
      "execution": {"jobs": 2}              # engine knobs (optional)
    }

Each payload kind owns exactly one workload section (``sweep`` for
``explore``, ``montecarlo``, ``faults``); sections that do not belong to
the declared kind are rejected as inconsistent rather than silently
ignored — the validation-first stance is that a payload the server does
not fully understand must never run.

Validated payloads canonicalise into the existing engine structures
(:class:`~repro.config.SimConfig`, :class:`~repro.dse.space.DesignSpace`,
:class:`~repro.faults.campaign.CampaignSpec`,
:class:`~repro.runtime.pool.RunPolicy`) and carry a deterministic
content-addressed :meth:`SimulationPayload.fingerprint` — the service's
job id — derived from the same canonical serialization the sqlite result
cache keys on, so identical submissions dedupe end to end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.dse.space import DesignSpace
from repro.errors import ConfigError, ValidationError
from repro.faults.campaign import CampaignSpec
from repro.faults.models import FAULT_MODES
from repro.nn.networks import (
    Network,
    caffenet,
    jpeg_autoencoder,
    large_bank_layer,
    mlp,
    validation_mlp,
    vgg16,
)
from repro.runtime.jobs import content_key
from repro.runtime.pool import RunPolicy

#: Version stamp folded into every payload fingerprint (and therefore
#: every job id); bump on any change to payload semantics.
PAYLOAD_SCHEMA = "service-payload-v1"


# ----------------------------------------------------------------------
# Enum vocabularies
# ----------------------------------------------------------------------
class PayloadKind(enum.Enum):
    """The workload families the service accepts."""

    SIMULATE = "simulate"
    EXPLORE = "explore"
    MONTECARLO = "montecarlo"
    FAULTS = "faults"
    CAMPAIGN = "campaign"


class NetworkTopology(enum.Enum):
    """Built-in network topologies plus the parametric ``mlp``."""

    MLP = "mlp"
    VALIDATION_MLP = "validation-mlp"
    JPEG = "jpeg"
    LARGE_BANK = "large-bank"
    CAFFENET = "caffenet"
    VGG16 = "vgg16"


class DeviceModel(enum.Enum):
    """Memristor device vocabulary (see :mod:`repro.tech.memristor`)."""

    RRAM = "RRAM"
    PCM = "PCM"
    IDEAL = "IDEAL"


class SweepMode(enum.Enum):
    """How an ``explore`` payload traverses its design space."""

    GRID = "grid"


class InputMode(enum.Enum):
    """Monte-Carlo input drive protocol."""

    RANDOM = "random"
    FULL = "full"


class FaultMode(enum.Enum):
    """Fault-injection vocabulary (mirrors ``faults.models.FAULT_MODES``)."""

    STUCK_LOW = "stuck_low"
    STUCK_HIGH = "stuck_high"
    STUCK_MIXED = "stuck_mixed"
    OPEN_CELL = "open_cell"
    LINE_OPEN = "line_open"
    LINE_SHORT = "line_short"
    DRIFT = "drift"


assert tuple(m.value for m in FaultMode) == FAULT_MODES, (
    "FaultMode enum drifted from faults.models.FAULT_MODES"
)

_BUILTIN_NETWORKS = {
    NetworkTopology.VALIDATION_MLP: validation_mlp,
    NetworkTopology.JPEG: jpeg_autoencoder,
    NetworkTopology.LARGE_BANK: large_bank_layer,
    NetworkTopology.CAFFENET: caffenet,
    NetworkTopology.VGG16: vgg16,
}


# ----------------------------------------------------------------------
# Validation helpers (path-addressed)
# ----------------------------------------------------------------------
def _expect_mapping(value: Any, path: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ValidationError(
            "must be a JSON object", path=path, value=value
        )
    return value

def _reject_unknown_keys(
    data: Mapping[str, Any], allowed: Sequence[str], path: str
) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        where = f"{path}.{unknown[0]}" if path else unknown[0]
        raise ValidationError(
            "unknown field", path=where, value=unknown[0],
            allowed=sorted(allowed),
        )

def _expect_int(
    value: Any, path: str, *, minimum: Optional[int] = None
) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            "must be an integer", path=path, value=value
        )
    if minimum is not None and value < minimum:
        raise ValidationError(
            f"must be >= {minimum}", path=path, value=value
        )
    return value

def _expect_number(
    value: Any, path: str, *, minimum: Optional[float] = None
) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(
            "must be a number", path=path, value=value
        )
    if minimum is not None and value < minimum:
        raise ValidationError(
            f"must be >= {minimum:g}", path=path, value=value
        )
    return float(value)

def _expect_enum(cls: type, value: Any, path: str) -> Any:
    allowed = [member.value for member in cls]
    try:
        return cls(value)
    except ValueError:
        raise ValidationError(
            f"not in the {cls.__name__} vocabulary",
            path=path, value=value, allowed=allowed,
        ) from None

def _reprefix(error: ValidationError, prefix: str) -> ValidationError:
    """Re-raise helper: prepend ``prefix`` to an error's field path."""
    path = f"{prefix}.{error.path}" if error.path else prefix
    message = str(error)
    # Strip the inner "path: " prefix so it is not spelled twice.
    if error.path and message.startswith(f"{error.path}: "):
        message = message[len(error.path) + 2:]
    kwargs: Dict[str, Any] = {"path": path}
    if error.has_value:
        kwargs["value"] = error.value
    if error.allowed is not None:
        # The inner message already spells the vocabulary.
        message = message.split(" (allowed:")[0]
        kwargs["allowed"] = error.allowed
    if error.has_value:
        message = message.split(" (got")[0]
    return ValidationError(message, **kwargs)


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NetworkSpec:
    """A network topology selection (built-in name or parametric MLP)."""

    topology: NetworkTopology
    sizes: Optional[Tuple[int, ...]] = None

    @classmethod
    def from_dict(cls, data: Any, path: str = "network") -> "NetworkSpec":
        data = _expect_mapping(data, path)
        _reject_unknown_keys(data, ("topology", "sizes"), path)
        if "topology" not in data:
            raise ValidationError(
                "missing required field", path=f"{path}.topology",
                allowed=[m.value for m in NetworkTopology],
            )
        topology = _expect_enum(
            NetworkTopology, data["topology"], f"{path}.topology"
        )
        sizes = data.get("sizes")
        if topology is NetworkTopology.MLP:
            if not isinstance(sizes, (list, tuple)) or len(sizes) < 2:
                raise ValidationError(
                    "mlp topology needs a list of >= 2 layer sizes",
                    path=f"{path}.sizes", value=sizes,
                )
            sizes = tuple(
                _expect_int(s, f"{path}.sizes[{i}]", minimum=1)
                for i, s in enumerate(sizes)
            )
        elif sizes is not None:
            raise ValidationError(
                f"sizes only apply to the 'mlp' topology, not "
                f"{topology.value!r}", path=f"{path}.sizes", value=sizes,
            )
        else:
            sizes = None
        return cls(topology=topology, sizes=sizes)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"topology": self.topology.value}
        if self.sizes is not None:
            out["sizes"] = list(self.sizes)
        return out

    def spec_string(self) -> str:
        """The CLI network-spec spelling (``mlp:a,b`` or a built-in)."""
        if self.topology is NetworkTopology.MLP:
            return "mlp:" + ",".join(str(s) for s in self.sizes or ())
        return self.topology.value

    def build(self) -> Network:
        """Materialise the :class:`~repro.nn.networks.Network`."""
        if self.topology is NetworkTopology.MLP:
            return mlp(list(self.sizes or ()), name=self.spec_string())
        return _BUILTIN_NETWORKS[self.topology]()


@dataclass(frozen=True)
class SweepSpec:
    """Declarative design-space sweep for ``explore`` payloads."""

    mode: SweepMode = SweepMode.GRID
    crossbar_sizes: Tuple[int, ...] = (64, 128, 256, 512)
    parallelism_degrees: Tuple[int, ...] = (1, 16, 256)
    interconnect_nodes: Tuple[int, ...] = (18, 28, 45)
    max_error_rate: Optional[float] = None

    _FIELDS = ("mode", "crossbar_sizes", "parallelism_degrees",
               "interconnect_nodes", "max_error_rate")

    @classmethod
    def from_dict(cls, data: Any, path: str = "sweep") -> "SweepSpec":
        data = _expect_mapping(data, path)
        _reject_unknown_keys(data, cls._FIELDS, path)
        mode = _expect_enum(
            SweepMode, data.get("mode", SweepMode.GRID.value),
            f"{path}.mode",
        )
        axes: Dict[str, Tuple[int, ...]] = {}
        for axis in ("crossbar_sizes", "parallelism_degrees",
                     "interconnect_nodes"):
            raw = data.get(axis)
            if raw is None:
                axes[axis] = getattr(cls, axis)
                continue
            if not isinstance(raw, (list, tuple)) or not raw:
                raise ValidationError(
                    "must be a non-empty list of integers",
                    path=f"{path}.{axis}", value=raw,
                )
            axes[axis] = tuple(
                _expect_int(v, f"{path}.{axis}[{i}]", minimum=1)
                for i, v in enumerate(raw)
            )
        max_error = data.get("max_error_rate")
        if max_error is not None:
            max_error = _expect_number(
                max_error, f"{path}.max_error_rate", minimum=0.0
            )
            if max_error > 1.0:
                raise ValidationError(
                    "must lie in [0, 1]",
                    path=f"{path}.max_error_rate", value=max_error,
                )
        spec = cls(mode=mode, max_error_rate=max_error, **axes)
        spec.to_design_space()  # surface DesignSpace vocabulary errors now
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode.value,
            "crossbar_sizes": list(self.crossbar_sizes),
            "parallelism_degrees": list(self.parallelism_degrees),
            "interconnect_nodes": list(self.interconnect_nodes),
            "max_error_rate": self.max_error_rate,
        }

    def to_design_space(self) -> DesignSpace:
        try:
            return DesignSpace(
                crossbar_sizes=self.crossbar_sizes,
                parallelism_degrees=self.parallelism_degrees,
                interconnect_nodes=self.interconnect_nodes,
            )
        except ValidationError as exc:
            raise _reprefix(exc, "sweep") from None
        except ConfigError as exc:
            raise ValidationError(str(exc), path="sweep") from None


@dataclass(frozen=True)
class MonteCarloSpec:
    """Monte-Carlo accuracy sampling parameters."""

    trials: int = 8
    seed: int = 0
    size: Optional[int] = None
    sigma: Optional[float] = None
    input_mode: InputMode = InputMode.RANDOM
    inputs_per_trial: int = 1

    _FIELDS = ("trials", "seed", "size", "sigma", "input_mode",
               "inputs_per_trial")

    @classmethod
    def from_dict(
        cls, data: Any, path: str = "montecarlo"
    ) -> "MonteCarloSpec":
        data = _expect_mapping(data, path)
        _reject_unknown_keys(data, cls._FIELDS, path)
        trials = _expect_int(
            data.get("trials", cls.trials), f"{path}.trials", minimum=1
        )
        seed = _expect_int(data.get("seed", cls.seed), f"{path}.seed")
        size = data.get("size")
        if size is not None:
            size = _expect_int(size, f"{path}.size", minimum=2)
        sigma = data.get("sigma")
        if sigma is not None:
            sigma = _expect_number(sigma, f"{path}.sigma", minimum=0.0)
        input_mode = _expect_enum(
            InputMode, data.get("input_mode", InputMode.RANDOM.value),
            f"{path}.input_mode",
        )
        inputs_per_trial = _expect_int(
            data.get("inputs_per_trial", cls.inputs_per_trial),
            f"{path}.inputs_per_trial", minimum=1,
        )
        if inputs_per_trial > 1 and input_mode is not InputMode.RANDOM:
            raise ValidationError(
                "inputs_per_trial > 1 requires input_mode='random'",
                path=f"{path}.inputs_per_trial", value=inputs_per_trial,
            )
        return cls(
            trials=trials, seed=seed, size=size, sigma=sigma,
            input_mode=input_mode, inputs_per_trial=inputs_per_trial,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trials": self.trials,
            "seed": self.seed,
            "size": self.size,
            "sigma": self.sigma,
            "input_mode": self.input_mode.value,
            "inputs_per_trial": self.inputs_per_trial,
        }


@dataclass(frozen=True)
class FaultsSpec:
    """Fault-injection campaign parameters."""

    networks: Tuple[str, ...] = ("crossbar",)
    modes: Tuple[FaultMode, ...] = (FaultMode.STUCK_MIXED,)
    rates: Tuple[float, ...] = (0.0, 0.01, 0.02, 0.05)
    trials: int = 8
    seed: int = 0
    size: int = 16
    device: DeviceModel = DeviceModel.IDEAL
    segment_resistance: float = 1.0

    _FIELDS = ("networks", "modes", "rates", "trials", "seed", "size",
               "device", "segment_resistance")

    @classmethod
    def from_dict(cls, data: Any, path: str = "faults") -> "FaultsSpec":
        data = _expect_mapping(data, path)
        _reject_unknown_keys(data, cls._FIELDS, path)
        networks = data.get("networks", list(cls.networks))
        if not isinstance(networks, (list, tuple)) or not networks:
            raise ValidationError(
                "must be a non-empty list of network specs",
                path=f"{path}.networks", value=networks,
            )
        for i, net in enumerate(networks):
            if not isinstance(net, str):
                raise ValidationError(
                    "network specs are strings ('crossbar' or "
                    "'mlp:a,b,...')", path=f"{path}.networks[{i}]",
                    value=net,
                )
        raw_modes = data.get(
            "modes", [m.value for m in cls.modes]
        )
        if not isinstance(raw_modes, (list, tuple)) or not raw_modes:
            raise ValidationError(
                "must be a non-empty list of fault modes",
                path=f"{path}.modes", value=raw_modes,
                allowed=[m.value for m in FaultMode],
            )
        modes = tuple(
            _expect_enum(FaultMode, m, f"{path}.modes[{i}]")
            for i, m in enumerate(raw_modes)
        )
        raw_rates = data.get("rates", list(cls.rates))
        if not isinstance(raw_rates, (list, tuple)) or not raw_rates:
            raise ValidationError(
                "must be a non-empty list of fault rates",
                path=f"{path}.rates", value=raw_rates,
            )
        rates = tuple(
            _expect_number(r, f"{path}.rates[{i}]", minimum=0.0)
            for i, r in enumerate(raw_rates)
        )
        spec = cls(
            networks=tuple(networks),
            modes=modes,
            rates=rates,
            trials=_expect_int(
                data.get("trials", cls.trials), f"{path}.trials", minimum=1
            ),
            seed=_expect_int(data.get("seed", cls.seed), f"{path}.seed"),
            size=_expect_int(
                data.get("size", cls.size), f"{path}.size", minimum=2
            ),
            device=_expect_enum(
                DeviceModel, data.get("device", cls.device.value),
                f"{path}.device",
            ),
            segment_resistance=_expect_number(
                data.get("segment_resistance", cls.segment_resistance),
                f"{path}.segment_resistance", minimum=0.0,
            ),
        )
        spec.to_campaign_spec()  # cross-field rules live in CampaignSpec
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "networks": list(self.networks),
            "modes": [m.value for m in self.modes],
            "rates": list(self.rates),
            "trials": self.trials,
            "seed": self.seed,
            "size": self.size,
            "device": self.device.value,
            "segment_resistance": self.segment_resistance,
        }

    def to_campaign_spec(self) -> CampaignSpec:
        try:
            return CampaignSpec(
                networks=self.networks,
                fault_modes=tuple(m.value for m in self.modes),
                fault_rates=self.rates,
                trials=self.trials,
                seed=self.seed,
                size=self.size,
                device=self.device.value,
                segment_resistance=self.segment_resistance,
            )
        except ValidationError as exc:
            raise _reprefix(exc, "faults") from None
        except ConfigError as exc:
            raise ValidationError(str(exc), path="faults") from None


@dataclass(frozen=True)
class ExecutionSpec:
    """Engine knobs — the 6tisch-style ``execution`` block.

    ``min_sweep_for_parallel`` defaults to 16 for service jobs (tiny
    submissions run serially instead of paying pool dispatch), higher
    than the engine-wide default of 2.
    """

    jobs: int = 1
    chunk_size: Optional[int] = None
    timeout: Optional[float] = None
    retries: int = 1
    min_sweep_for_parallel: int = 16

    _FIELDS = ("jobs", "chunk_size", "timeout", "retries",
               "min_sweep_for_parallel")

    @classmethod
    def from_dict(
        cls, data: Any, path: str = "execution"
    ) -> "ExecutionSpec":
        data = _expect_mapping(data, path)
        _reject_unknown_keys(data, cls._FIELDS, path)
        chunk_size = data.get("chunk_size")
        if chunk_size is not None:
            chunk_size = _expect_int(
                chunk_size, f"{path}.chunk_size", minimum=1
            )
        timeout = data.get("timeout")
        if timeout is not None:
            timeout = _expect_number(timeout, f"{path}.timeout")
            if timeout <= 0:
                raise ValidationError(
                    "must be positive when given",
                    path=f"{path}.timeout", value=timeout,
                )
        return cls(
            jobs=_expect_int(
                data.get("jobs", cls.jobs), f"{path}.jobs", minimum=0
            ),
            chunk_size=chunk_size,
            timeout=timeout,
            retries=_expect_int(
                data.get("retries", cls.retries), f"{path}.retries",
                minimum=0,
            ),
            min_sweep_for_parallel=_expect_int(
                data.get("min_sweep_for_parallel",
                         cls.min_sweep_for_parallel),
                f"{path}.min_sweep_for_parallel", minimum=2,
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "chunk_size": self.chunk_size,
            "timeout": self.timeout,
            "retries": self.retries,
            "min_sweep_for_parallel": self.min_sweep_for_parallel,
        }

    def to_policy(self) -> RunPolicy:
        return RunPolicy(
            jobs=self.jobs,
            chunk_size=self.chunk_size,
            timeout=self.timeout,
            retries=self.retries,
            min_sweep_for_parallel=self.min_sweep_for_parallel,
        )


# ----------------------------------------------------------------------
# The payload
# ----------------------------------------------------------------------
#: Which workload section each kind owns (``None`` = no section).
_KIND_SECTION = {
    PayloadKind.SIMULATE: None,
    PayloadKind.EXPLORE: "sweep",
    PayloadKind.MONTECARLO: "montecarlo",
    PayloadKind.FAULTS: "faults",
    PayloadKind.CAMPAIGN: "campaign",
}

#: Kinds that map a network through the accelerator hierarchy; faults
#: and montecarlo drive crossbars directly from their own sections.
_NETWORK_KINDS = (PayloadKind.SIMULATE, PayloadKind.EXPLORE)

_TOP_LEVEL_FIELDS = ("kind", "config", "network", "sweep", "montecarlo",
                     "faults", "campaign", "execution")


@dataclass(frozen=True)
class SimulationPayload:
    """One validated, content-addressable unit of service work."""

    kind: PayloadKind
    config: SimConfig = field(default_factory=SimConfig)
    network: Optional[NetworkSpec] = None
    sweep: Optional[SweepSpec] = None
    montecarlo: Optional[MonteCarloSpec] = None
    faults: Optional[FaultsSpec] = None
    # A validated repro.campaign.config.CampaignConfig (typed Any to
    # keep repro.campaign a lazy import — it imports this module).
    campaign: Optional[Any] = None
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)

    @classmethod
    def from_dict(cls, data: Any) -> "SimulationPayload":
        """Validate a JSON document into a payload (the only entrance).

        Raises :class:`~repro.errors.ValidationError` naming the first
        offending field; on success every engine structure the payload
        canonicalises into has already been constructed once, so the
        job runner cannot hit a configuration error later.
        """
        data = _expect_mapping(data, "")
        _reject_unknown_keys(data, _TOP_LEVEL_FIELDS, "")
        if "kind" not in data:
            raise ValidationError(
                "missing required field", path="kind",
                allowed=[k.value for k in PayloadKind],
            )
        kind = _expect_enum(PayloadKind, data["kind"], "kind")

        if kind is PayloadKind.CAMPAIGN:
            return cls._campaign_from_dict(data)

        config_data = data.get("config", {})
        _expect_mapping(config_data, "config")
        try:
            config = SimConfig.from_dict(dict(config_data))
        except ValidationError as exc:
            raise _reprefix(exc, "config") from None
        except ConfigError as exc:
            raise ValidationError(str(exc), path="config") from None

        # Network section: required by simulate/explore, rejected for
        # the crossbar-level kinds (inconsistent input never runs).
        network: Optional[NetworkSpec] = None
        if kind in _NETWORK_KINDS:
            if "network" not in data:
                raise ValidationError(
                    f"required for kind={kind.value!r}", path="network",
                )
            network = NetworkSpec.from_dict(data["network"])
        elif "network" in data:
            raise ValidationError(
                f"does not apply to kind={kind.value!r} (crossbar-level "
                "workloads define their own geometry)", path="network",
            )

        # Workload sections: exactly the declared kind's section may be
        # present; the others are rejected, not ignored.
        own_section = _KIND_SECTION[kind]
        for section in ("sweep", "montecarlo", "faults", "campaign"):
            if section in data and section != own_section:
                raise ValidationError(
                    f"does not apply to kind={kind.value!r}",
                    path=section,
                )
        sweep = montecarlo = faults = None
        if kind is PayloadKind.EXPLORE:
            sweep = SweepSpec.from_dict(data.get("sweep", {}))
        elif kind is PayloadKind.MONTECARLO:
            montecarlo = MonteCarloSpec.from_dict(data.get("montecarlo", {}))
        elif kind is PayloadKind.FAULTS:
            faults = FaultsSpec.from_dict(data.get("faults", {}))

        execution = ExecutionSpec.from_dict(data.get("execution", {}))
        return cls(
            kind=kind, config=config, network=network, sweep=sweep,
            montecarlo=montecarlo, faults=faults, execution=execution,
        )

    @classmethod
    def _campaign_from_dict(cls, data: Mapping[str, Any]) -> \
            "SimulationPayload":
        """Validate ``kind="campaign"`` — a whole study as one payload.

        A campaign file carries its own per-unit configuration and its
        own ``execution`` block, so every other top-level section is
        inconsistent input and rejected, not ignored.
        """
        for section in ("config", "network", "sweep", "montecarlo",
                        "faults"):
            if section in data:
                raise ValidationError(
                    "does not apply to kind='campaign' (campaign files "
                    "carry per-unit settings)", path=section,
                )
        if "execution" in data:
            raise ValidationError(
                "campaigns carry their own execution block "
                "(campaign.execution.numCPUs)", path="execution",
            )
        if "campaign" not in data:
            raise ValidationError(
                "required for kind='campaign'", path="campaign",
            )
        # Deferred import: repro.campaign.config imports this module.
        from repro.campaign.config import CampaignConfig

        campaign = CampaignConfig.from_dict(
            data["campaign"], path="campaign"
        )
        return cls(
            kind=PayloadKind.CAMPAIGN,
            campaign=campaign,
            execution=campaign.execution,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-safe form (fingerprints derive from this)."""
        if self.kind is PayloadKind.CAMPAIGN:
            return {
                "kind": self.kind.value,
                "campaign": self.campaign.to_dict(),
            }
        out: Dict[str, Any] = {
            "kind": self.kind.value,
            "config": self.config.to_dict(),
            "execution": self.execution.to_dict(),
        }
        if self.network is not None:
            out["network"] = self.network.to_dict()
        if self.sweep is not None:
            out["sweep"] = self.sweep.to_dict()
        if self.montecarlo is not None:
            out["montecarlo"] = self.montecarlo.to_dict()
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        return out

    def result_identity(self) -> Dict[str, Any]:
        """The fields that determine the *result* (execution excluded).

        Two payloads that differ only in engine knobs (worker count,
        chunking, timeouts) produce byte-identical results — the
        engine's schedule-independence guarantee — so they share one
        job id and dedupe onto the same cache rows.
        """
        if self.kind is PayloadKind.CAMPAIGN:
            # CampaignConfig.identity() already excludes engine knobs
            # (numCPUs / chunking / timeouts) from every unit.
            return {
                "kind": self.kind.value,
                "campaign": self.campaign.identity(),
            }
        identity = self.to_dict()
        del identity["execution"]
        return identity

    def fingerprint(self) -> str:
        """Deterministic content-addressed job id for this payload."""
        return content_key(PAYLOAD_SCHEMA, self.result_identity())

    def total_work(self) -> int:
        """Exact job count this payload expands into.

        Matches what the driver reports through its first
        ``progress(0, total)`` call — one job for ``simulate``, a trial
        per Monte-Carlo draw, a design point per sweep combination,
        a trial per network x mode x rate for fault campaigns — so the
        service can seed a job's ``total`` (and its ETA denominator)
        before any engine code runs.
        """
        if self.kind is PayloadKind.CAMPAIGN:
            return self.campaign.total_work()
        if self.kind is PayloadKind.EXPLORE:
            return len(self.sweep.to_design_space())
        if self.kind is PayloadKind.MONTECARLO:
            return self.montecarlo.trials
        if self.kind is PayloadKind.FAULTS:
            faults = self.faults
            return (
                len(faults.networks) * len(faults.modes)
                * len(faults.rates) * faults.trials
            )
        return 1

    def describe(self) -> str:
        """One-line human summary for logs and job listings."""
        if self.kind is PayloadKind.CAMPAIGN:
            return f"campaign:{self.campaign.name}"
        target = self.network.spec_string() if self.network else (
            ",".join(self.faults.networks) if self.faults else "crossbar"
        )
        return f"{self.kind.value}:{target}"


#: Fraction of validated payload kinds with a workload section — kept
#: here so a new PayloadKind member fails loudly until it is routed.
assert set(_KIND_SECTION) == set(PayloadKind)
