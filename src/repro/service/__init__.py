"""Simulation-as-a-service: validated payloads, jobs, HTTP API.

The service layer turns the engine into a multi-tenant job server:

* :mod:`repro.service.schema` — :class:`SimulationPayload`, the
  validated input contract (Enum vocabularies, path-addressed
  rejection, content-addressed fingerprints);
* :mod:`repro.service.workloads` — payload execution and deterministic
  result documents (byte-identical to the CLI's ``--output`` files);
* :mod:`repro.service.jobs` — the deduping job manager;
* :mod:`repro.service.server` — the stdlib HTTP front-end
  (``repro serve``);
* :mod:`repro.service.client` — the ``urllib``-based Python client.
"""

from repro.service.jobs import JobEvent, JobManager, JobRecord, JobState
from repro.service.schema import (
    DeviceModel,
    ExecutionSpec,
    FaultMode,
    FaultsSpec,
    InputMode,
    MonteCarloSpec,
    NetworkSpec,
    NetworkTopology,
    PAYLOAD_SCHEMA,
    PayloadKind,
    SimulationPayload,
    SweepMode,
    SweepSpec,
)
from repro.service.workloads import (
    RESULT_SCHEMA,
    montecarlo_document,
    render_document,
    run_payload,
)

__all__ = [
    "DeviceModel",
    "ExecutionSpec",
    "FaultMode",
    "FaultsSpec",
    "InputMode",
    "JobEvent",
    "JobManager",
    "JobRecord",
    "JobState",
    "MonteCarloSpec",
    "NetworkSpec",
    "NetworkTopology",
    "PAYLOAD_SCHEMA",
    "PayloadKind",
    "RESULT_SCHEMA",
    "SimulationPayload",
    "SweepMode",
    "SweepSpec",
    "montecarlo_document",
    "render_document",
    "run_payload",
    "serve_main",
]


def serve_main(host: str, port: int, cache_dir=None, workers: int = 1):
    """Convenience: build a manager + bound server (used by the CLI)."""
    from repro.service.server import serve

    manager = JobManager(cache_dir=cache_dir, workers=workers)
    return manager, serve(host, port, manager)
