"""Python client for the service API (stdlib ``urllib`` only).

:class:`ServiceClient` mirrors the HTTP surface one-to-one and is what
the test suite and the CI smoke job drive; it reconstructs the server's
structured 400 rejections back into
:class:`~repro.errors.ValidationError` so callers handle local and
remote validation failures identically.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import MnsimError, ValidationError

#: Default per-request timeout (seconds); generous because the event
#: stream long-polls.
DEFAULT_TIMEOUT = 30.0


class ServiceError(MnsimError, RuntimeError):
    """A non-validation error response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


def _rebuild_validation_error(doc: Dict[str, Any]) -> ValidationError:
    err = doc.get("error", {})
    kwargs: Dict[str, Any] = {"path": err.get("path", "")}
    if "value" in err:
        kwargs["value"] = err["value"]
    if "allowed" in err:
        kwargs["allowed"] = err["allowed"]
    message = err.get("message", "invalid payload")
    # Strip the decorations ValidationError appends, so rebuilding does
    # not double them up.
    for marker in (" (got ", " (allowed: "):
        if marker in message:
            message = message.split(marker)[0]
    if kwargs["path"] and message.startswith(kwargs["path"] + ": "):
        message = message[len(kwargs["path"]) + 2:]
    return ValidationError(message, **kwargs)


class ServiceClient:
    """Minimal synchronous client for one service endpoint."""

    def __init__(self, base_url: str,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> urllib.request.addinfourl:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                doc = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                doc = {}
            err = doc.get("error", {})
            if exc.code == 400 and "path" in err:
                raise _rebuild_validation_error(doc) from None
            raise ServiceError(
                exc.code, err.get("message", raw.decode("utf-8", "replace"))
            ) from None

    def _json(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        with self._request(method, path, body) as response:
            return json.loads(response.read().decode("utf-8"))

    # -- API -----------------------------------------------------------
    def healthz(self) -> bool:
        with self._request("GET", "/healthz") as response:
            return response.read().strip() == b"ok"

    def metrics_text(self) -> str:
        with self._request("GET", "/metrics") as response:
            return response.read().decode("utf-8")

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """POST a payload document; returns the submission receipt.

        Raises :class:`ValidationError` (rebuilt from the structured
        400 body) when the server rejects the document.
        """
        return self._json("POST", "/jobs", payload)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def result_bytes(self, job_id: str) -> bytes:
        """The finished job's result document, byte-exact."""
        with self._request("GET", f"/jobs/{job_id}/result") as response:
            return response.read()

    def result(self, job_id: str) -> Dict[str, Any]:
        return json.loads(self.result_bytes(job_id).decode("utf-8"))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def job_trace(self, job_id: str) -> Dict[str, Any]:
        """The job's spans as a Chrome trace-event document."""
        return self._json("GET", f"/jobs/{job_id}/trace")

    def job_metrics(self, job_id: str) -> Dict[str, Any]:
        """The job's metric families, resources, and run summary."""
        return self._json("GET", f"/jobs/{job_id}/metrics")

    def job_metrics_text(self, job_id: str) -> str:
        """The job's metrics in Prometheus text exposition format."""
        path = f"/jobs/{job_id}/metrics?format=prometheus"
        with self._request("GET", path) as response:
            return response.read().decode("utf-8")

    def iter_events(self, job_id: str,
                    after: int = 0) -> Iterator[Dict[str, Any]]:
        """Yield progress events until the job reaches a terminal state.

        ``http.client`` de-chunks the stream transparently, so this is
        a plain line reader.
        """
        path = f"/jobs/{job_id}/events"
        if after:
            path += f"?after={after}"
        with self._request("GET", path) as response:
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    408, f"job {job_id} still {status['state']} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll)
