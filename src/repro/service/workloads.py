"""Payload execution: one validated payload in, one result document out.

The bridge between :mod:`repro.service.schema` and the engine.  Each
:class:`~repro.service.schema.PayloadKind` maps to one runner that
canonicalises the payload into existing engine structures, executes
through :func:`repro.runtime.pool.run_jobs` (cache-aware, observable,
cancellable) and returns a JSON-safe *result document*.

Byte-identity contract
----------------------
:func:`render_document` is the single serialization used for stored
service results, and the document builders here are also what the CLI's
``--output`` paths call — so a service result and the file written by
the equivalent CLI invocation are byte-identical *by construction*, not
by coincidence.  The same deterministic settings as
:meth:`repro.faults.campaign.CampaignResult.to_json` apply: sorted keys,
two-space indent, no NaN, trailing newline.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional

from repro.accuracy.interconnect import DEFAULT_SENSE_RESISTANCE
from repro.accuracy.montecarlo import run_monte_carlo
from repro.config import SimConfig
from repro.dse.explorer import (
    _SUMMARY_FIELDS,
    explore,
    optimal_table,
    simulate_point,
)
from repro.errors import ExplorationError
from repro.runtime.cache import ResultCache
from repro.runtime.metrics import RunMetrics
from repro.runtime.pool import RunPolicy
from repro.service.schema import MonteCarloSpec, PayloadKind, SimulationPayload

#: Version stamp embedded in every result document.
RESULT_SCHEMA = "service-result-v1"

ProgressFn = Optional[Callable[[int, int], None]]
CancelFn = Optional[Callable[[], bool]]


def render_document(doc: Dict[str, Any]) -> str:
    """Deterministic serialization: equal documents -> equal bytes."""
    return json.dumps(
        doc, sort_keys=True, indent=2, separators=(",", ": "),
        allow_nan=False,
    ) + "\n"


def _summary_dict(summary: Any) -> Dict[str, float]:
    return {name: getattr(summary, name) for name in _SUMMARY_FIELDS}


def montecarlo_document(
    config: SimConfig,
    spec: MonteCarloSpec,
    *,
    cache: Optional[ResultCache] = None,
    metrics: Optional[RunMetrics] = None,
    policy: Optional[RunPolicy] = None,
    progress: ProgressFn = None,
    should_cancel: CancelFn = None,
) -> Dict[str, Any]:
    """Run Monte-Carlo sampling and build its result document.

    Shared by the service's ``montecarlo`` payload kind and the CLI's
    ``montecarlo --output`` path, which is what makes their outputs
    byte-identical.
    """
    device = config.device
    size = spec.size if spec.size is not None else config.crossbar_size
    segment = config.wire.segment_resistance(
        device.cell_pitch(config.cell_type)
    )
    result = run_monte_carlo(
        device, size, segment,
        trials=spec.trials,
        sense_resistance=DEFAULT_SENSE_RESISTANCE,
        sigma=spec.sigma,
        input_mode=spec.input_mode.value,
        seed=spec.seed,
        inputs_per_trial=spec.inputs_per_trial,
        cache=cache,
        metrics=metrics,
        policy=policy,
        progress=progress,
        should_cancel=should_cancel,
    )
    return {
        "schema": RESULT_SCHEMA,
        "kind": PayloadKind.MONTECARLO.value,
        "spec": {
            "config": config.to_dict(),
            "montecarlo": spec.to_dict(),
            "segment_resistance": segment,
            "sense_resistance": DEFAULT_SENSE_RESISTANCE,
            "size": size,
        },
        "summary": {
            "samples": int(result.samples.size),
            "mean_abs_error": result.mean_abs_error,
            "max_abs_error": result.max_abs_error,
            "p50_abs_error": result.percentile(50),
            "p95_abs_error": result.percentile(95),
            "p99_abs_error": result.percentile(99),
        },
        "samples": [float(v) for v in result.samples],
    }


def _run_simulate(
    payload: SimulationPayload,
    *,
    cache: Optional[ResultCache],
    metrics: Optional[RunMetrics],
    progress: ProgressFn,
    should_cancel: CancelFn,
) -> Dict[str, Any]:
    network = payload.network.build()
    if progress is not None:
        progress(0, 1)
    summary = simulate_point(
        payload.config, network, cache=cache, metrics=metrics
    )
    if progress is not None:
        progress(1, 1)
    return {
        "schema": RESULT_SCHEMA,
        "kind": PayloadKind.SIMULATE.value,
        "spec": {
            "config": payload.config.to_dict(),
            "network": payload.network.spec_string(),
        },
        "summary": _summary_dict(summary),
    }


def _run_explore(
    payload: SimulationPayload,
    *,
    cache: Optional[ResultCache],
    metrics: Optional[RunMetrics],
    progress: ProgressFn,
    should_cancel: CancelFn,
) -> Dict[str, Any]:
    sweep = payload.sweep
    network = payload.network.build()
    points = explore(
        payload.config,
        network,
        space=sweep.to_design_space(),
        max_error_rate=sweep.max_error_rate,
        cache=cache,
        metrics=metrics,
        policy=payload.execution.to_policy(),
        progress=progress,
        should_cancel=should_cancel,
    )
    try:
        optima = {
            metric: {
                "crossbar_size": point.crossbar_size,
                "parallelism_degree": point.parallelism_degree,
                "interconnect_tech": point.interconnect_tech,
            }
            for metric, point in optimal_table(points).items()
        }
    except ExplorationError:
        optima = {}  # the error bound excluded every design
    return {
        "schema": RESULT_SCHEMA,
        "kind": PayloadKind.EXPLORE.value,
        "spec": {
            "config": payload.config.to_dict(),
            "network": payload.network.spec_string(),
            "sweep": sweep.to_dict(),
        },
        "points": [
            {
                "crossbar_size": point.crossbar_size,
                "parallelism_degree": point.parallelism_degree,
                "interconnect_tech": point.interconnect_tech,
                "summary": _summary_dict(point.summary),
            }
            for point in points
        ],
        "optima": optima,
    }


def _run_montecarlo(
    payload: SimulationPayload,
    *,
    cache: Optional[ResultCache],
    metrics: Optional[RunMetrics],
    progress: ProgressFn,
    should_cancel: CancelFn,
) -> Dict[str, Any]:
    return montecarlo_document(
        payload.config,
        payload.montecarlo,
        cache=cache,
        metrics=metrics,
        policy=payload.execution.to_policy(),
        progress=progress,
        should_cancel=should_cancel,
    )


def _run_faults(
    payload: SimulationPayload,
    *,
    cache: Optional[ResultCache],
    metrics: Optional[RunMetrics],
    progress: ProgressFn,
    should_cancel: CancelFn,
) -> Dict[str, Any]:
    from repro.faults.campaign import run_campaign

    result = run_campaign(
        payload.faults.to_campaign_spec(),
        cache=cache,
        metrics=metrics,
        policy=payload.execution.to_policy(),
        progress=progress,
        should_cancel=should_cancel,
    )
    # The campaign document *is* the CLI `faults --output` document, so
    # byte-identity with the CLI falls out of CampaignResult.to_json()
    # using the same serialization as render_document().
    return result.to_dict()


def _run_campaign(
    payload: SimulationPayload,
    *,
    cache: Optional[ResultCache],
    metrics: Optional[RunMetrics],
    progress: ProgressFn,
    should_cancel: CancelFn,
) -> Dict[str, Any]:
    # Deferred import: repro.campaign.runner imports this module.
    from repro.campaign.runner import run_campaign_config

    run = run_campaign_config(
        payload.campaign,
        cache=cache,
        metrics=metrics,
        progress=progress,
        should_cancel=should_cancel,
    )
    # The report *is* the CLI `campaign run --output` document, so the
    # service/CLI byte-identity contract extends to campaigns.
    return run.document


_RUNNERS = {
    PayloadKind.SIMULATE: _run_simulate,
    PayloadKind.EXPLORE: _run_explore,
    PayloadKind.MONTECARLO: _run_montecarlo,
    PayloadKind.FAULTS: _run_faults,
    PayloadKind.CAMPAIGN: _run_campaign,
}


def run_payload(
    payload: SimulationPayload,
    *,
    cache: Optional[ResultCache] = None,
    metrics: Optional[RunMetrics] = None,
    progress: ProgressFn = None,
    should_cancel: CancelFn = None,
) -> Dict[str, Any]:
    """Execute a validated payload and return its result document.

    ``progress(done, total)`` is invoked as the underlying sweep
    advances; ``should_cancel()`` returning True aborts the run with
    :class:`~repro.errors.JobCancelled` at the next chunk boundary.
    """
    runner = _RUNNERS[payload.kind]
    return runner(
        payload,
        cache=cache,
        metrics=metrics,
        progress=progress,
        should_cancel=should_cancel,
    )
