"""Simulation-job engine: parallel execution, result cache, run metrics.

Every sweep-shaped workload in the repository — design-space
exploration, Monte-Carlo accuracy sampling, batch simulation — reduces
to a list of *independent jobs*.  This subpackage gives those workloads
one shared engine:

* :mod:`repro.runtime.jobs` — :class:`JobSpec` descriptions with
  deterministic content-hash keys derived from a canonical
  serialization of the inputs (config + network fingerprint + schema
  version);
* :mod:`repro.runtime.pool` — :func:`run_jobs`, a chunked
  ``ProcessPoolExecutor`` fan-out with per-job timeout, bounded retry,
  and automatic graceful fallback to in-process serial execution;
* :mod:`repro.runtime.cache` — an opt-in on-disk (sqlite) result cache
  keyed by job hash with versioned invalidation and hit/miss stats;
* :mod:`repro.runtime.metrics` — lightweight run instrumentation
  (per-stage wall time, throughput, failure counts) surfaced by
  ``repro runtime-stats``.

The engine guarantees *result equivalence*: for any job list, the
parallel path returns exactly the values the serial path would, in the
same order, so callers can expose a ``jobs=N`` knob without changing
semantics.
"""

from repro.runtime.cache import CacheStats, ResultCache, default_cache_dir
from repro.runtime.jobs import (
    SCHEMA_VERSION,
    JobSpec,
    canonical,
    canonical_json,
    content_key,
    network_fingerprint,
)
from repro.runtime.metrics import LAST_RUN_FILENAME, RunMetrics
from repro.runtime.pool import (
    RunPolicy,
    run_jobs,
    shutdown_warm_pool,
    warm_pool,
)

__all__ = [
    "SCHEMA_VERSION",
    "JobSpec",
    "canonical",
    "canonical_json",
    "content_key",
    "network_fingerprint",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "RunMetrics",
    "LAST_RUN_FILENAME",
    "RunPolicy",
    "run_jobs",
    "shutdown_warm_pool",
    "warm_pool",
]
