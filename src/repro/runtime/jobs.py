"""Deterministic job identities for the simulation engine.

A *job* is one independent unit of sweep work (one design point, one
Monte-Carlo trial).  :class:`JobSpec` pairs the picklable payload a
worker consumes with a deterministic content-hash **key** computed from
a canonical serialization of the job's inputs.  Two jobs with the same
key are guaranteed to produce the same result, which is what makes the
on-disk cache (:mod:`repro.runtime.cache`) safe.

Keys fold in :data:`SCHEMA_VERSION`; bump it whenever the meaning of a
cached result changes (new metric, changed model equations) and every
stale cache entry invalidates itself automatically.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Optional

#: Version stamp folded into every job key and cache row.  Bump on any
#: change to result semantics (summary fields, model equations, ...).
#: v2: canonical() float/dict-key fixes changed some serializations
#: (-0.0, non-finite floats, mixed-type dict keys), so v1 rows must not
#: be replayed against the new keys.
SCHEMA_VERSION = "runtime-v2"


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-safe form with deterministic ordering.

    Handles the input vocabulary of the simulators: dataclasses (tagged
    with their class name so distinct types never collide), enums,
    tuples/lists, dicts (keys sorted), numbers, strings, booleans and
    ``None``.  Equal values must canonicalise equally: ``-0.0`` folds
    into ``0.0`` (they compare equal, but JSON spells them apart), and
    non-finite floats become tagged dicts — JSON has no literal for
    them, and a bare ``"nan"`` string would collide with a genuine
    string of the same spelling.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            name: canonical(getattr(value, name))
            for name in sorted(f.name for f in dataclasses.fields(value))
        }
        fields["__type__"] = type(value).__name__
        return fields
    if isinstance(value, enum.Enum):
        return canonical(value.value)
    if isinstance(value, dict):
        # Sort by the *stringified* key so mixed-type keys (int + str)
        # cannot crash the comparison; insertion order never leaks in.
        return {
            key: item
            for key, item in sorted(
                (str(k), canonical(v)) for k, v in value.items()
            )
        }
    if isinstance(value, (tuple, list)):
        return [canonical(item) for item in value]
    if isinstance(value, float):
        if math.isnan(value):
            return {"__float__": "nan"}
        if math.isinf(value):
            return {"__float__": "inf" if value > 0 else "-inf"}
        if value == 0.0:
            return 0.0  # fold -0.0 (== 0.0) into one spelling
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    # numpy scalars and other number-likes reduce via item()/float().
    item = getattr(value, "item", None)
    if callable(item):
        return canonical(item())
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} for a job key"
    )


def canonical_json(value: Any) -> str:
    """The canonical serialization: compact JSON with sorted keys."""
    return json.dumps(canonical(value), sort_keys=True,
                      separators=(",", ":"))


def content_key(*parts: Any) -> str:
    """SHA-256 content hash of ``parts`` plus :data:`SCHEMA_VERSION`.

    The parts are canonically serialized, so key stability only depends
    on the *values* — not on dict insertion order, tuple vs. list
    spelling, or enum identity.
    """
    digest = hashlib.sha256()
    digest.update(SCHEMA_VERSION.encode("ascii"))
    for part in parts:
        digest.update(b"\x00")
        digest.update(canonical_json(part).encode("utf-8"))
    return digest.hexdigest()


def network_fingerprint(network: Any) -> str:
    """Short stable fingerprint of a network topology.

    Folds the name, network type and every layer's shape parameters, so
    any structural change yields a different cache key.
    """
    return hashlib.sha256(
        canonical_json(network).encode("utf-8")
    ).hexdigest()[:16]


@dataclass(frozen=True)
class JobSpec:
    """One unit of work for :func:`repro.runtime.pool.run_jobs`.

    Attributes
    ----------
    kind:
        Job family tag (e.g. ``"simulate-point"``); recorded in the
        cache so operators can attribute entries.
    payload:
        The picklable value handed to the worker function.
    key:
        Deterministic content hash (see :func:`content_key`); ``None``
        marks the job as uncacheable.
    """

    kind: str
    payload: Any
    key: Optional[str] = None
