"""Opt-in on-disk result cache keyed by job content hash.

Backed by a single sqlite database (stdlib only) under
``~/.cache/repro`` by default — overridable with an explicit directory
or the ``REPRO_CACHE_DIR`` environment variable.  Rows carry the
schema version they were written under; lookups only match the current
version, so bumping :data:`repro.runtime.jobs.SCHEMA_VERSION`
invalidates every stale entry without deleting files
(:meth:`ResultCache.prune_stale` reclaims the space).

Values are stored as JSON text; the engine's ``encode``/``decode``
hooks translate domain objects (summaries, sample arrays) at the
boundary.  Hit/miss accounting is per :class:`ResultCache` instance and
reported by :meth:`ResultCache.stats`.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.jobs import SCHEMA_VERSION

_DB_FILENAME = "results.sqlite"
# sqlite bind-parameter budget is 999 on old builds; stay well under.
_SELECT_BATCH = 500


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


@dataclass(frozen=True)
class CacheStats:
    """Cache effectiveness counters (`hits`/`misses` are per session)."""

    hits: int
    misses: int
    stores: int
    entries: int
    stale_entries: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """Persistent job-result store with versioned invalidation.

    Parameters
    ----------
    cache_dir:
        Directory holding the sqlite file; created on demand.  Defaults
        to :func:`default_cache_dir`.
    schema_version:
        Rows are tagged with this version and only rows with a matching
        tag are ever returned.  Defaults to the engine-wide
        :data:`~repro.runtime.jobs.SCHEMA_VERSION`.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path, None] = None,
        *,
        schema_version: str = SCHEMA_VERSION,
    ) -> None:
        self.cache_dir = (
            Path(cache_dir).expanduser() if cache_dir else default_cache_dir()
        )
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.cache_dir / _DB_FILENAME
        self.version = schema_version
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " key TEXT PRIMARY KEY,"
            " version TEXT NOT NULL,"
            " kind TEXT NOT NULL,"
            " value TEXT NOT NULL,"
            " created REAL NOT NULL)"
        )
        self._conn.commit()

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        """The cached value for ``key`` (current version), else None."""
        return self.get_many([key]).get(key)

    def get_many(self, keys: Sequence[str]) -> Dict[str, Any]:
        """Batched lookup; returns only the keys present and current.

        Misses are counted for every requested key not returned, so a
        sweep's hit rate falls out of one call.
        """
        found: Dict[str, Any] = {}
        distinct = [k for k in dict.fromkeys(keys) if k is not None]
        started = time.perf_counter()
        with obs_trace.span("cache.get", keys=len(distinct)) as lookup_span:
            for start in range(0, len(distinct), _SELECT_BATCH):
                batch = distinct[start:start + _SELECT_BATCH]
                marks = ",".join("?" * len(batch))
                rows = self._conn.execute(
                    f"SELECT key, value FROM results"
                    f" WHERE version = ? AND key IN ({marks})",
                    [self.version, *batch],
                ).fetchall()
                for key, value in rows:
                    found[key] = json.loads(value)
            lookup_span.set(hits=len(found),
                            misses=len(distinct) - len(found))
        self._hits += len(found)
        self._misses += len(distinct) - len(found)
        if obs_trace.enabled():
            elapsed = time.perf_counter() - started
            obs_metrics.counter(
                "repro_cache_lookups_total",
                "Result-cache lookups by outcome",
            ).inc(len(found), outcome="hit")
            obs_metrics.counter(
                "repro_cache_lookups_total",
                "Result-cache lookups by outcome",
            ).inc(len(distinct) - len(found), outcome="miss")
            obs_metrics.histogram(
                "repro_cache_lookup_seconds",
                "Latency of batched result-cache lookups",
            ).observe(elapsed)
        return found

    def put(self, key: str, kind: str, value: Any) -> None:
        """Store one JSON-safe result under ``key``."""
        self.put_many([(key, kind, value)])

    def put_many(self, items: Iterable[Tuple[str, str, Any]]) -> int:
        """Store many ``(key, kind, json_safe_value)`` rows; returns count."""
        now = time.time()
        rows = [
            (key, self.version, kind, json.dumps(value), now)
            for key, kind, value in items
        ]
        if not rows:
            return 0
        started = time.perf_counter()
        with obs_trace.span("cache.put", rows=len(rows)):
            self._conn.executemany(
                "INSERT OR REPLACE INTO results"
                " (key, version, kind, value, created)"
                " VALUES (?, ?, ?, ?, ?)",
                rows,
            )
            self._conn.commit()
        self._stores += len(rows)
        if obs_trace.enabled():
            obs_metrics.counter(
                "repro_cache_stores_total",
                "Result-cache rows written",
            ).inc(len(rows))
            obs_metrics.histogram(
                "repro_cache_store_seconds",
                "Latency of batched result-cache stores",
            ).observe(time.perf_counter() - started)
        return len(rows)

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Session hit/miss/store counters plus on-disk entry counts."""
        current = self._conn.execute(
            "SELECT COUNT(*) FROM results WHERE version = ?", [self.version]
        ).fetchone()[0]
        total = self._conn.execute(
            "SELECT COUNT(*) FROM results"
        ).fetchone()[0]
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            entries=current,
            stale_entries=total - current,
        )

    def prune_stale(self) -> int:
        """Delete rows written under other schema versions; returns count."""
        cursor = self._conn.execute(
            "DELETE FROM results WHERE version != ?", [self.version]
        )
        self._conn.commit()
        return cursor.rowcount

    def clear(self) -> int:
        """Delete every row (all versions); returns the count removed."""
        cursor = self._conn.execute("DELETE FROM results")
        self._conn.commit()
        return cursor.rowcount

    def close(self) -> None:
        """Close the underlying sqlite connection."""
        self._conn.close()

    # ------------------------------------------------------------------
    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.path)!r}, version={self.version!r})"
