"""Parallel job execution with retry, timeout, and serial fallback.

:func:`run_jobs` is the single entry point every sweep in the repo uses.
It takes a picklable top-level ``worker`` function and a list of
:class:`~repro.runtime.jobs.JobSpec` and returns the worker results in
input order.  Between the caller and the worker it layers:

1. **Cache short-circuit** — specs whose key is already in the supplied
   :class:`~repro.runtime.cache.ResultCache` are never executed.
2. **Chunked process fan-out** — misses are grouped into chunks and
   dispatched over a ``ProcessPoolExecutor`` with ``policy.jobs``
   workers.  Chunking amortises pickling overhead for millisecond jobs.
3. **Bounded retry** — a chunk that crashes (worker exception, killed
   process) or exceeds its timeout is resubmitted up to
   ``policy.retries`` times, then surfaces as a structured
   :class:`~repro.errors.JobExecutionError` (summarised, no child
   traceback) — never a hang or a silent partial result.
4. **Serial fallback** — pool start-up failures and unpicklable
   workers (e.g. test lambdas) automatically fall back to an
   in-process serial loop with identical results and error semantics.
5. **Warm pool reuse** — a healthy ``ProcessPoolExecutor`` is kept
   alive between :func:`run_jobs` calls (keyed by worker count), so
   short sweeps don't pay process start-up on every invocation.  Pools
   that broke or may hold stuck workers are killed and never reused;
   :func:`warm_pool` pre-starts the pool for latency-sensitive callers
   and :func:`shutdown_warm_pool` releases it explicitly.

Domain errors (any :class:`~repro.errors.MnsimError`) are deterministic
properties of the job, so they are *not* retried: they propagate to the
caller unchanged, exactly as the old serial loops behaved.
"""

from __future__ import annotations

import atexit
import logging
import math
import os
import pickle
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

from repro.errors import (
    ConfigError,
    JobCancelled,
    JobExecutionError,
    MnsimError,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import JobSpec
from repro.runtime.metrics import RunMetrics

_log = logging.getLogger(__name__)

#: Seconds between deadline sweeps while waiting on in-flight chunks.
_WAIT_SLICE = 0.05

#: Below this many jobs per worker the auto-chunker switches from four
#: chunks per worker (fine-grained load balancing for long sweeps) to
#: two (fewer dispatch round-trips for short ones, where per-chunk IPC
#: overhead dominates over imbalance).
_SMALL_SWEEP_PER_WORKER = 64

#: Jobs per batch-worker group on the serial path (when the policy's
#: ``chunk_size`` doesn't pin one).  Large enough to amortise batched
#: assembly, small enough to keep progress/cancellation responsive and
#: the stacked value arrays modest.
_SERIAL_BATCH_SIZE = 64


@dataclass(frozen=True)
class RunPolicy:
    """How a job list is executed.

    Attributes
    ----------
    jobs:
        Worker process count; ``1`` (the default) runs in-process
        serially, ``0`` means "all available cores".
    chunk_size:
        Jobs per dispatch unit; ``None`` auto-sizes to roughly four
        chunks per worker.
    timeout:
        Per-job wall-clock budget in seconds (a chunk's budget is
        ``timeout * len(chunk)``); ``None`` disables timeouts.  Only
        enforceable on the process path — a serial worker cannot be
        preempted.
    retries:
        How many times a failed/timed-out chunk is re-dispatched before
        the run aborts with :class:`~repro.errors.JobExecutionError`.
    min_sweep_for_parallel:
        Sweeps with fewer pending (uncached) jobs than this run
        serially even when ``jobs > 1`` — below a handful of jobs the
        pool's dispatch/IPC round-trips cost more than the compute they
        parallelise (the BENCH_runtime parallel-gap finding).  The
        default of 2 preserves the historical behaviour (any sweep of
        at least two jobs may fan out); latency-sensitive callers such
        as :mod:`repro.service` raise it.
    batch_within_chunk:
        When the caller supplies a ``batch_worker`` to
        :func:`run_jobs`, execute each chunk (or serial group) through
        it as *one* vectorized call instead of looping the per-job
        worker — hot sweeps are vectorized first and forked second.
        Batch workers are required to return results bit-identical to
        the per-job worker (the solver's batched path guarantees this),
        so flipping this knob never changes results or cache keys, only
        wall-clock.  ``False`` forces the historical per-job loop.
    """

    jobs: int = 1
    chunk_size: Optional[int] = None
    timeout: Optional[float] = None
    retries: int = 1
    min_sweep_for_parallel: int = 2
    batch_within_chunk: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ConfigError("jobs must be >= 0 (0 = all cores)")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigError("chunk_size must be >= 1 when given")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError("timeout must be positive when given")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")
        if self.min_sweep_for_parallel < 2:
            raise ConfigError("min_sweep_for_parallel must be >= 2")

    @property
    def worker_count(self) -> int:
        """The resolved process count (``jobs=0`` -> CPU count)."""
        if self.jobs == 0:
            return os.cpu_count() or 1
        return self.jobs


def run_jobs(
    worker: Callable[[Any], Any],
    specs: Sequence[JobSpec],
    *,
    policy: Optional[RunPolicy] = None,
    cache: Optional[ResultCache] = None,
    encode: Optional[Callable[[Any], Any]] = None,
    decode: Optional[Callable[[Any], Any]] = None,
    metrics: Optional[RunMetrics] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    should_cancel: Optional[Callable[[], bool]] = None,
    batch_worker: Optional[Callable[[List[Any]], List[Any]]] = None,
) -> List[Any]:
    """Execute ``worker(spec.payload)`` for every spec, in input order.

    Parameters
    ----------
    worker:
        Top-level picklable function of one argument (the payload).
    specs:
        The job list; specs with a ``key`` participate in caching.
    policy:
        Execution policy (parallelism, chunking, timeout, retries).
    cache:
        Optional result cache; hits skip execution, computed results
        are stored back.
    encode / decode:
        Translate worker results to/from the JSON-safe form the cache
        stores (identity when omitted).
    metrics:
        Optional :class:`RunMetrics` to fill in; pass your own to
        inspect stage times, cache effectiveness and failures.
    progress:
        Optional ``progress(done, total)`` callback, invoked from the
        dispatching thread after the cache stage and as jobs/chunks
        complete — the service layer's progress stream rides on it.
        It must be cheap and must not raise.
    should_cancel:
        Optional predicate polled between jobs (serial) / between chunk
        completions (parallel).  When it turns true the run raises
        :class:`~repro.errors.JobCancelled`; in-flight chunk results
        are discarded and pending jobs never execute.
    batch_worker:
        Optional vectorized sibling of ``worker``: a top-level
        picklable function mapping a *list* of payloads to the list of
        their results, in order, **bit-identical** to calling
        ``worker`` on each.  When given (and
        ``policy.batch_within_chunk`` is on) each chunk / serial group
        executes as one ``batch_worker`` call, so same-shape jobs can
        share assembly and amortise per-call overhead.  Caching,
        retries and cancellation semantics are unchanged — a cache hit
        still skips the job, and results are cached per spec key.
    """
    policy = policy or RunPolicy()
    metrics = metrics if metrics is not None else RunMetrics()
    specs = list(specs)
    with obs_trace.span(
        "runtime.run_jobs", jobs=len(specs), workers=policy.worker_count,
        kind=specs[0].kind if specs else "",
    ):
        return _run_jobs_traced(
            worker, specs, policy, cache, encode, decode, metrics,
            progress, should_cancel, batch_worker,
        )


def _check_cancel(should_cancel: Optional[Callable[[], bool]]) -> None:
    if should_cancel is not None and should_cancel():
        raise JobCancelled("run cancelled by caller")


def _run_jobs_traced(
    worker: Callable[[Any], Any],
    specs: List[JobSpec],
    policy: RunPolicy,
    cache: Optional[ResultCache],
    encode: Optional[Callable[[Any], Any]],
    decode: Optional[Callable[[Any], Any]],
    metrics: RunMetrics,
    progress: Optional[Callable[[int, int], None]],
    should_cancel: Optional[Callable[[], bool]],
    batch_worker: Optional[Callable[[List[Any]], List[Any]]] = None,
) -> List[Any]:
    metrics.workers = policy.worker_count
    metrics.count("jobs_total", len(specs))
    _check_cancel(should_cancel)

    results: List[Any] = [None] * len(specs)
    done = [False] * len(specs)

    # Stage 1: cache short-circuit ------------------------------------
    if cache is not None:
        with metrics.stage("cache-lookup"):
            keyed = [s.key for s in specs if s.key is not None]
            found = cache.get_many(keyed) if keyed else {}
            for i, spec in enumerate(specs):
                if spec.key is not None and spec.key in found:
                    value = found[spec.key]
                    results[i] = decode(value) if decode else value
                    done[i] = True
        metrics.count("cache_hits", sum(done))
        metrics.count("cache_misses", len(specs) - sum(done))
    if progress is not None:
        progress(sum(done), len(specs))

    pending = [(i, spec) for i, spec in enumerate(specs) if not done[i]]

    # Stage 2: execute -------------------------------------------------
    if pending:
        completed = len(specs) - len(pending)

        def advance(newly_done: int) -> None:
            nonlocal completed
            completed += newly_done
            if progress is not None:
                progress(completed, len(specs))

        with metrics.stage("execute"):
            # Vectorize first, fork second: a batch worker (when the
            # policy allows it) turns each chunk / serial group into
            # one call that shares assembly across its jobs.
            batcher = (
                batch_worker if policy.batch_within_chunk else None
            )
            # Processes are used whenever more than one worker is
            # requested — even on a single core they buy crash/timeout
            # isolation; genuine pool failures fall back below.  An
            # unpicklable worker (test lambda, closure) can never cross
            # the process boundary, so it is routed straight to the
            # serial path without ever creating a pool.  Sweeps below
            # the policy's parallelism threshold stay serial too: for a
            # handful of jobs the dispatch round-trips dominate.
            use_processes = (
                policy.worker_count > 1
                and len(pending) > 1
                and len(pending) >= policy.min_sweep_for_parallel
                and _picklable(worker)
                and (batcher is None or _picklable(batcher))
            )
            if use_processes:
                try:
                    _run_parallel(worker, pending, policy, metrics, results,
                                  done, advance, should_cancel, batcher)
                    metrics.mode = "process"
                except _SerialFallback:
                    pending = [
                        (i, spec) for i, spec in pending if not done[i]
                    ]
                    _run_serial(worker, pending, policy, metrics, results,
                                advance, should_cancel, batcher)
                    metrics.mode = "serial"
            else:
                _run_serial(worker, pending, policy, metrics, results,
                            advance, should_cancel, batcher)
                metrics.mode = "serial"
        metrics.count("jobs_executed", len(pending))

    # Stage 3: cache store ---------------------------------------------
    if cache is not None and pending:
        with metrics.stage("cache-store"):
            cache.put_many(
                (
                    spec.key,
                    spec.kind,
                    encode(results[i]) if encode else results[i],
                )
                for i, spec in pending
                if spec.key is not None
            )
    return results


# ----------------------------------------------------------------------
# Serial path
# ----------------------------------------------------------------------
def _run_batch(
    batch_worker: Callable[[List[Any]], List[Any]],
    payloads: List[Any],
) -> List[Any]:
    """Invoke a batch worker, enforcing its one-result-per-job contract."""
    values = list(batch_worker(payloads))
    if len(values) != len(payloads):
        raise JobExecutionError(
            f"batch worker returned {len(values)} result(s) for "
            f"{len(payloads)} job(s)"
        )
    return values


def _run_serial(
    worker: Callable[[Any], Any],
    pending: Sequence[Tuple[int, JobSpec]],
    policy: RunPolicy,
    metrics: RunMetrics,
    results: List[Any],
    advance: Optional[Callable[[int], None]] = None,
    should_cancel: Optional[Callable[[], bool]] = None,
    batch_worker: Optional[Callable[[List[Any]], List[Any]]] = None,
) -> None:
    if batch_worker is not None:
        _run_serial_batched(batch_worker, pending, policy, metrics,
                            results, advance, should_cancel)
        return
    for index, spec in pending:
        _check_cancel(should_cancel)
        attempts = 0
        before = _usage_snapshot()
        while True:
            try:
                with obs_trace.span("runtime.job", kind=spec.kind):
                    results[index] = worker(spec.payload)
                break
            except MnsimError:
                # Deterministic domain error: retrying cannot help and
                # callers expect the original exception type.
                raise
            except Exception as exc:
                attempts += 1
                metrics.count("worker_failures")
                if attempts > policy.retries:
                    raise _job_error(spec, attempts, exc) from None
                metrics.count("retries")
        _account_usage(metrics, _usage_since(before))
        if advance is not None:
            advance(1)


def _run_serial_batched(
    batch_worker: Callable[[List[Any]], List[Any]],
    pending: Sequence[Tuple[int, JobSpec]],
    policy: RunPolicy,
    metrics: RunMetrics,
    results: List[Any],
    advance: Optional[Callable[[int], None]] = None,
    should_cancel: Optional[Callable[[], bool]] = None,
) -> None:
    """Serial path with vectorized groups instead of a per-job loop.

    Groups are deterministic (input order, fixed size), so batch
    workers whose results are bit-identical to the per-job worker make
    this path indistinguishable from :func:`_run_serial` except in
    wall-clock.  Cancellation is polled between groups; a group that
    fails with a non-domain error is retried whole.
    """
    group_size = policy.chunk_size or _SERIAL_BATCH_SIZE
    for start in range(0, len(pending), group_size):
        group = list(pending[start:start + group_size])
        _check_cancel(should_cancel)
        attempts = 0
        before = _usage_snapshot()
        while True:
            try:
                with obs_trace.span(
                    "runtime.batch", kind=group[0][1].kind,
                    jobs=len(group),
                ):
                    values = _run_batch(
                        batch_worker, [spec.payload for _, spec in group]
                    )
                break
            except MnsimError:
                raise
            except Exception as exc:
                attempts += 1
                metrics.count("worker_failures")
                if attempts > policy.retries:
                    raise _job_error(
                        group[0][1], attempts, exc,
                        jobs_in_chunk=len(group),
                    ) from None
                metrics.count("retries")
        for (index, _spec), value in zip(group, values):
            results[index] = value
        metrics.count("batched_jobs", len(group))
        _account_usage(metrics, _usage_since(before))
        if advance is not None:
            advance(len(group))


# ----------------------------------------------------------------------
# Process-pool path
# ----------------------------------------------------------------------
class _SerialFallback(Exception):
    """Internal signal: the pool is unusable; redo the work serially."""


# ----------------------------------------------------------------------
# Warm-pool management
# ----------------------------------------------------------------------
_WARM_POOL: Optional[ProcessPoolExecutor] = None
_WARM_POOL_WORKERS = 0


def _acquire_pool(workers: int) -> ProcessPoolExecutor:
    """A ``ProcessPoolExecutor`` with ``workers`` processes, reusing the
    cached warm pool when its size matches.

    Raises the executor constructor's errors unchanged; callers map
    them to the serial fallback.
    """
    global _WARM_POOL, _WARM_POOL_WORKERS
    if _WARM_POOL is not None and _WARM_POOL_WORKERS == workers:
        pool, _WARM_POOL = _WARM_POOL, None
        return pool
    shutdown_warm_pool()
    return ProcessPoolExecutor(max_workers=workers)


def _release_pool(
    executor: ProcessPoolExecutor, workers: int, *, kill: bool
) -> None:
    """Return a pool after a run: cache it warm, or kill it for good.

    ``kill=True`` (a chunk blew its timeout, or the pool broke) means a
    worker may be wedged in user code forever — terminate the processes
    and never reuse them.
    """
    global _WARM_POOL, _WARM_POOL_WORKERS
    if kill:
        _shutdown_pool(executor, kill=True)
        return
    shutdown_warm_pool()
    _WARM_POOL = executor
    _WARM_POOL_WORKERS = workers


def warm_pool(jobs: int = 0) -> int:
    """Pre-start the shared worker pool for latency-sensitive sweeps.

    Spawns the worker processes immediately (instead of lazily on the
    first dispatch) so a subsequent :func:`run_jobs` call with the same
    worker count pays no start-up cost.  Returns the resolved worker
    count.  A no-op if a matching pool is already warm.
    """
    workers = RunPolicy(jobs=jobs).worker_count
    try:
        pool = _acquire_pool(workers)
        # Touch every worker once so the processes actually exist.
        list(pool.map(_noop, range(workers)))
    except (OSError, NotImplementedError, ValueError) as exc:
        _log.warning("warm pool start-up failed (%s); sweeps will fall "
                     "back to serial execution", exc)
        return workers
    _release_pool(pool, workers, kill=False)
    return workers


def shutdown_warm_pool() -> None:
    """Dispose of the cached warm pool (if any)."""
    global _WARM_POOL, _WARM_POOL_WORKERS
    if _WARM_POOL is not None:
        _WARM_POOL.shutdown(wait=False, cancel_futures=True)
        _WARM_POOL = None
        _WARM_POOL_WORKERS = 0


atexit.register(shutdown_warm_pool)


def _noop(_: Any) -> None:
    """Worker warm-up probe (must be a picklable top-level function)."""
    return None


# ----------------------------------------------------------------------
# Resource accounting (chunk boundaries)
# ----------------------------------------------------------------------
def _usage_snapshot() -> Dict[str, float]:
    """Point-in-time usage of *this* process, for delta accounting.

    Wall/CPU seconds and peak RSS come from ``resource.getrusage``
    (``os.times`` fallback where unavailable, RSS 0 there); the solver
    counters piggy-back so a chunk's fixed-point-iteration and
    batched-vs-pointwise solve deltas ride the same snapshot.  The
    counters only move while observability is enabled — the deltas are
    simply zero in a disabled run.
    """
    wall = time.perf_counter()
    if _resource is not None:
        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        cpu = usage.ru_utime + usage.ru_stime
        # Linux reports ru_maxrss in KiB, macOS in bytes.
        rss = float(usage.ru_maxrss)
        if sys.platform != "darwin":
            rss *= 1024.0
    else:  # pragma: no cover - non-POSIX platforms
        times = os.times()
        cpu = times.user + times.system
        rss = 0.0
    events = obs_metrics.counter("repro_solver_events_total")
    return {
        "wall": wall,
        "cpu": cpu,
        "rss": rss,
        "fixed_point_iterations": events.total(
            event="fixed_point_iterations"
        ),
        "pointwise_solves": events.total(event="pointwise_solve"),
        "batched_solves": obs_metrics.counter(
            "repro_solver_batched_solves_total"
        ).total(),
    }


def _usage_since(before: Dict[str, float]) -> Dict[str, float]:
    """The usage delta accumulated since ``before`` (same process)."""
    after = _usage_snapshot()
    return {
        "wall_seconds": after["wall"] - before["wall"],
        "cpu_seconds": after["cpu"] - before["cpu"],
        "peak_rss_bytes": after["rss"],
        "fixed_point_iterations": (
            after["fixed_point_iterations"]
            - before["fixed_point_iterations"]
        ),
        "pointwise_solves": (
            after["pointwise_solves"] - before["pointwise_solves"]
        ),
        "batched_solves": (
            after["batched_solves"] - before["batched_solves"]
        ),
    }


def _account_usage(
    metrics: RunMetrics, usage: Optional[Dict[str, float]]
) -> None:
    """Fold one chunk's usage delta into the run's resource totals."""
    if not usage:
        return
    for name, amount in usage.items():
        if name == "peak_rss_bytes":
            metrics.account_peak(name, amount)
        elif amount:
            metrics.account(name, amount)


def _picklable(obj: Any) -> bool:
    """Whether ``obj`` can cross a process boundary at all."""
    try:
        pickle.dumps(obj)
    except Exception as exc:
        _log.debug("worker is not picklable (%s); using serial path", exc)
        return False
    return True


def _run_chunk(
    worker: Callable[[Any], Any],
    payloads: List[Any],
    trace_context: Optional[Dict[str, Any]] = None,
    batch_worker: Optional[Callable[[List[Any]], List[Any]]] = None,
) -> Tuple[
    List[Any], Optional[List[Dict[str, Any]]], Dict[str, float]
]:
    """Executed inside a worker process: run one chunk of payloads.

    With a ``batch_worker`` the whole chunk is one vectorized call
    (wrapped in a single ``runtime.batch`` span); otherwise each
    payload runs through ``worker`` under its own ``runtime.job`` span.

    ``trace_context`` is the dispatcher's :func:`repro.obs.trace.
    current_context` payload: when present, this worker adopts it (so
    its spans parent under the dispatching chunk span) and ships the
    collected span dicts back alongside the results.

    The third element is this chunk's :func:`_usage_since` delta —
    measured in the worker so the dispatcher can attribute CPU seconds
    and peak RSS to the run (and, through the job context, to the job)
    that actually spent them.
    """
    obs_trace.activate(trace_context)
    before = _usage_snapshot()
    if batch_worker is not None:
        if trace_context is None:
            results = _run_batch(batch_worker, payloads)
            return results, None, _usage_since(before)
        with obs_trace.span("runtime.batch", jobs=len(payloads)):
            results = _run_batch(batch_worker, payloads)
        return results, obs_trace.collect(), _usage_since(before)
    if trace_context is None:
        results = [worker(payload) for payload in payloads]
        return results, None, _usage_since(before)
    results = []
    for payload in payloads:
        with obs_trace.span("runtime.job"):
            results.append(worker(payload))
    return results, obs_trace.collect(), _usage_since(before)


def _run_parallel(
    worker: Callable[[Any], Any],
    pending: Sequence[Tuple[int, JobSpec]],
    policy: RunPolicy,
    metrics: RunMetrics,
    results: List[Any],
    done: List[bool],
    advance: Optional[Callable[[int], None]] = None,
    should_cancel: Optional[Callable[[], bool]] = None,
    batch_worker: Optional[Callable[[List[Any]], List[Any]]] = None,
) -> None:
    small_sweep = len(pending) < policy.worker_count * _SMALL_SWEEP_PER_WORKER
    chunks_per_worker = 2 if small_sweep else 4
    chunk_size = policy.chunk_size or max(
        1, math.ceil(len(pending) / (policy.worker_count * chunks_per_worker))
    )
    chunks: List[List[Tuple[int, JobSpec]]] = [
        list(pending[start:start + chunk_size])
        for start in range(0, len(pending), chunk_size)
    ]
    attempts = [0] * len(chunks)

    try:
        executor = _acquire_pool(policy.worker_count)
    except (OSError, NotImplementedError, ValueError):
        raise _SerialFallback() from None

    in_flight: Dict[Any, Tuple[int, Optional[float], Any]] = {}
    workers_stuck = False
    clean_exit = False

    def submit(chunk_index: int) -> None:
        chunk = chunks[chunk_index]
        # The chunk span measures dispatch-to-result latency from the
        # dispatcher's side; its id is shipped to the worker so the
        # worker's job spans parent under it in the merged trace.
        chunk_span = obs_trace.begin(
            "runtime.chunk", chunk=chunk_index, jobs=len(chunk)
        )
        context = obs_trace.current_context()
        if context is not None:
            context = dict(context, parent=chunk_span.span_id)
        future = executor.submit(
            _run_chunk, worker, [spec.payload for _, spec in chunk],
            context, batch_worker,
        )
        metrics.count("chunks_dispatched")
        deadline = (
            time.monotonic() + policy.timeout * len(chunk)
            if policy.timeout is not None
            else None
        )
        in_flight[future] = (chunk_index, deadline, chunk_span)

    def fail(chunk_index: int, cause: BaseException) -> None:
        attempts[chunk_index] += 1
        metrics.count("worker_failures")
        if attempts[chunk_index] > policy.retries:
            first_spec = chunks[chunk_index][0][1]
            raise _job_error(
                first_spec, attempts[chunk_index], cause,
                jobs_in_chunk=len(chunks[chunk_index]),
            ) from None
        metrics.count("retries")
        submit(chunk_index)

    try:
        for chunk_index in range(len(chunks)):
            submit(chunk_index)
        while in_flight:
            if should_cancel is not None and should_cancel():
                # Workers may be mid-chunk in user code: cancel what is
                # still queued and let the finally block terminate the
                # processes (the pool is never reused after a cancel).
                for future in list(in_flight):
                    future.cancel()
                for _ci, _dl, victim_span in in_flight.values():
                    victim_span.set(error="JobCancelled").finish()
                in_flight.clear()
                workers_stuck = True
                raise JobCancelled("run cancelled by caller")
            finished, _ = wait(
                list(in_flight), timeout=_WAIT_SLICE,
                return_when=FIRST_COMPLETED,
            )
            now = time.monotonic()
            if not finished:
                for future, (ci, deadline, chunk_span) in list(
                    in_flight.items()
                ):
                    if deadline is not None and now > deadline:
                        workers_stuck = True
                        future.cancel()
                        del in_flight[future]
                        chunk_span.set(error="TimeoutError").finish()
                        fail(ci, TimeoutError(
                            f"chunk exceeded {policy.timeout:g}s/job budget"
                        ))
                continue
            for future in finished:
                if future not in in_flight:
                    # Already handled: cancelled by a timeout sweep or
                    # re-queued when a broken pool was replaced.
                    continue
                ci, _deadline, chunk_span = in_flight.pop(future)
                try:
                    chunk_results, worker_spans, chunk_usage = (
                        future.result(timeout=0)
                    )
                except MnsimError:
                    chunk_span.set(error="MnsimError").finish()
                    raise
                except pickle.PicklingError:
                    # The worker/payload cannot cross the process
                    # boundary at all; no retry will change that.  Let
                    # the feeder thread finish erroring the remaining
                    # queued items before shutdown — shutting down while
                    # it is mid-error wedges the pool's management
                    # thread and the interpreter then hangs at exit.
                    wait(list(in_flight), timeout=5.0)
                    raise _SerialFallback() from None
                except (AttributeError, TypeError) as exc:
                    # Local functions/lambdas surface as AttributeError
                    # ("Can't pickle local object ..."); same remedy.
                    if "pickle" in str(exc).lower():
                        wait(list(in_flight), timeout=5.0)
                        raise _SerialFallback() from None
                    chunk_span.set(error=type(exc).__name__).finish()
                    fail(ci, exc)
                except BrokenProcessPool as exc:
                    # A worker died (crash / kill).  Every other
                    # in-flight future is collateral damage: resubmit
                    # them on a fresh pool without charging an attempt,
                    # and charge only the chunk that surfaced the break.
                    chunk_span.set(error="BrokenProcessPool").finish()
                    _log.warning(
                        "worker pool broke (%s); resubmitting %d chunk(s) "
                        "on a fresh pool", exc, len(in_flight),
                    )
                    victims = []
                    for vci, _dl, victim_span in in_flight.values():
                        victim_span.set(resubmitted=True).finish()
                        victims.append(vci)
                    in_flight.clear()
                    _shutdown_pool(executor, kill=True)
                    try:
                        executor = _acquire_pool(policy.worker_count)
                    except (OSError, NotImplementedError, ValueError):
                        raise _SerialFallback() from None
                    for vci in victims:
                        submit(vci)
                    fail(ci, exc)
                except Exception as exc:
                    _log.warning(
                        "chunk %d (%d job(s)) failed with %s: %s; "
                        "retrying if attempts remain", ci,
                        len(chunks[ci]), type(exc).__name__, exc,
                    )
                    chunk_span.set(error=type(exc).__name__).finish()
                    fail(ci, exc)
                else:
                    chunk_span.finish()
                    if worker_spans:
                        obs_trace.absorb(worker_spans)
                    _account_usage(metrics, chunk_usage)
                    for (index, _spec), value in zip(
                        chunks[ci], chunk_results
                    ):
                        results[index] = value
                        done[index] = True
                    if batch_worker is not None:
                        metrics.count("batched_jobs", len(chunks[ci]))
                    if advance is not None:
                        advance(len(chunks[ci]))
        clean_exit = True
    finally:
        if clean_exit and not workers_stuck:
            # Healthy pool after a successful run: keep it warm for the
            # next sweep (process start-up dominates short runs).
            _release_pool(executor, policy.worker_count, kill=False)
        else:
            _shutdown_pool(executor, kill=workers_stuck)


def _shutdown_pool(executor: ProcessPoolExecutor, *, kill: bool) -> None:
    """Shut a pool down without waiting.

    With ``kill=True`` the worker processes are terminated first —
    needed when a chunk blew its timeout and a worker may be stuck in
    user code forever.  The process list must be snapshotted *before*
    ``shutdown()``, which drops the executor's reference to it.

    Teardown stays best-effort (a worker that is already gone is fine),
    but failures are no longer invisible: each one is logged and counted
    on the ``repro_worker_teardown_failures_total`` metric so operators
    can tell a leaky host from a healthy one.
    """
    processes = (
        list((getattr(executor, "_processes", None) or {}).values())
        if kill
        else []
    )
    for process in processes:
        try:
            process.terminate()
        except Exception as exc:  # pragma: no cover - best effort only
            _log.warning(
                "failed to terminate worker pid=%s: %s",
                getattr(process, "pid", "?"), exc,
            )
            obs_metrics.counter(
                "repro_worker_teardown_failures_total",
                "Worker processes that could not be terminated on teardown",
            ).inc()
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception as exc:  # pragma: no cover - best effort only
        _log.warning("pool shutdown failed: %s", exc)
        obs_metrics.counter(
            "repro_worker_teardown_failures_total",
            "Worker processes that could not be terminated on teardown",
        ).inc()


def _job_error(
    spec: JobSpec,
    attempts: int,
    cause: BaseException,
    *,
    jobs_in_chunk: int = 1,
) -> JobExecutionError:
    """Build the summarized (traceback-free) terminal failure."""
    reason = f"{type(cause).__name__}: {cause}".strip().rstrip(":")
    scope = (
        f"a chunk of {jobs_in_chunk} {spec.kind!r} jobs"
        if jobs_in_chunk > 1
        else f"{spec.kind!r} job"
    )
    return JobExecutionError(
        f"{scope} failed after {attempts} attempt(s): {reason}"
    )
