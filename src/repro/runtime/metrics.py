"""Lightweight run instrumentation for the simulation-job engine.

:class:`RunMetrics` accumulates per-stage wall time (cache lookup,
execute, cache store), counters (jobs, cache hits/misses, worker
failures, retries) and the execution mode actually used (``serial`` or
``process``).  The engine fills one in during :func:`repro.runtime.
pool.run_jobs`; CLI commands persist it next to the cache so
``repro runtime-stats`` can show the last run, and
:func:`repro.report.format_run_metrics` renders it as a table.

Since the :mod:`repro.obs` layer landed, :class:`RunMetrics` is a thin
back-compat facade over it: the per-run dicts (the ``runtime-stats``
and :meth:`save`/:meth:`load` contract) are kept as before, and when
observability is enabled every stage additionally opens a
``runtime.<stage>`` span and every stage/counter update is mirrored
into the global :data:`repro.obs.metrics.REGISTRY`
(``repro_runtime_events_total{event=...}`` and
``repro_runtime_stage_seconds{stage=...}``), so engine accounting shows
up in traces and Prometheus exports without any caller changes.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Union

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Where CLI runs persist their metrics, relative to the cache dir.
LAST_RUN_FILENAME = "last_run.json"


@dataclass
class RunMetrics:
    """Wall-time and counter accounting for one engine run.

    Attributes
    ----------
    stages:
        Stage name -> accumulated wall seconds (``cache-lookup``,
        ``execute``, ``cache-store``).
    counters:
        Event counts: ``jobs_total``, ``jobs_executed``, ``cache_hits``,
        ``cache_misses``, ``worker_failures``, ``retries``.
    mode:
        ``"serial"`` or ``"process"`` — how the execute stage ran.
    workers:
        Worker process count used for the execute stage (1 if serial).
    resources:
        Resource usage accumulated at chunk boundaries by the engine:
        ``wall_seconds``, ``cpu_seconds`` (user+system, summed across
        workers), ``peak_rss_bytes`` (max over processes),
        ``fixed_point_iterations``, ``batched_solves`` /
        ``pointwise_solves`` (see :func:`repro.runtime.pool.run_jobs`).
    """

    stages: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    mode: str = "serial"
    workers: int = 1
    resources: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the enclosed block under ``name``.

        With observability enabled the block also runs inside a
        ``runtime.<name>`` span and the elapsed time is observed on the
        global ``repro_runtime_stage_seconds`` histogram.
        """
        start = time.perf_counter()
        try:
            with obs_trace.span("runtime." + name):
                yield
        finally:
            elapsed = time.perf_counter() - start
            self.stages[name] = self.stages.get(name, 0.0) + elapsed
            if obs_trace.enabled():
                obs_metrics.histogram(
                    "repro_runtime_stage_seconds",
                    "Engine stage wall time per run_jobs call",
                ).observe(elapsed, stage=name)

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created on first use).

        Mirrored into the global registry as
        ``repro_runtime_events_total{event=name}`` when observability
        is enabled.
        """
        self.counters[name] = self.counters.get(name, 0) + amount
        if obs_trace.enabled():
            obs_metrics.counter(
                "repro_runtime_events_total",
                "Engine event counts across all run_jobs calls",
            ).inc(amount, event=name)

    def account(self, name: str, amount: float) -> None:
        """Accumulate ``amount`` into resource ``name`` (summing).

        Mirrored as ``repro_job_resources{resource=name}`` gauges when
        observability is enabled (job-labelled inside a JobContext).
        """
        self.resources[name] = self.resources.get(name, 0.0) + amount
        if obs_trace.enabled():
            obs_metrics.gauge(
                "repro_job_resources",
                "Accumulated resource usage of the current run",
            ).set(self.resources[name], resource=name)

    def account_peak(self, name: str, value: float) -> None:
        """Track the maximum of ``value`` seen for resource ``name``."""
        if value <= self.resources.get(name, 0.0):
            return
        self.resources[name] = value
        if obs_trace.enabled():
            obs_metrics.gauge(
                "repro_job_resources",
                "Accumulated resource usage of the current run",
            ).set(value, resource=name)

    def resource_snapshot(self) -> Dict[str, float]:
        """Resources plus the cache/job counters a progress consumer
        wants in one place (service ``progress`` events ship this)."""
        snapshot = dict(sorted(self.resources.items()))
        for name in (
            "jobs_executed", "cache_hits", "cache_misses", "retries",
            "worker_failures",
        ):
            if name in self.counters:
                snapshot[name] = self.counters[name]
        return snapshot

    # ------------------------------------------------------------------
    @property
    def jobs_per_second(self) -> float:
        """Executed-job throughput over the execute stage (0 when idle)."""
        elapsed = self.stages.get("execute", 0.0)
        executed = self.counters.get("jobs_executed", 0)
        return executed / elapsed if elapsed > 0 else 0.0

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded stage wall times."""
        return sum(self.stages.values())

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (stable key order for cache-key safety)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "jobs_per_second": self.jobs_per_second,
            "mode": self.mode,
            "resources": dict(sorted(self.resources.items())),
            "stages": dict(sorted(self.stages.items())),
            "total_seconds": self.total_seconds,
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunMetrics":
        """Rebuild a snapshot produced by :meth:`to_dict`."""
        return cls(
            stages=dict(data.get("stages", {})),
            counters=dict(data.get("counters", {})),
            mode=str(data.get("mode", "serial")),
            workers=int(data.get("workers", 1)),
            resources=dict(data.get("resources", {})),
        )

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Persist the snapshot as JSON; returns the written path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunMetrics":
        """Load a snapshot written by :meth:`save`."""
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )
