"""Unit conventions and small conversion helpers.

The whole library uses SI base units internally:

* length  — metres       (``M``)
* area    — square metres
* time    — seconds
* power   — watts
* energy  — joules
* resistance — ohms
* capacitance — farads
* voltage — volts

Helpers below convert to/from the display units used by the paper's tables
(nm, um^2, mm^2, ns, us, uJ, mJ, mW, W).  Keeping the conversions in one
module avoids scattered magic constants.
"""

from __future__ import annotations

# Length
NM = 1e-9
UM = 1e-6
MM = 1e-3

# Area
UM2 = UM * UM
MM2 = MM * MM

# Time
PS = 1e-12
NS = 1e-9
US = 1e-6
MS = 1e-3

# Energy
PJ = 1e-12
NJ = 1e-9
UJ = 1e-6
MJ = 1e-3

# Power
NW = 1e-9
UW = 1e-6
MW = 1e-3

# Resistance
KOHM = 1e3
MOHM = 1e6

# Capacitance
FF = 1e-15
PF = 1e-12

# Frequency
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9


def to_unit(value: float, unit: float) -> float:
    """Convert an SI ``value`` to the given display ``unit``.

    >>> round(to_unit(2.5e-6, US), 9)
    2.5
    """
    return value / unit


def from_unit(value: float, unit: float) -> float:
    """Convert a ``value`` expressed in ``unit`` back to SI.

    >>> round(from_unit(2.5, US), 12)
    2.5e-06
    """
    return value * unit


def fmt_si(value: float, quantity: str = "") -> str:
    """Format ``value`` with an engineering SI prefix, e.g. ``1.23 uJ``.

    ``quantity`` is the bare unit symbol appended after the prefix
    (``"J"``, ``"W"``, ``"s"``, ``"m^2"`` ...).  Values of exactly zero
    format without a prefix.
    """
    prefixes = [
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
    ]
    if value == 0:
        return f"0 {quantity}".strip()
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.4g} {prefix}{quantity}".strip()
    scale, prefix = prefixes[-1]
    return f"{value / scale:.4g} {prefix}{quantity}".strip()
