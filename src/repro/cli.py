"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the software flow of the paper's Fig. 3:

* ``simulate`` — build the accelerator for a configuration (file or
  flags) and a network, print the summary and optional hierarchical
  report / breakdown;
* ``explore`` — traversal design-space exploration with an error
  constraint, printing the per-target optima (the Tables IV/VI flow);
* ``montecarlo`` — circuit-level Monte-Carlo accuracy sampling (drives
  the SPICE solver, so its traces show the solver's internals);
  ``--output`` writes a deterministic result JSON byte-identical to
  the service's result document for the equivalent payload;
* ``serve`` — the simulation-as-a-service HTTP job server (see
  :mod:`repro.service`): validated JSON payloads in, content-addressed
  job ids, progress streaming, cached result retrieval;
* ``faults`` — fault-injection campaign sweeping fault rate x fault
  mode x network into accuracy-vs-fault-rate curves with confidence
  intervals (see :mod:`repro.faults`); ``--output`` writes a
  byte-reproducible campaign JSON;
* ``campaign`` — declarative campaign files (JSON, or TOML on Python
  3.11+): ``validate`` checks a file and summarizes its expansion,
  ``run`` executes it through the stage-DAG runner
  (:mod:`repro.campaign`), ``resume`` re-runs an interrupted campaign
  against its cache so completed stages replay without engine work;
* ``netlist`` — export a SPICE netlist for a random-programmed crossbar
  of the configured size (the hand-off path to external simulators);
* ``runtime-stats`` — the job engine's last-run metrics and cache
  effectiveness (see :mod:`repro.runtime`);
* ``obs-report`` — render a saved trace as a wall-time tree + top-k
  table (see :mod:`repro.obs`); ``--job ID`` fetches a running
  service's per-job trace instead of reading a file;
* ``jobs`` — ``list`` and ``watch`` jobs on a running service;
  ``watch`` streams progress events with live ETA, throughput and
  resource usage;
* ``lint`` — the project-specific static-analysis pass (determinism,
  cache-key purity, fork-safety, except hygiene, units discipline;
  see :mod:`repro.analysis`): exit 0 clean modulo the checked-in
  baseline, exit 2 on new findings.

``simulate``, ``explore``, ``montecarlo`` and ``faults`` accept the
engine knobs
``--jobs N`` (parallel worker processes), ``--cache-dir PATH``
(persistent result cache; also honoured from ``$REPRO_CACHE_DIR``) and
``--no-cache``.

Global flags (before the subcommand): ``--trace FILE`` writes a Chrome
trace-event JSON of the run (``$REPRO_TRACE`` does the same), and
``--metrics FILE`` dumps the metrics registry (JSON for ``*.json``,
Prometheus text exposition otherwise).  ``-v`` / ``-q`` adjust stderr
diagnostics: result tables go to stdout, progress and diagnostic lines
go to stderr through :mod:`logging`, so piping stdout stays clean.

Network specs are compact strings: ``mlp:784,256,10``, or the built-ins
``validation-mlp`` / ``jpeg`` / ``large-bank`` / ``caffenet`` / ``vgg16``.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import List, Optional

import numpy as np

import repro.obs as obs
from repro.arch.accelerator import Accelerator
from repro.arch.breakdown import accelerator_breakdown
from repro.config import SimConfig
from repro.dse.explorer import explore, optimal_table, simulate_point
from repro.dse.space import DesignSpace
from repro.errors import JobExecutionError, MnsimError, ValidationError
from repro.nn.networks import (
    Network,
    caffenet,
    jpeg_autoencoder,
    large_bank_layer,
    mlp,
    validation_mlp,
    vgg16,
)
from repro.report import format_run_metrics, format_table
from repro.runtime import (
    LAST_RUN_FILENAME,
    ResultCache,
    RunMetrics,
    default_cache_dir,
)
from repro.units import MM2, UJ, US

_log = logging.getLogger("repro.cli")


def _setup_logging(verbosity: int) -> None:
    """Route ``repro`` diagnostics to the *current* stderr.

    Handlers are rebuilt on every :func:`main` call because test
    harnesses (pytest's capsys) swap ``sys.stderr`` per invocation; a
    cached handler would keep writing to a closed stream.
    Verbosity: ``-1`` (--quiet) warnings only, ``0`` progress lines,
    ``>=1`` (-v) debug detail with logger names.
    """
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    if verbosity >= 1:
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
    else:
        handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.propagate = False
    if verbosity < 0:
        logger.setLevel(logging.WARNING)
    elif verbosity == 0:
        logger.setLevel(logging.INFO)
    else:
        logger.setLevel(logging.DEBUG)


_BUILTIN_NETWORKS = {
    "validation-mlp": validation_mlp,
    "jpeg": jpeg_autoencoder,
    "large-bank": large_bank_layer,
    "caffenet": caffenet,
    "vgg16": vgg16,
}


def parse_network(spec: str) -> Network:
    """Resolve a network spec string (built-in name or ``mlp:a,b,c``)."""
    spec = spec.strip().lower()
    if spec in _BUILTIN_NETWORKS:
        return _BUILTIN_NETWORKS[spec]()
    if spec.startswith("mlp:"):
        try:
            sizes = [int(part) for part in spec[4:].split(",") if part]
        except ValueError:
            raise ValidationError(
                "MLP sizes must be comma-separated integers",
                path="network", value=spec,
            ) from None
        return mlp(sizes, name=spec)
    raise ValidationError(
        "unknown network",
        path="network", value=spec,
        allowed=sorted(_BUILTIN_NETWORKS) + ["mlp:a,b,c"],
    )


def _load_config(args: argparse.Namespace) -> SimConfig:
    if args.config:
        config = SimConfig.from_file(args.config)
    else:
        config = SimConfig()
    overrides = {}
    for field_name in ("crossbar_size", "cmos_tech", "interconnect_tech",
                       "parallelism_degree", "weight_bits", "signal_bits"):
        value = getattr(args, field_name, None)
        if value is not None:
            overrides[field_name] = value
    return config.replace(**overrides) if overrides else config


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", help="Table-I-style configuration file")
    parser.add_argument("--crossbar-size", dest="crossbar_size", type=int)
    parser.add_argument("--cmos-tech", dest="cmos_tech", type=int)
    parser.add_argument(
        "--interconnect-tech", dest="interconnect_tech", type=int
    )
    parser.add_argument(
        "--parallelism-degree", dest="parallelism_degree", type=int
    )
    parser.add_argument("--weight-bits", dest="weight_bits", type=int)
    parser.add_argument("--signal-bits", dest="signal_bits", type=int)


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial, 0 = all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        help="persistent result-cache directory "
        "(default: $REPRO_CACHE_DIR if set, else caching is off)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if a directory is configured",
    )


def _make_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    """Resolve the opt-in cache: flag > env var > disabled."""
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None) or os.environ.get(
        "REPRO_CACHE_DIR"
    )
    return ResultCache(cache_dir) if cache_dir else None


def _finish_run(cache: Optional[ResultCache],
                metrics: RunMetrics) -> None:
    """Persist run metrics next to the cache for ``runtime-stats``."""
    if cache is not None:
        metrics.save(cache.cache_dir / LAST_RUN_FILENAME)
        cache.close()


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = _load_config(args)
    network = parse_network(args.network)
    accelerator = Accelerator(config, network)
    cache = _make_cache(args)
    metrics = RunMetrics()
    summary = simulate_point(config, network, cache=cache, metrics=metrics)

    _log.info("network: %s (%d banks)", network.name, network.depth)
    print(format_table(
        ["metric", "value"],
        [
            ["area (mm^2)", f"{summary.area / MM2:.4f}"],
            ["energy / sample (uJ)",
             f"{summary.energy_per_sample / UJ:.4f}"],
            ["sample latency (us)", f"{summary.sample_latency / US:.4f}"],
            ["compute latency (us)", f"{summary.compute_latency / US:.4f}"],
            ["pipeline cycle (us)", f"{summary.pipeline_cycle / US:.4f}"],
            ["power (W)", f"{summary.power:.4f}"],
            ["worst error rate", f"{summary.worst_error_rate:.2%}"],
            ["relative accuracy", f"{summary.relative_accuracy:.2%}"],
            ["units", accelerator.total_units],
            ["crossbars", accelerator.total_crossbars],
        ],
    ))
    if args.report:
        print()
        print(accelerator.report().render(max_depth=args.report_depth))
    if args.breakdown:
        print()
        print(accelerator_breakdown(accelerator).render())
    _finish_run(cache, metrics)
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    config = _load_config(args)
    network = parse_network(args.network)
    space = DesignSpace(
        crossbar_sizes=tuple(args.sizes),
        parallelism_degrees=tuple(args.degrees),
        interconnect_nodes=tuple(args.wires),
    )
    cache = _make_cache(args)
    metrics = RunMetrics()
    points = explore(
        config, network, space, max_error_rate=args.max_error,
        jobs=args.jobs, cache=cache, metrics=metrics,
    )
    _log.info(
        "%d designs explored, %d feasible%s",
        len(space), len(points),
        f" (error <= {args.max_error:.0%})" if args.max_error else "",
    )
    if args.jobs != 1 or cache is not None:
        hits = metrics.counters.get("cache_hits", 0)
        _log.info(
            "runtime: %s x%d, %s jobs/s, %d cache hits",
            metrics.mode, metrics.workers,
            f"{metrics.jobs_per_second:,.0f}", hits,
        )
    _finish_run(cache, metrics)
    if not points:
        _log.error("no feasible design; relax --max-error")
        return 1
    rows = []
    for metric, point in optimal_table(points).items():
        s = point.summary
        rows.append([
            metric,
            f"{s.area / MM2:.3f}",
            f"{s.energy_per_sample / UJ:.3f}",
            f"{s.compute_latency / US:.4f}",
            f"{s.worst_error_rate:.2%}",
            point.crossbar_size,
            point.interconnect_tech,
            point.parallelism_degree,
        ])
    print(format_table(
        ["target", "area mm^2", "energy uJ", "latency us", "error",
         "xbar", "wire", "p"],
        rows,
    ))
    return 0


def _cmd_netlist(args: argparse.Namespace) -> int:
    from repro.accuracy.interconnect import DEFAULT_SENSE_RESISTANCE
    from repro.spice.netlist import generate_netlist

    config = _load_config(args)
    device = config.device
    size = config.crossbar_size
    rng = np.random.default_rng(args.seed)
    levels = rng.integers(0, device.levels, size=(size, size))
    resistances = np.vectorize(device.resistance_of_level)(levels)
    inputs = rng.uniform(0, device.read_voltage, size=size)
    segment = config.wire.segment_resistance(
        device.cell_pitch(config.cell_type)
    )
    netlist = generate_netlist(
        resistances, inputs, segment, DEFAULT_SENSE_RESISTANCE,
        title=f"MNSIM {size}x{size} crossbar (seed {args.seed})",
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(netlist)
        _log.info(
            "wrote %s (%d lines)", args.output, len(netlist.splitlines())
        )
    else:
        print(netlist)
    return 0


def _cmd_montecarlo(args: argparse.Namespace) -> int:
    from repro.runtime.pool import RunPolicy
    from repro.service.schema import InputMode, MonteCarloSpec
    from repro.service.workloads import montecarlo_document, render_document

    config = _load_config(args)
    size = args.size or config.crossbar_size
    spec = MonteCarloSpec(
        trials=args.trials,
        seed=args.seed,
        size=args.size,
        sigma=args.sigma,
        input_mode=InputMode(args.input_mode),
        inputs_per_trial=args.inputs_per_trial,
    )
    cache = _make_cache(args)
    metrics = RunMetrics()
    _log.info(
        "monte-carlo: %dx%d crossbar, %d trials, seed %d",
        size, size, args.trials, args.seed,
    )
    # The document builder is shared with the service layer, so the
    # --output file is byte-identical to `GET /jobs/{id}/result` for
    # the equivalent payload.
    doc = montecarlo_document(
        config, spec,
        cache=cache,
        metrics=metrics,
        policy=RunPolicy(jobs=args.jobs),
    )
    summary = doc["summary"]
    print(format_table(
        ["metric", "value"],
        [
            ["samples", str(summary["samples"])],
            ["mean |error|", f"{summary['mean_abs_error']:.4%}"],
            ["p50 |error|", f"{summary['p50_abs_error']:.4%}"],
            ["p95 |error|", f"{summary['p95_abs_error']:.4%}"],
            ["p99 |error|", f"{summary['p99_abs_error']:.4%}"],
            ["max |error|", f"{summary['max_abs_error']:.4%}"],
        ],
    ))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(render_document(doc))
        _log.info("monte-carlo JSON written to %s", args.output)
    _finish_run(cache, metrics)
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        networks=tuple(args.networks),
        fault_modes=tuple(args.modes),
        fault_rates=tuple(args.rates),
        trials=args.trials,
        seed=args.seed,
        size=args.size,
        device=args.device,
        segment_resistance=args.segment_resistance,
    )
    cache = _make_cache(args)
    metrics = RunMetrics()
    _log.info(
        "faults: %d networks x %d modes x %d rates, %d trials, seed %d",
        len(spec.networks), len(spec.fault_modes), len(spec.fault_rates),
        spec.trials, spec.seed,
    )
    result = run_campaign(
        spec, jobs=args.jobs, cache=cache, metrics=metrics
    )
    rows = []
    for point in result.points:
        rows.append([
            point.network,
            point.fault_mode,
            f"{point.fault_rate:g}",
            str(point.trials),
            str(point.failures),
            f"{point.mean_fault_count:.1f}",
            "-" if point.mean_error is None else f"{point.mean_error:.4%}",
            "-" if point.ci95 is None else f"{point.ci95:.4%}",
            "-" if point.relative_accuracy is None
            else f"{point.relative_accuracy:.2%}",
        ])
    print(format_table(
        ["network", "mode", "rate", "trials", "failed",
         "faults/trial", "mean error", "ci95", "rel. accuracy"],
        rows,
    ))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
        _log.info("campaign JSON written to %s", args.output)
    _finish_run(cache, metrics)
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign.config import CampaignConfig
    from repro.campaign.runner import run_campaign_config

    config = CampaignConfig.from_file(args.file)
    cache = _make_cache(args)
    if args.resume and cache is None:
        print(
            "error: campaign resume needs a result cache; pass "
            "--cache-dir (or set $REPRO_CACHE_DIR) pointing at the "
            "interrupted run's cache", file=sys.stderr,
        )
        return 2
    metrics = RunMetrics()
    _log.info(
        "campaign %r: %d units, %d jobs total, numCPUs=%d%s",
        config.name, len(config.units), config.total_work(),
        config.execution.jobs if args.jobs is None else args.jobs,
        " (resume)" if args.resume else "",
    )
    run = run_campaign_config(
        config, jobs=args.jobs, cache=cache, metrics=metrics,
    )
    rows = []
    for name, stats in run.stage_stats.items():
        rows.append([
            name,
            "yes" if stats["resumed"] else "-",
            str(stats["jobs"]),
            str(stats["cache_hits"]),
            f"{stats['elapsed_seconds']:.2f}",
        ])
    print(format_table(
        ["stage", "resumed", "jobs", "cache hits", "seconds"], rows,
    ))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(run.to_json())
        _log.info("campaign report written to %s", args.output)
    _finish_run(cache, metrics)
    return 0


def _cmd_campaign_validate(args: argparse.Namespace) -> int:
    from repro.campaign.config import CampaignConfig

    # Validation errors propagate as MnsimError -> exit code 2.
    config = CampaignConfig.from_file(args.file)
    combo_sizes = " x ".join(
        str(len(values)) for _key, values in config.combination
    ) or "1"
    print(format_table(
        ["field", "value"],
        [
            ["name", config.name],
            ["fingerprint", config.fingerprint()],
            ["combinations", combo_sizes],
            ["runs per combination", str(config.num_runs)],
            ["units", str(len(config.units))],
            ["engine jobs", str(config.total_work())],
            ["numCPUs", str(config.execution.jobs)],
            ["post hooks", ", ".join(config.post) or "-"],
        ],
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.jobs import JobManager
    from repro.service.server import serve

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if args.no_cache:
        cache_dir = None
    manager = JobManager(cache_dir=cache_dir, workers=args.workers)
    server = serve(args.host, args.port, manager)
    host, port = server.server_address[:2]
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{port}\n")
    _log.info(
        "cache: %s | workers: %d | POST a payload to "
        "http://%s:%d/jobs to submit work",
        cache_dir or "(disabled)", args.workers, host, port,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        _log.info("interrupt: shutting down")
    finally:
        server.server_close()
        manager.shutdown()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import run_lint

    return run_lint(args)


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.report import render_report, spans_from_trace

    if args.job:
        from repro.service.client import ServiceClient

        client = ServiceClient(args.url)
        try:
            spans = spans_from_trace(client.job_trace(args.job))
        except OSError as exc:  # URLError: service not reachable
            raise MnsimError(
                f"cannot reach service at {args.url!r}: {exc}"
            ) from exc
        print(render_report(spans, k=args.top, max_depth=args.depth))
        return 0
    if not args.trace_file:
        raise MnsimError(
            "either a trace file or --job JOB_ID is required"
        )
    try:
        print(render_report(
            args.trace_file, k=args.top, max_depth=args.depth,
        ))
    except (OSError, ValueError) as exc:
        raise MnsimError(
            f"cannot read trace {args.trace_file!r}: {exc}"
        ) from exc
    return 0


def _cmd_jobs_list(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    try:
        jobs = client.jobs()
    except OSError as exc:
        raise MnsimError(
            f"cannot reach service at {args.url!r}: {exc}"
        ) from exc
    if not jobs:
        print("no jobs known to the service")
        return 0
    rows = [
        [
            job["job_id"][:12],
            job.get("kind", "?"),
            job.get("state", "?"),
            f"{job.get('done', 0)}/{job.get('total', 0)}",
            job.get("description", ""),
        ]
        for job in jobs
    ]
    print(format_table(
        ["job", "kind", "state", "progress", "description"], rows
    ))
    return 0


def _cmd_jobs_watch(args: argparse.Namespace) -> int:
    from repro.obs.report import render_progress_line
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    final_state = None
    try:
        for event in client.iter_events(args.job_id):
            if event.get("event") == "progress":
                print(render_progress_line(event), flush=True)
            elif event.get("event") == "state":
                final_state = event.get("state")
                print(f"state: {final_state}", flush=True)
    except OSError as exc:
        raise MnsimError(
            f"cannot reach service at {args.url!r}: {exc}"
        ) from exc
    return 0 if final_state == "done" else 1


def _cmd_suggest(args: argparse.Namespace) -> int:
    from repro.dse.autocomplete import suggest_designs

    config = _load_config(args)
    network = parse_network(args.network)
    suggestions = suggest_designs(
        config, network, free=tuple(args.free),
        max_error_rate=args.max_error,
    )
    rows = []
    for metric, completed in suggestions.items():
        point = completed.point
        rows.append([
            metric,
            completed.config.crossbar_size,
            completed.config.interconnect_tech,
            completed.config.parallelism_degree,
            f"{point.area / MM2:.3f}",
            f"{point.energy / UJ:.3f}",
            f"{point.latency / US:.4f}",
            f"{point.error_rate:.2%}",
        ])
    print(format_table(
        ["target", "xbar", "wire nm", "p", "area mm^2", "energy uJ",
         "latency us", "error"],
        rows,
    ))
    return 0


def _cmd_runtime_stats(args: argparse.Namespace) -> int:
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    directory = (
        ResultCache(cache_dir).cache_dir if cache_dir else default_cache_dir()
    )
    last_run = directory / LAST_RUN_FILENAME
    db_path = directory / "results.sqlite"
    print(f"cache directory: {directory}")
    if db_path.exists():
        with ResultCache(directory) as cache:
            stats = cache.stats()
        print(format_table(
            ["cache metric", "value"],
            [
                ["entries (current version)", str(stats.entries)],
                ["stale entries", str(stats.stale_entries)],
                ["database size (bytes)", str(db_path.stat().st_size)],
            ],
        ))
    else:
        print("no result cache recorded yet")
    print()
    if last_run.exists():
        print("last run:")
        print(format_run_metrics(RunMetrics.load(last_run)))
    else:
        print("no runtime statistics recorded yet; run simulate/explore "
              "with --cache-dir")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MNSIM reproduction: behavior-level simulation of "
        "memristor-based neuromorphic accelerators",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a Chrome trace-event JSON of this run "
        "(also enabled by $REPRO_TRACE; view with 'repro obs-report' "
        "or Perfetto)",
    )
    parser.add_argument(
        "--metrics", metavar="FILE",
        help="dump the metrics registry on exit (JSON for *.json, "
        "Prometheus text exposition otherwise)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more stderr diagnostics (repeatable)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress progress lines on stderr (warnings still shown)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", help="simulate one design point"
    )
    _add_config_flags(simulate)
    _add_runtime_flags(simulate)
    simulate.add_argument("network", help="network spec (e.g. mlp:784,256,10)")
    simulate.add_argument(
        "--report", action="store_true", help="print the hierarchical report"
    )
    simulate.add_argument(
        "--report-depth", type=int, default=2, help="report tree depth"
    )
    simulate.add_argument(
        "--breakdown", action="store_true",
        help="print the per-category area/energy breakdown",
    )
    simulate.set_defaults(func=_cmd_simulate)

    explore_cmd = sub.add_parser(
        "explore", help="design-space exploration"
    )
    _add_config_flags(explore_cmd)
    _add_runtime_flags(explore_cmd)
    explore_cmd.add_argument("network")
    explore_cmd.add_argument(
        "--sizes", type=int, nargs="+", default=[64, 128, 256, 512],
    )
    explore_cmd.add_argument(
        "--degrees", type=int, nargs="+", default=[1, 16, 256],
    )
    explore_cmd.add_argument(
        "--wires", type=int, nargs="+", default=[18, 28, 45],
    )
    explore_cmd.add_argument("--max-error", type=float, default=None)
    explore_cmd.set_defaults(func=_cmd_explore)

    montecarlo = sub.add_parser(
        "montecarlo",
        help="circuit-level Monte-Carlo accuracy sampling",
    )
    _add_config_flags(montecarlo)
    _add_runtime_flags(montecarlo)
    montecarlo.add_argument(
        "--trials", type=int, default=8, help="sampled weight matrices"
    )
    montecarlo.add_argument("--seed", type=int, default=0)
    montecarlo.add_argument(
        "--size", type=int, default=None,
        help="crossbar size (default: the configured crossbar_size)",
    )
    montecarlo.add_argument(
        "--sigma", type=float, default=None,
        help="device-variation magnitude (default: the device's sigma)",
    )
    montecarlo.add_argument(
        "--input-mode", choices=("random", "full"), default="random",
    )
    montecarlo.add_argument(
        "--inputs-per-trial", type=int, default=1,
        help="input vectors per sampled matrix (batched solve)",
    )
    montecarlo.add_argument(
        "--output", "-o",
        help="write the deterministic result JSON to this file "
        "(byte-identical to the service's result document)",
    )
    montecarlo.set_defaults(func=_cmd_montecarlo)

    faults = sub.add_parser(
        "faults",
        help="fault-injection campaign: accuracy vs fault rate",
    )
    _add_runtime_flags(faults)
    faults.add_argument(
        "--networks", nargs="+", default=["crossbar"],
        help="network specs: 'crossbar' and/or 'mlp:a,b,...'",
    )
    faults.add_argument(
        "--modes", nargs="+", default=["stuck_mixed"],
        help="fault modes (stuck_low/stuck_high/stuck_mixed/"
        "open_cell/line_open/line_short/drift)",
    )
    faults.add_argument(
        "--rates", nargs="+", type=float,
        default=[0.0, 0.01, 0.02, 0.05],
        help="fault rates (drift: lognormal sigma)",
    )
    faults.add_argument(
        "--trials", type=int, default=8, help="injections per sweep point"
    )
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument(
        "--size", type=int, default=16, help="square crossbar size"
    )
    faults.add_argument(
        "--device", default="IDEAL", help="built-in memristor model name"
    )
    faults.add_argument(
        "--segment-resistance", type=float, default=1.0,
        help="wire segment resistance (ohm)",
    )
    faults.add_argument(
        "--output", "-o",
        help="write the deterministic campaign JSON to this file",
    )
    faults.set_defaults(func=_cmd_faults)

    campaign_cmd = sub.add_parser(
        "campaign",
        help="declarative campaign files: validate, run, resume",
    )
    campaign_sub = campaign_cmd.add_subparsers(
        dest="campaign_command", required=True
    )

    def _add_campaign_run_flags(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "file", help="campaign file (.json, or .toml on Python 3.11+)"
        )
        parser.add_argument(
            "--jobs", type=int, default=None,
            help="override the file's execution.numCPUs "
            "(results are identical for any value)",
        )
        parser.add_argument(
            "--cache-dir",
            help="persistent result-cache directory "
            "(default: $REPRO_CACHE_DIR if set, else caching is off)",
        )
        parser.add_argument(
            "--no-cache", action="store_true",
            help="disable the result cache even if a directory is "
            "configured",
        )
        parser.add_argument(
            "--output", "-o",
            help="write the deterministic campaign report JSON here",
        )

    campaign_run = campaign_sub.add_parser(
        "run", help="validate and execute a campaign file"
    )
    _add_campaign_run_flags(campaign_run)
    campaign_run.set_defaults(func=_cmd_campaign_run, resume=False)

    campaign_validate = campaign_sub.add_parser(
        "validate",
        help="validate a campaign file and summarize its expansion",
    )
    campaign_validate.add_argument(
        "file", help="campaign file (.json, or .toml on Python 3.11+)"
    )
    campaign_validate.set_defaults(func=_cmd_campaign_validate)

    campaign_resume = campaign_sub.add_parser(
        "resume",
        help="re-run an interrupted campaign from its cache "
        "(completed stages replay without engine work)",
    )
    _add_campaign_run_flags(campaign_resume)
    campaign_resume.set_defaults(func=_cmd_campaign_run, resume=True)

    netlist = sub.add_parser(
        "netlist", help="export a SPICE netlist of one crossbar"
    )
    _add_config_flags(netlist)
    netlist.add_argument("--seed", type=int, default=0)
    netlist.add_argument("--output", "-o", help="output file (default stdout)")
    netlist.set_defaults(func=_cmd_netlist)

    suggest = sub.add_parser(
        "suggest",
        help="auto-complete unspecified design parameters per target",
    )
    _add_config_flags(suggest)
    suggest.add_argument("network")
    suggest.add_argument(
        "--free", nargs="+",
        default=["crossbar_size", "parallelism_degree",
                 "interconnect_tech"],
        help="fields the tool may choose",
    )
    suggest.add_argument("--max-error", type=float, default=None)
    suggest.set_defaults(func=_cmd_suggest)

    serve_cmd = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP job server",
    )
    serve_cmd.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: loopback only)",
    )
    serve_cmd.add_argument(
        "--port", type=int, default=8321,
        help="TCP port (0 picks an ephemeral port)",
    )
    serve_cmd.add_argument(
        "--port-file", metavar="FILE",
        help="write the bound port to FILE (for scripts using --port 0)",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=1,
        help="executor threads; each job still parallelises internally "
        "via --jobs-style process pools (default 1)",
    )
    serve_cmd.add_argument(
        "--cache-dir",
        help="persistent result cache directory "
        "(default: $REPRO_CACHE_DIR, else uncached)",
    )
    serve_cmd.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if $REPRO_CACHE_DIR is set",
    )
    serve_cmd.set_defaults(func=_cmd_serve)

    runtime_stats = sub.add_parser(
        "runtime-stats",
        help="show job-engine metrics of the last run and cache stats",
    )
    runtime_stats.add_argument(
        "--cache-dir",
        help="cache directory to inspect (default: $REPRO_CACHE_DIR "
        "or ~/.cache/repro)",
    )
    runtime_stats.set_defaults(func=_cmd_runtime_stats)

    lint = sub.add_parser(
        "lint",
        help="run the project static-analysis rules (R1-R5)",
    )
    from repro.analysis.lint import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    obs_report = sub.add_parser(
        "obs-report",
        help="render a saved --trace file (or a service job's trace) "
             "as a wall-time tree",
    )
    obs_report.add_argument(
        "trace_file", nargs="?", default=None,
        help="Chrome trace-event JSON (omit when using --job)",
    )
    obs_report.add_argument(
        "--job", default=None, metavar="JOB_ID",
        help="fetch the trace of this service job instead of a file",
    )
    obs_report.add_argument(
        "--url", default="http://127.0.0.1:8321",
        help="service base URL for --job (default %(default)s)",
    )
    obs_report.add_argument(
        "--top", type=int, default=10, help="rows in the by-name table"
    )
    obs_report.add_argument(
        "--depth", type=int, default=None, help="max tree depth"
    )
    obs_report.set_defaults(func=_cmd_obs_report)

    jobs_cmd = sub.add_parser(
        "jobs",
        help="inspect and watch jobs on a running service",
    )
    jobs_sub = jobs_cmd.add_subparsers(dest="jobs_command", required=True)
    jobs_list = jobs_sub.add_parser(
        "list", help="list jobs known to the service"
    )
    jobs_list.add_argument(
        "--url", default="http://127.0.0.1:8321",
        help="service base URL (default %(default)s)",
    )
    jobs_list.set_defaults(func=_cmd_jobs_list)
    jobs_watch = jobs_sub.add_parser(
        "watch",
        help="stream a job's progress events with live ETA and "
             "resource usage",
    )
    jobs_watch.add_argument("job_id", help="job id (from submit or list)")
    jobs_watch.add_argument(
        "--url", default="http://127.0.0.1:8321",
        help="service base URL (default %(default)s)",
    )
    jobs_watch.set_defaults(func=_cmd_jobs_watch)

    return parser


def _write_metrics(path: str) -> None:
    """Dump the registry: JSON for ``*.json``, Prometheus text else."""
    if path.endswith(".json"):
        payload = obs.REGISTRY.to_json()
    else:
        payload = obs.REGISTRY.to_prometheus()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
        if not payload.endswith("\n"):
            handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: ``0`` success, ``1`` empty result (e.g. no feasible
    design), ``2`` configuration/model error, ``3`` worker failure after
    exhausted retries (summarized — child tracebacks never reach the
    terminal).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    _setup_logging((args.verbose or 0) - (1 if args.quiet else 0))
    trace_path = args.trace or obs.trace_path_from_env()
    metrics_path = args.metrics
    observing = bool(trace_path or metrics_path)
    if observing:
        obs.trace.clear()
        obs.REGISTRY.reset()
        obs.enable(debug=obs.debug_from_env())
    try:
        return args.func(args)
    except JobExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except MnsimError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if observing:
            obs.disable()
            if trace_path:
                obs.trace.export_chrome(trace_path)
                _log.info("trace written to %s", trace_path)
            if metrics_path:
                _write_metrics(metrics_path)
                _log.info("metrics written to %s", metrics_path)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
