"""Command-line interface: ``python -m repro <command>``.

Three subcommands cover the software flow of the paper's Fig. 3:

* ``simulate`` — build the accelerator for a configuration (file or
  flags) and a network, print the summary and optional hierarchical
  report / breakdown;
* ``explore`` — traversal design-space exploration with an error
  constraint, printing the per-target optima (the Tables IV/VI flow);
* ``netlist`` — export a SPICE netlist for a random-programmed crossbar
  of the configured size (the hand-off path to external simulators).

Network specs are compact strings: ``mlp:784,256,10``, or the built-ins
``validation-mlp`` / ``jpeg`` / ``large-bank`` / ``caffenet`` / ``vgg16``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.arch.accelerator import Accelerator
from repro.arch.breakdown import accelerator_breakdown
from repro.config import SimConfig
from repro.dse.explorer import explore, optimal_table
from repro.dse.space import DesignSpace
from repro.errors import ConfigError, MnsimError
from repro.nn.networks import (
    Network,
    caffenet,
    jpeg_autoencoder,
    large_bank_layer,
    mlp,
    validation_mlp,
    vgg16,
)
from repro.report import format_table
from repro.units import MM2, UJ, US

_BUILTIN_NETWORKS = {
    "validation-mlp": validation_mlp,
    "jpeg": jpeg_autoencoder,
    "large-bank": large_bank_layer,
    "caffenet": caffenet,
    "vgg16": vgg16,
}


def parse_network(spec: str) -> Network:
    """Resolve a network spec string (built-in name or ``mlp:a,b,c``)."""
    spec = spec.strip().lower()
    if spec in _BUILTIN_NETWORKS:
        return _BUILTIN_NETWORKS[spec]()
    if spec.startswith("mlp:"):
        try:
            sizes = [int(part) for part in spec[4:].split(",") if part]
        except ValueError:
            raise ConfigError(f"bad MLP spec {spec!r}") from None
        return mlp(sizes, name=spec)
    raise ConfigError(
        f"unknown network {spec!r}; built-ins: "
        f"{sorted(_BUILTIN_NETWORKS)} or mlp:a,b,c"
    )


def _load_config(args: argparse.Namespace) -> SimConfig:
    if args.config:
        config = SimConfig.from_file(args.config)
    else:
        config = SimConfig()
    overrides = {}
    for field_name in ("crossbar_size", "cmos_tech", "interconnect_tech",
                       "parallelism_degree", "weight_bits", "signal_bits"):
        value = getattr(args, field_name, None)
        if value is not None:
            overrides[field_name] = value
    return config.replace(**overrides) if overrides else config


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", help="Table-I-style configuration file")
    parser.add_argument("--crossbar-size", dest="crossbar_size", type=int)
    parser.add_argument("--cmos-tech", dest="cmos_tech", type=int)
    parser.add_argument(
        "--interconnect-tech", dest="interconnect_tech", type=int
    )
    parser.add_argument(
        "--parallelism-degree", dest="parallelism_degree", type=int
    )
    parser.add_argument("--weight-bits", dest="weight_bits", type=int)
    parser.add_argument("--signal-bits", dest="signal_bits", type=int)


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = _load_config(args)
    network = parse_network(args.network)
    accelerator = Accelerator(config, network)
    summary = accelerator.summary()

    print(f"network: {network.name} ({network.depth} banks)")
    print(format_table(
        ["metric", "value"],
        [
            ["area (mm^2)", f"{summary.area / MM2:.4f}"],
            ["energy / sample (uJ)",
             f"{summary.energy_per_sample / UJ:.4f}"],
            ["sample latency (us)", f"{summary.sample_latency / US:.4f}"],
            ["compute latency (us)", f"{summary.compute_latency / US:.4f}"],
            ["pipeline cycle (us)", f"{summary.pipeline_cycle / US:.4f}"],
            ["power (W)", f"{summary.power:.4f}"],
            ["worst error rate", f"{summary.worst_error_rate:.2%}"],
            ["relative accuracy", f"{summary.relative_accuracy:.2%}"],
            ["units", accelerator.total_units],
            ["crossbars", accelerator.total_crossbars],
        ],
    ))
    if args.report:
        print()
        print(accelerator.report().render(max_depth=args.report_depth))
    if args.breakdown:
        print()
        print(accelerator_breakdown(accelerator).render())
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    config = _load_config(args)
    network = parse_network(args.network)
    space = DesignSpace(
        crossbar_sizes=tuple(args.sizes),
        parallelism_degrees=tuple(args.degrees),
        interconnect_nodes=tuple(args.wires),
    )
    points = explore(
        config, network, space, max_error_rate=args.max_error
    )
    print(
        f"{len(space)} designs explored, {len(points)} feasible"
        + (f" (error <= {args.max_error:.0%})" if args.max_error else "")
    )
    if not points:
        print("no feasible design; relax --max-error", file=sys.stderr)
        return 1
    rows = []
    for metric, point in optimal_table(points).items():
        s = point.summary
        rows.append([
            metric,
            f"{s.area / MM2:.3f}",
            f"{s.energy_per_sample / UJ:.3f}",
            f"{s.compute_latency / US:.4f}",
            f"{s.worst_error_rate:.2%}",
            point.crossbar_size,
            point.interconnect_tech,
            point.parallelism_degree,
        ])
    print(format_table(
        ["target", "area mm^2", "energy uJ", "latency us", "error",
         "xbar", "wire", "p"],
        rows,
    ))
    return 0


def _cmd_netlist(args: argparse.Namespace) -> int:
    from repro.accuracy.interconnect import DEFAULT_SENSE_RESISTANCE
    from repro.spice.netlist import generate_netlist

    config = _load_config(args)
    device = config.device
    size = config.crossbar_size
    rng = np.random.default_rng(args.seed)
    levels = rng.integers(0, device.levels, size=(size, size))
    resistances = np.vectorize(device.resistance_of_level)(levels)
    inputs = rng.uniform(0, device.read_voltage, size=size)
    segment = config.wire.segment_resistance(
        device.cell_pitch(config.cell_type)
    )
    netlist = generate_netlist(
        resistances, inputs, segment, DEFAULT_SENSE_RESISTANCE,
        title=f"MNSIM {size}x{size} crossbar (seed {args.seed})",
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(netlist)
        print(f"wrote {args.output} ({len(netlist.splitlines())} lines)")
    else:
        print(netlist)
    return 0


def _cmd_suggest(args: argparse.Namespace) -> int:
    from repro.dse.autocomplete import suggest_designs

    config = _load_config(args)
    network = parse_network(args.network)
    suggestions = suggest_designs(
        config, network, free=tuple(args.free),
        max_error_rate=args.max_error,
    )
    rows = []
    for metric, completed in suggestions.items():
        point = completed.point
        rows.append([
            metric,
            completed.config.crossbar_size,
            completed.config.interconnect_tech,
            completed.config.parallelism_degree,
            f"{point.area / MM2:.3f}",
            f"{point.energy / UJ:.3f}",
            f"{point.latency / US:.4f}",
            f"{point.error_rate:.2%}",
        ])
    print(format_table(
        ["target", "xbar", "wire nm", "p", "area mm^2", "energy uJ",
         "latency us", "error"],
        rows,
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MNSIM reproduction: behavior-level simulation of "
        "memristor-based neuromorphic accelerators",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", help="simulate one design point"
    )
    _add_config_flags(simulate)
    simulate.add_argument("network", help="network spec (e.g. mlp:784,256,10)")
    simulate.add_argument(
        "--report", action="store_true", help="print the hierarchical report"
    )
    simulate.add_argument(
        "--report-depth", type=int, default=2, help="report tree depth"
    )
    simulate.add_argument(
        "--breakdown", action="store_true",
        help="print the per-category area/energy breakdown",
    )
    simulate.set_defaults(func=_cmd_simulate)

    explore_cmd = sub.add_parser(
        "explore", help="design-space exploration"
    )
    _add_config_flags(explore_cmd)
    explore_cmd.add_argument("network")
    explore_cmd.add_argument(
        "--sizes", type=int, nargs="+", default=[64, 128, 256, 512],
    )
    explore_cmd.add_argument(
        "--degrees", type=int, nargs="+", default=[1, 16, 256],
    )
    explore_cmd.add_argument(
        "--wires", type=int, nargs="+", default=[18, 28, 45],
    )
    explore_cmd.add_argument("--max-error", type=float, default=None)
    explore_cmd.set_defaults(func=_cmd_explore)

    netlist = sub.add_parser(
        "netlist", help="export a SPICE netlist of one crossbar"
    )
    _add_config_flags(netlist)
    netlist.add_argument("--seed", type=int, default=0)
    netlist.add_argument("--output", "-o", help="output file (default stdout)")
    netlist.set_defaults(func=_cmd_netlist)

    suggest = sub.add_parser(
        "suggest",
        help="auto-complete unspecified design parameters per target",
    )
    _add_config_flags(suggest)
    suggest.add_argument("network")
    suggest.add_argument(
        "--free", nargs="+",
        default=["crossbar_size", "parallelism_degree",
                 "interconnect_tech"],
        help="fields the tool may choose",
    )
    suggest.add_argument("--max-error", type=float, default=None)
    suggest.set_defaults(func=_cmd_suggest)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except MnsimError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
