"""Interconnect (wire) technology models for crossbar segments.

The accuracy model of the paper (Sec. VI.B) reduces each wire segment between
two neighbouring crossbar cells to a lumped resistor ``r``.  The value of
``r`` depends on the interconnect technology node: scaled-down copper wires
get dramatically more resistive both geometrically (smaller cross-section)
and physically (surface/grain-boundary scattering raises the effective
resistivity below ~100 nm).

The model here:

* cross-section = ``width x (aspect_ratio * width)`` with AR = 2,
* effective resistivity ``rho_eff = rho_cu * (1 + scatter_length / width)``,
* segment length = the crossbar cell pitch (shared with the memristor model).

This yields per-segment resistances from ~0.2 ohm (90 nm) to ~9 ohm (18 nm),
reproducing the spread of error-rate curves in Fig. 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TechnologyError
from repro.units import FF, MM, NM

# Bulk copper resistivity (ohm * m).
_RHO_CU = 1.9e-8

# Characteristic length for size-effect scattering in copper (m).  The
# effective resistivity grows as (1 + _SCATTER_LENGTH / width).
_SCATTER_LENGTH = 38 * NM

# Wire aspect ratio (thickness / width) for local interconnect.
_ASPECT_RATIO = 2.0

# Crossbar array wires are pitch-limited by the memristor cell (~150 nm),
# not by the wire node, so they are drawn wider than minimum: this
# multiplier widens the array wire relative to the node feature size.
_ARRAY_WIDTH_MULTIPLIER = 2.0

# Capacitance per unit length of local interconnect (F/m); nearly node
# independent for scaled wires.  Used only for energy bookkeeping -- the
# accuracy model deliberately ignores wire capacitance (Sec. VI.B).
# Spelled in repro.units constants; the value (0.2 fF per mm) is the
# seed calibration and is pinned by the golden tests.
_CAP_PER_LENGTH = 0.2 * FF / MM


@dataclass(frozen=True)
class InterconnectNode:
    """Electrical model of one interconnect technology node.

    Attributes
    ----------
    width:
        Drawn wire width in metres (equals the node feature size).
    resistance_per_length:
        Wire resistance per metre (ohm/m), including size effects.
    capacitance_per_length:
        Wire capacitance per metre (F/m).
    """

    width: float
    resistance_per_length: float
    capacitance_per_length: float

    @property
    def node_nm(self) -> int:
        """Node feature size in nanometres."""
        return int(round(self.width / NM))

    def segment_resistance(self, pitch: float) -> float:
        """Resistance in ohms of one cell-to-cell wire segment.

        ``pitch`` is the crossbar cell pitch in metres (set by the memristor
        cell, not by the wire node).
        """
        return self.resistance_per_length * pitch

    def segment_capacitance(self, pitch: float) -> float:
        """Capacitance in farads of one cell-to-cell wire segment."""
        return self.capacitance_per_length * pitch


def _wire(node_nm: float) -> InterconnectNode:
    width = node_nm * NM * _ARRAY_WIDTH_MULTIPLIER
    thickness = _ASPECT_RATIO * width
    rho_eff = _RHO_CU * (1.0 + _SCATTER_LENGTH / width)
    return InterconnectNode(
        width=node_nm * NM,
        resistance_per_length=rho_eff / (width * thickness),
        capacitance_per_length=_CAP_PER_LENGTH,
    )


# The paper sweeps interconnect nodes {18, 22, 28, 36, 45} nm for the large
# computation-bank case and extends the range to 90 nm for the CNN case.
_INTERCONNECT_NODES = {nm: _wire(nm) for nm in (18, 22, 28, 36, 45, 65, 90)}


def available_interconnect_nodes() -> tuple:
    """Return the supported interconnect nodes in nm, smallest first."""
    return tuple(sorted(_INTERCONNECT_NODES))


def get_interconnect_node(node_nm: int) -> InterconnectNode:
    """Look up the :class:`InterconnectNode` for a node in nm.

    Raises
    ------
    TechnologyError
        If the node is not in the built-in table.
    """
    try:
        return _INTERCONNECT_NODES[int(node_nm)]
    except (KeyError, ValueError, TypeError):
        raise TechnologyError(
            f"unknown interconnect node {node_nm!r} nm; "
            f"available: {available_interconnect_nodes()}"
        ) from None
