"""CMOS technology-node models.

Each :class:`CmosNode` carries the handful of first-order parameters that the
behavior-level circuit models need: supply voltage, FO4 inverter delay, gate
capacitance, leakage, and a standard-cell area factor.  The values follow
classical scaling theory anchored at the 90 nm node (the node used for the
paper's SPICE validation) and are consistent with the published CACTI / PTM
trends; they are *not* sign-off-quality numbers, matching MNSIM's stated goal
of early-stage estimation.

Derived helpers (:meth:`CmosNode.gate_area`, :meth:`CmosNode.gate_energy`,
:meth:`CmosNode.gate_delay`, :meth:`CmosNode.gate_leakage`) express every
digital module in the library as "NAND2-equivalent" gate counts, the same
abstraction CACTI uses for peripheral logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TechnologyError
from repro.units import NM, FF, NS, NW, PS

# Area of one NAND2-equivalent standard cell, in units of F^2.  Standard-cell
# libraries land between 300 and 500 F^2 for a 2-input NAND including routing
# overhead; 400 F^2 is a representative midpoint.
_NAND2_AREA_F2 = 400.0

# Input capacitance of a NAND2-equivalent gate at 90 nm (both inputs), farads.
_NAND2_CAP_90NM = 3.0 * FF

# Activity factor applied to dynamic gate energy: not every gate toggles each
# cycle.  0.5 matches the usual CACTI assumption for datapath logic.
_ACTIVITY_FACTOR = 0.5


@dataclass(frozen=True)
class CmosNode:
    """First-order electrical model of one CMOS technology node.

    Attributes
    ----------
    feature_size:
        Drawn feature size ``F`` in metres.
    vdd:
        Nominal supply voltage in volts.
    fo4_delay:
        Fanout-of-4 inverter delay in seconds; digital module latencies are
        expressed as FO4 multiples.
    nand2_cap:
        Switched capacitance of a NAND2-equivalent gate in farads.
    leakage_per_gate:
        Static leakage power of a NAND2-equivalent gate in watts.
    """

    feature_size: float
    vdd: float
    fo4_delay: float
    nand2_cap: float
    leakage_per_gate: float

    @property
    def node_nm(self) -> int:
        """Feature size in nanometres (for display and lookups)."""
        return int(round(self.feature_size / NM))

    def gate_area(self, num_gates: float) -> float:
        """Area in m^2 of ``num_gates`` NAND2-equivalent gates."""
        return num_gates * _NAND2_AREA_F2 * self.feature_size**2

    def gate_energy(self, num_gates: float) -> float:
        """Dynamic switching energy in joules for one evaluation of
        ``num_gates`` NAND2-equivalent gates (activity factor included)."""
        return num_gates * _ACTIVITY_FACTOR * self.nand2_cap * self.vdd**2

    def gate_delay(self, fo4_depth: float) -> float:
        """Delay in seconds of a logic path ``fo4_depth`` FO4 units deep."""
        return fo4_depth * self.fo4_delay

    def gate_leakage(self, num_gates: float) -> float:
        """Static leakage power in watts of ``num_gates`` gates."""
        return num_gates * self.leakage_per_gate


def _node(nm: float, vdd: float, fo4_ps: float, cap_scale: float,
          leak_nw: float) -> CmosNode:
    """Build a :class:`CmosNode` from display-unit inputs.

    ``cap_scale`` scales the 90 nm NAND2 capacitance (gate cap shrinks
    roughly linearly with feature size); ``leak_nw`` is per-gate leakage in
    nanowatts (leakage *rises* at smaller nodes until high-k/FinFET).
    """
    return CmosNode(
        feature_size=nm * NM,
        vdd=vdd,
        fo4_delay=fo4_ps * PS,
        nand2_cap=_NAND2_CAP_90NM * cap_scale,
        leakage_per_gate=leak_nw * NW,
    )


# Keyed by node in nm.  FO4 ~ 16 ps/um * L_gate trend; Vdd per ITRS.
_CMOS_NODES = {
    130: _node(130, vdd=1.30, fo4_ps=50.0, cap_scale=1.45, leak_nw=2.0),
    90: _node(90, vdd=1.20, fo4_ps=35.0, cap_scale=1.00, leak_nw=5.0),
    65: _node(65, vdd=1.10, fo4_ps=25.0, cap_scale=0.72, leak_nw=8.0),
    45: _node(45, vdd=1.00, fo4_ps=17.0, cap_scale=0.50, leak_nw=12.0),
    32: _node(32, vdd=0.90, fo4_ps=12.0, cap_scale=0.36, leak_nw=15.0),
    28: _node(28, vdd=0.90, fo4_ps=11.0, cap_scale=0.31, leak_nw=14.0),
    22: _node(22, vdd=0.80, fo4_ps=9.0, cap_scale=0.24, leak_nw=10.0),
    18: _node(18, vdd=0.80, fo4_ps=8.0, cap_scale=0.20, leak_nw=9.0),
}


def available_cmos_nodes() -> tuple:
    """Return the supported CMOS nodes in nm, largest first."""
    return tuple(sorted(_CMOS_NODES, reverse=True))


def get_cmos_node(node_nm: int) -> CmosNode:
    """Look up the :class:`CmosNode` for a feature size in nm.

    Raises
    ------
    TechnologyError
        If the node is not in the built-in table.
    """
    try:
        return _CMOS_NODES[int(node_nm)]
    except (KeyError, ValueError, TypeError):
        raise TechnologyError(
            f"unknown CMOS node {node_nm!r} nm; "
            f"available: {available_cmos_nodes()}"
        ) from None


# Reference ADC-match frequency: the paper argues the read circuit should run
# at >= 10 MHz to match memristor read latencies of 10-100 ns, and adopts a
# 50 MHz variable-level sense amplifier as the reference design.
REFERENCE_READ_FREQUENCY = 50e6
REFERENCE_READ_PERIOD = 1.0 / REFERENCE_READ_FREQUENCY

# Crossbar analog settle time: dominated by the RC of the array and the DAC
# slew; consistent with the 10-100 ns memristor read window cited in the
# paper (Sec. V.C).
CROSSBAR_SETTLE_TIME = 20 * NS
