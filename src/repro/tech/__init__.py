"""Technology substrate: CMOS nodes, interconnect wires, memristor devices.

This package plays the role of the external technology inputs the paper
relies on (CACTI, NVSim, and the Predictive Technology Model): first-order,
per-node scaling tables from which every circuit module derives its area,
energy, delay, and leakage.

Public API
----------
:func:`repro.tech.cmos.get_cmos_node`
    Look up a :class:`~repro.tech.cmos.CmosNode` by feature size in nm.
:func:`repro.tech.interconnect.get_interconnect_node`
    Look up an :class:`~repro.tech.interconnect.InterconnectNode`.
:func:`repro.tech.memristor.get_memristor_model`
    Look up a :class:`~repro.tech.memristor.MemristorModel` (RRAM / PCM).
"""

from repro.tech.cmos import CmosNode, get_cmos_node, available_cmos_nodes
from repro.tech.interconnect import (
    InterconnectNode,
    get_interconnect_node,
    available_interconnect_nodes,
)
from repro.tech.memristor import (
    CellType,
    MemristorModel,
    get_memristor_model,
    available_memristor_models,
)

__all__ = [
    "CmosNode",
    "get_cmos_node",
    "available_cmos_nodes",
    "InterconnectNode",
    "get_interconnect_node",
    "available_interconnect_nodes",
    "CellType",
    "MemristorModel",
    "get_memristor_model",
    "available_memristor_models",
]
