"""Memristor device models (RRAM, PCM) and cell-area formulas.

A :class:`MemristorModel` carries the device-level quantities the simulator
needs: the programmable resistance window, the number of distinguishable
resistance levels (device precision), cell geometry (Eq. 7/8 of the paper),
read/write electrical parameters, and a nonlinear V-I characteristic.

Nonlinearity model
------------------
Practical memristor cells follow a sinh-shaped V-I curve (the paper cites
[39]): ``I(V) = (V0 / R) * sinh(V / V0)``, which reduces to Ohm's law for
small ``V``.  The *actual* resistance seen at an operating voltage ``V`` is
therefore::

    R_act(V) = V / I(V) = R * (V / V0) / sinh(V / V0)  <=  R

This is exactly the ``R_act`` vs ``R_idl`` distinction of Sec. VI.A: MNSIM
linearises the array to find the operating point, then re-evaluates each
cell's resistance at that voltage.  Small crossbars bias each cell at a
higher voltage (the column divider delivers less of the input to the output),
so their nonlinearity error grows -- which combines with the interconnect
error (growing with size) to produce the U-shaped error curves of Table V.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import TechnologyError
from repro.units import NM, NS


class CellType(enum.Enum):
    """Crossbar cell style: MOS-accessed (1T1R) or cross-point (0T1R)."""

    ONE_T_ONE_R = "1T1R"
    CROSS_POINT = "0T1R"

    @classmethod
    def from_string(cls, text: str) -> "CellType":
        """Parse ``"1T1R"`` / ``"0T1R"`` (case-insensitive)."""
        normalized = str(text).strip().upper()
        for member in cls:
            if member.value == normalized:
                return member
        raise TechnologyError(
            f"unknown cell type {text!r}; expected one of "
            f"{[m.value for m in cls]}"
        )


@dataclass(frozen=True)
class MemristorModel:
    """Electrical and geometric model of one memristor device.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"RRAM"``.
    r_min, r_max:
        Lowest / highest programmable resistance in ohms
        (``Resistance_Range`` in the paper's Table I).
    precision_bits:
        Device precision: the cell distinguishes ``2**precision_bits``
        conductance levels.
    feature_size:
        Device feature size ``F`` in metres (sets the cell pitch).
    access_wl_ratio:
        ``W/L`` of the access transistor for 1T1R cells (Eq. 7).
    read_voltage:
        Full-scale input (DAC output) voltage in volts.
    write_voltage, write_pulse:
        Programming voltage (V) and pulse width (s) for WRITE cost models.
    nonlinearity_v0:
        Characteristic voltage of the sinh V-I curve; ``inf`` disables the
        nonlinearity (ideal ohmic device).
    sigma:
        Maximum fractional device-to-device resistance variation
        (0 to 0.3 per the paper); the reference value is 0.
    """

    name: str
    r_min: float
    r_max: float
    precision_bits: int
    feature_size: float
    access_wl_ratio: float
    read_voltage: float
    write_voltage: float
    write_pulse: float
    nonlinearity_v0: float
    sigma: float = 0.0

    def __post_init__(self) -> None:
        if not (0 < self.r_min < self.r_max):
            raise TechnologyError(
                f"invalid resistance range [{self.r_min}, {self.r_max}]"
            )
        if self.precision_bits < 1:
            raise TechnologyError("precision_bits must be >= 1")
        if not 0.0 <= self.sigma <= 0.5:
            raise TechnologyError("sigma must lie in [0, 0.5]")

    # ------------------------------------------------------------------
    # Geometry (Eq. 7 / Eq. 8)
    # ------------------------------------------------------------------
    def cell_area(self, cell_type: CellType) -> float:
        """Area of one cell in m^2 per Eq. 7 (1T1R) / Eq. 8 (0T1R)."""
        f2 = self.feature_size**2
        if cell_type is CellType.ONE_T_ONE_R:
            return 3.0 * (self.access_wl_ratio + 1.0) * f2
        return 4.0 * f2

    def cell_pitch(self, cell_type: CellType) -> float:
        """Cell-to-cell pitch in metres (square-cell assumption)."""
        return math.sqrt(self.cell_area(cell_type))

    # ------------------------------------------------------------------
    # Resistance levels
    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        """Number of distinguishable conductance levels."""
        return 2**self.precision_bits

    @property
    def g_min(self) -> float:
        """Lowest programmable conductance (siemens)."""
        return 1.0 / self.r_max

    @property
    def g_max(self) -> float:
        """Highest programmable conductance (siemens)."""
        return 1.0 / self.r_min

    def conductance_of_level(self, level):
        """Conductance of discrete ``level`` (0 .. levels-1), linear in G.

        Level 0 maps to ``g_min`` (weight 0) and the top level to ``g_max``,
        the standard linear weight-to-conductance mapping for crossbar
        matrix-vector multiplication.  Accepts a scalar (returns ``float``)
        or an integer array of any shape (returns an array elementwise) —
        the whole-crossbar form the vectorized solver and samplers use.
        """
        values = np.asarray(level)
        if np.any(values < 0) or np.any(values >= self.levels):
            raise ValueError(f"level {level} out of range 0..{self.levels - 1}")
        span = self.g_max - self.g_min
        out = self.g_min + span * (values / (self.levels - 1))
        return out if values.ndim else float(out)

    def resistance_of_level(self, level):
        """Resistance of discrete ``level`` (0 .. levels-1); array-capable
        like :meth:`conductance_of_level`."""
        return 1.0 / self.conductance_of_level(level)

    @property
    def harmonic_mean_resistance(self) -> float:
        """Harmonic mean of ``r_min`` and ``r_max``.

        MNSIM substitutes this value for every cell when estimating the
        average-case computation power of a crossbar (Sec. V.A).
        """
        return 2.0 * self.r_min * self.r_max / (self.r_min + self.r_max)

    # ------------------------------------------------------------------
    # Nonlinear V-I characteristic
    # ------------------------------------------------------------------
    def current(self, r_state, v_cell):
        """Cell current (A) at programmed resistance ``r_state`` and
        voltage ``v_cell`` following the sinh V-I curve.

        Scalar in, ``float`` out; arrays broadcast elementwise.
        """
        if math.isinf(self.nonlinearity_v0):
            out = np.asarray(v_cell, dtype=float) / r_state
            return out if out.ndim else float(out)
        v0 = self.nonlinearity_v0
        out = (v0 / np.asarray(r_state, dtype=float)) * np.sinh(
            np.asarray(v_cell, dtype=float) / v0
        )
        return out if out.ndim else float(out)

    def _sinh_shrink(self, v_cell) -> np.ndarray:
        """``x / sinh(x)`` at ``x = |v| / V0``, with the ``x -> 0`` limit
        of 1 handled exactly (the factor multiplying ``R_idl``)."""
        x = np.abs(np.asarray(v_cell, dtype=float)) / self.nonlinearity_v0
        sinh = np.sinh(x)
        return np.divide(x, sinh, out=np.ones_like(x), where=sinh != 0.0)

    def actual_resistance(self, r_state, v_cell):
        """``R_act``: effective resistance at operating voltage ``v_cell``.

        Returns ``r_state`` itself at zero bias or for an ideal device.
        Accepts scalars (returns ``float``) or broadcastable arrays —
        the solver evaluates the whole ``(M, N)`` cell-voltage grid in
        one call per nonlinear iteration.
        """
        if math.isinf(self.nonlinearity_v0):
            return r_state
        out = np.asarray(r_state, dtype=float) * self._sinh_shrink(v_cell)
        return out if out.ndim else float(out)

    def nonlinearity_factor(self, v_cell):
        """Fractional resistance drop ``(R_idl - R_act) / R_idl`` at
        ``v_cell``; 0 for an ideal device.  Array-capable."""
        if math.isinf(self.nonlinearity_v0):
            out = np.zeros_like(np.asarray(v_cell, dtype=float))
            return out if out.ndim else 0.0
        out = 1.0 - self._sinh_shrink(v_cell)
        return out if out.ndim else float(out)

    # ------------------------------------------------------------------
    # Write cost
    # ------------------------------------------------------------------
    def write_energy_per_cell(self) -> float:
        """Energy (J) of one programming pulse into an average cell."""
        return (
            self.write_voltage**2 / self.harmonic_mean_resistance
        ) * self.write_pulse

    def with_sigma(self, sigma: float) -> "MemristorModel":
        """Return a copy with a different device-variation ``sigma``."""
        return replace(self, sigma=sigma)

    def with_overrides(self, **kwargs) -> "MemristorModel":
        """Return a copy with any field overridden (config-file hook)."""
        return replace(self, **kwargs)


_MEMRISTOR_MODELS = {
    # Reference RRAM: the 7-bit device of the case studies
    # (Gao/Alibart/Strukov).  The compute-mode resistance window is
    # [100k, 10M] ohm -- analog matrix-vector crossbars need
    # high-resistance states or the array IR drop destroys the result
    # (confirmed by the circuit-level solver in repro.spice); Table I's
    # [500, 500k] memory-mode window remains available through the
    # ``Resistance_Range`` configuration override.
    "RRAM": MemristorModel(
        name="RRAM",
        r_min=100e3,
        r_max=10e6,
        precision_bits=7,
        feature_size=50 * NM,
        access_wl_ratio=2.0,
        read_voltage=1.0,
        write_voltage=2.5,
        write_pulse=50 * NS,
        nonlinearity_v0=2.0,
    ),
    # 4-bit RRAM as configured in the PRIME case study (Sec. VII.E.1).
    "RRAM-4BIT": MemristorModel(
        name="RRAM-4BIT",
        r_min=100e3,
        r_max=10e6,
        precision_bits=4,
        feature_size=50 * NM,
        access_wl_ratio=2.0,
        read_voltage=1.0,
        write_voltage=2.5,
        write_pulse=50 * NS,
        nonlinearity_v0=2.0,
    ),
    # Phase-change memory: higher resistances, slower writes, 4-bit MLC.
    "PCM": MemristorModel(
        name="PCM",
        r_min=200e3,
        r_max=20e6,
        precision_bits=4,
        feature_size=45 * NM,
        access_wl_ratio=4.0,
        read_voltage=0.8,
        write_voltage=3.0,
        write_pulse=150 * NS,
        nonlinearity_v0=2.4,
    ),
    # Table I's default memory-mode window [500, 500k] ohm.  Fine for
    # READ/WRITE studies; the circuit solver shows it is unusable for
    # large analog matrix-vector arrays (see the RRAM note above).
    "RRAM-MEMORY": MemristorModel(
        name="RRAM-MEMORY",
        r_min=500.0,
        r_max=500e3,
        precision_bits=7,
        feature_size=50 * NM,
        access_wl_ratio=2.0,
        read_voltage=1.0,
        write_voltage=2.5,
        write_pulse=50 * NS,
        nonlinearity_v0=2.0,
    ),
    # Ideal ohmic device, useful for isolating interconnect error in tests.
    "IDEAL": MemristorModel(
        name="IDEAL",
        r_min=100e3,
        r_max=10e6,
        precision_bits=7,
        feature_size=50 * NM,
        access_wl_ratio=2.0,
        read_voltage=1.0,
        write_voltage=2.5,
        write_pulse=50 * NS,
        nonlinearity_v0=math.inf,
    ),
}


def available_memristor_models() -> tuple:
    """Return the names of the built-in device models."""
    return tuple(sorted(_MEMRISTOR_MODELS))


def get_memristor_model(name: str) -> MemristorModel:
    """Look up a built-in :class:`MemristorModel` by name.

    Raises
    ------
    TechnologyError
        If the model name is unknown.
    """
    try:
        return _MEMRISTOR_MODELS[str(name).strip().upper()]
    except KeyError:
        raise TechnologyError(
            f"unknown memristor model {name!r}; "
            f"available: {available_memristor_models()}"
        ) from None
