"""Render saved traces as terminal wall-time trees and top-k tables.

The Chrome trace files written by :func:`repro.obs.trace.export_chrome`
embed each span's ``span_id``/``parent_id`` in the event ``args``, so
this module can rebuild the span tree from the file alone — no live
process state needed.  ``repro obs-report trace.json`` is the CLI
wrapper around :func:`render_report`.

The tree view groups worker spans under the chunk span that dispatched
them and prefixes spans from other processes with their pid, so a
parallel sweep reads as::

    dse.explore                                        812.4 ms
      runtime.cache-lookup                               1.2 ms
      runtime.execute                                  790.1 ms
        runtime.chunk                                  401.3 ms
          [pid 4242] runtime.job                        98.0 ms
            [pid 4242] dse.point                        97.6 ms

The top-k table aggregates by span name (count, total, mean, max) and
sorts by total wall time — the "where does the sweep spend its time"
question in one look.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "load_trace",
    "spans_from_trace",
    "build_tree",
    "render_tree",
    "top_spans",
    "render_top_spans",
    "render_report",
    "render_progress_line",
]

#: args keys that carry tree structure / job scoping, not user
#: attributes.
_STRUCTURAL_ARGS = ("span_id", "parent_id", "job")


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Span dicts from a saved Chrome trace (or a raw span-dict list).

    Accepts both the ``{"traceEvents": [...]}`` object form and a bare
    JSON list of events; metadata events and events without a
    ``span_id`` are skipped.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return spans_from_trace(payload)


def spans_from_trace(payload: Any) -> List[Dict[str, Any]]:
    """Span dicts from an in-memory Chrome trace document.

    The same extraction :func:`load_trace` applies to files, reusable
    for trace documents fetched from the service's
    ``/jobs/{id}/trace`` endpoint.
    """
    events = payload.get("traceEvents", payload) if isinstance(
        payload, dict
    ) else payload
    spans: List[Dict[str, Any]] = []
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        span_id = args.get("span_id")
        if span_id is None:
            continue
        attrs = {
            k: v for k, v in args.items() if k not in _STRUCTURAL_ARGS
        }
        spans.append({
            "name": event.get("name", "?"),
            "span_id": span_id,
            "parent_id": args.get("parent_id"),
            "pid": event.get("pid", 0),
            "start": float(event.get("ts", 0.0)) / 1e6,
            "duration": float(event.get("dur", 0.0)) / 1e6,
            "attrs": attrs,
        })
    return spans


# ----------------------------------------------------------------------
# Tree building / rendering
# ----------------------------------------------------------------------
def build_tree(spans: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Root span nodes, each with a ``children`` list, start-ordered.

    Spans whose parent is unknown (dispatcher had tracing off, or the
    parent was pruned) become roots themselves, so partial traces still
    render.
    """
    nodes = {
        record["span_id"]: dict(record, children=[]) for record in spans
    }
    roots: List[Dict[str, Any]] = []
    for record in spans:
        node = nodes[record["span_id"]]
        parent = nodes.get(record.get("parent_id"))
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda child: child["start"])
    roots.sort(key=lambda node: node["start"])
    return roots


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.0f} us"


def _format_attrs(attrs: Dict[str, Any], limit: int = 4) -> str:
    if not attrs:
        return ""
    shown = list(attrs.items())[:limit]
    body = ", ".join(f"{k}={v}" for k, v in shown)
    if len(attrs) > limit:
        body += ", ..."
    return f"  [{body}]"


def render_tree(
    spans: Sequence[Dict[str, Any]],
    *,
    max_depth: Optional[int] = None,
    width: int = 60,
) -> str:
    """The wall-time tree as indented text, one line per span."""
    roots = build_tree(spans)
    if not roots:
        return "(no spans recorded)"
    lines: List[str] = []

    def emit(node: Dict[str, Any], depth: int, parent_pid: Optional[int]):
        pid_tag = (
            f"[pid {node['pid']}] " if node["pid"] != parent_pid else ""
        )
        label = "  " * depth + pid_tag + node["name"]
        label += _format_attrs(node.get("attrs") or {})
        pad = max(1, width - len(label))
        lines.append(
            label + " " * pad + _format_duration(node["duration"])
        )
        if max_depth is not None and depth + 1 > max_depth:
            return
        for child in node["children"]:
            emit(child, depth + 1, node["pid"])

    root_pid = roots[0]["pid"]
    for root in roots:
        emit(root, 0, root_pid if root["pid"] == root_pid else None)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Top-k aggregation
# ----------------------------------------------------------------------
def top_spans(
    spans: Sequence[Dict[str, Any]], k: int = 10
) -> List[Dict[str, Any]]:
    """Per-name aggregates sorted by total wall time, largest first."""
    groups: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        group = groups.setdefault(
            record["name"],
            {"name": record["name"], "count": 0, "total": 0.0, "max": 0.0,
             "pids": set()},
        )
        group["count"] += 1
        group["total"] += record["duration"]
        group["max"] = max(group["max"], record["duration"])
        group["pids"].add(record["pid"])
    ranked = sorted(
        groups.values(), key=lambda g: g["total"], reverse=True
    )[:k]
    return [
        {
            "name": g["name"],
            "count": g["count"],
            "total": g["total"],
            "mean": g["total"] / g["count"],
            "max": g["max"],
            "pids": len(g["pids"]),
        }
        for g in ranked
    ]


def render_top_spans(
    spans: Sequence[Dict[str, Any]], k: int = 10
) -> str:
    """The top-k table as aligned text."""
    rows = top_spans(spans, k)
    if not rows:
        return "(no spans recorded)"
    headers = ["span", "count", "total", "mean", "max", "pids"]
    table = [
        [
            row["name"],
            str(row["count"]),
            _format_duration(row["total"]),
            _format_duration(row["mean"]),
            _format_duration(row["max"]),
            str(row["pids"]),
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in table:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*row) for row in table)
    return "\n".join(lines)


def _format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    seconds = max(0.0, float(seconds))
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.1f}h"
    if seconds >= 60.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds:.1f}s"


def render_progress_line(doc: Dict[str, Any]) -> str:
    """One live-watch line from a job status or ``progress`` event dict.

    Renders completion, smoothed throughput, remaining-time estimate,
    and the job's peak RSS when a resource snapshot is present — the
    row ``repro jobs watch`` prints per event.
    """
    done = int(doc.get("done") or 0)
    total = int(doc.get("total") or 0)
    percent = (100.0 * done / total) if total else 0.0
    parts = [f"{done}/{total}", f"{percent:5.1f}%"]
    throughput = doc.get("throughput")
    if throughput is not None:
        parts.append(f"{float(throughput):.2f} jobs/s")
    parts.append(f"eta {_format_eta(doc.get('eta_seconds'))}")
    resources = doc.get("resources") or {}
    rss = resources.get("peak_rss_bytes")
    if rss:
        parts.append(f"rss {float(rss) / (1 << 20):.0f} MiB")
    state = doc.get("state")
    if state:
        parts.append(str(state))
    return "  ".join(parts)


def render_report(
    source: Any,
    *,
    k: int = 10,
    max_depth: Optional[int] = None,
) -> str:
    """Full obs-report text: span tree plus the top-k table.

    ``source`` is a trace-file path or an iterable of span dicts.
    """
    if isinstance(source, (str, bytes)) or hasattr(source, "__fspath__"):
        spans = load_trace(str(source))
    else:
        spans = list(source)
    worker_pids = sorted({s["pid"] for s in spans})
    header = (
        f"{len(spans)} spans across {len(worker_pids)} process(es): "
        + ", ".join(str(pid) for pid in worker_pids)
    )
    return "\n".join([
        header,
        "",
        render_tree(spans, max_depth=max_depth),
        "",
        f"top {k} span families by total wall time:",
        render_top_spans(spans, k),
    ])
