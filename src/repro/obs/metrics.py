"""Process-global metrics registry: counters, gauges, histograms.

The vocabulary is deliberately the Prometheus one — a *counter* only
goes up, a *gauge* is set to the latest value, a *histogram* buckets
observations and keeps a running sum/count — and the text exposition
(:meth:`MetricsRegistry.to_prometheus`) follows the Prometheus format
so the output can be scraped, diffed, or round-tripped through
:func:`parse_prometheus` in tests.  :meth:`MetricsRegistry.to_dict`
gives the same data as JSON-safe nested dicts.

Every metric supports optional labels, passed as keyword arguments to
the recording calls::

    from repro.obs import metrics
    metrics.counter("repro_solver_factorizations_total").inc()
    metrics.counter("repro_runtime_events_total").inc(3, event="cache_hits")
    metrics.histogram("repro_cache_lookup_seconds").observe(0.0021)

The module-level helpers operate on the shared :data:`REGISTRY`;
instantiate :class:`MetricsRegistry` directly for isolated registries
(tests do).  All operations are thread-safe and cheap (one lock, two
dict lookups), but hot-path callers still gate on
:func:`repro.obs.trace.enabled` so a disabled run pays nothing.

:class:`repro.runtime.metrics.RunMetrics` is a thin per-run facade over
this registry: it keeps its historical per-run dict snapshot (the
``runtime-stats`` contract) and mirrors every stage/counter into the
global registry whenever observability is enabled.

**Job scoping.**  A registry created with ``job_scoped=True`` (the
global :data:`REGISTRY` is) injects a ``job=<id>`` label into every
recorded sample while a :class:`repro.obs.trace.JobContext` is active.
That is the *only* sanctioned way to get per-job labels — callers must
never pass ``job=`` explicitly (enforced by a grep-level check in
``tests/test_analysis_rules.py``) — so attribution follows the dynamic
job scope, including into worker processes.  After a job's results are
persisted, :meth:`MetricsRegistry.rollup_job` folds its label sets back
into the base series (counters and histograms merge additively; gauges
are evicted), keeping global scrape cardinality bounded by the number
of *live* jobs, not the number ever run.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "parse_prometheus",
]

#: Default histogram bucket upper bounds (seconds-flavoured, exponential).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelSet = Tuple[Tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _strip_job(key: LabelSet, job_id: str) -> LabelSet:
    """``key`` without its ``("job", job_id)`` pair."""
    return tuple(pair for pair in key if pair != ("job", job_id))


def _has_job(key: LabelSet, job_id: str) -> bool:
    return ("job", job_id) in key


def _escape_label_value(value: str) -> str:
    """Escape per the 0.0.4 exposition spec: ``\\``, ``"``, newline."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _escape_help(text: str) -> str:
    """HELP text escapes only ``\\`` and newline (spec 0.0.4)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_labels(labelset: LabelSet) -> str:
    if not labelset:
        return ""
    inner = ",".join(
        '%s="%s"' % (k, _escape_label_value(v)) for k, v in labelset
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Common base: a named family of labelled samples."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        #: Set by a ``job_scoped`` registry at registration; standalone
        #: instances (e.g. the ETA tracker's private histogram) never
        #: inject.
        self._job_scoped = False

    def _record_key(self, labels: Dict[str, Any]) -> LabelSet:
        """The label set a *recording* call lands on.

        Job-scoped metrics add ``job=<id>`` while a
        :class:`repro.obs.trace.JobContext` is active; read paths
        (``value``/``snapshot``/``quantile``) address label sets
        verbatim.
        """
        if self._job_scoped and "job" not in labels:
            from repro.obs import trace as _trace

            job = _trace.current_job()
            if job is not None:
                labels = dict(labels, job=job)
        return _labelset(labels)

    # Subclasses provide: exposition() -> list of exposition lines,
    # to_dict() -> JSON-safe payload, _label_keys(), filter_job(),
    # rollup_job().


class Counter(_Metric):
    """Monotonically increasing count, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: Dict[LabelSet, float] = {}

    def inc(self, amount: Union[int, float] = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        key = self._record_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_labelset(labels), 0)

    def total(self, **labels: Any) -> float:
        """Sum over every sample whose labels *include* ``labels``.

        ``total()`` is the family grand total; ``total(event="x")``
        sums the ``event="x"`` series across whatever other labels
        (e.g. an injected ``job``) the samples carry.
        """
        want = set(_labelset(labels))
        with self._lock:
            return sum(
                v for k, v in self._values.items() if want <= set(k)
            )

    def _label_keys(self) -> List[LabelSet]:
        with self._lock:
            return list(self._values)

    def filter_job(self, job_id: str) -> Optional["Counter"]:
        with self._lock:
            values = {
                k: v for k, v in self._values.items() if _has_job(k, job_id)
            }
        if not values:
            return None
        out = Counter(self.name, self.help)
        out._values = values
        return out

    def rollup_job(self, job_id: str) -> int:
        """Fold ``job_id``'s series into the base series additively."""
        with self._lock:
            doomed = [k for k in self._values if _has_job(k, job_id)]
            for key in doomed:
                base = _strip_job(key, job_id)
                self._values[base] = (
                    self._values.get(base, 0) + self._values.pop(key)
                )
        return len(doomed)

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            values = dict(self._values)
        return {
            "type": self.kind,
            "help": self.help,
            "values": {
                _format_labels(k) or "": v for k, v in values.items()
            },
        }

    def exposition(self) -> List[str]:
        with self._lock:
            values = sorted(self._values.items())
        return [
            f"{self.name}{_format_labels(k)} {_format_value(v)}"
            for k, v in values
        ]


class Gauge(_Metric):
    """Last-written value, optionally per label set."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: Dict[LabelSet, float] = {}

    def set(self, value: Union[int, float], **labels: Any) -> None:
        with self._lock:
            self._values[self._record_key(labels)] = float(value)

    def add(self, amount: Union[int, float], **labels: Any) -> None:
        key = self._record_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_labelset(labels), 0.0)

    def _label_keys(self) -> List[LabelSet]:
        with self._lock:
            return list(self._values)

    def filter_job(self, job_id: str) -> Optional["Gauge"]:
        with self._lock:
            values = {
                k: v for k, v in self._values.items() if _has_job(k, job_id)
            }
        if not values:
            return None
        out = Gauge(self.name, self.help)
        out._values = values
        return out

    def rollup_job(self, job_id: str) -> int:
        """Evict ``job_id``'s series (gauges are not additive)."""
        with self._lock:
            doomed = [k for k in self._values if _has_job(k, job_id)]
            for key in doomed:
                del self._values[key]
        return len(doomed)

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            values = dict(self._values)
        return {
            "type": self.kind,
            "help": self.help,
            "values": {
                _format_labels(k) or "": v for k, v in values.items()
            },
        }

    def exposition(self) -> List[str]:
        with self._lock:
            values = sorted(self._values.items())
        return [
            f"{self.name}{_format_labels(k)} {_format_value(v)}"
            for k, v in values
        ]


class _HistogramState:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * num_buckets  # cumulative at export
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Bucketed observations with running sum and count.

    Buckets are upper bounds (``le``); the implicit ``+Inf`` bucket is
    always present.  Bucket counts are stored per-bucket and summed
    cumulatively at export, per the Prometheus convention.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.bounds = bounds
        self._states: Dict[LabelSet, _HistogramState] = {}

    def observe(self, value: Union[int, float], **labels: Any) -> None:
        value = float(value)
        key = self._record_key(labels)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _HistogramState(
                    len(self.bounds) + 1
                )
            index = len(self.bounds)  # +Inf by default
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            state.bucket_counts[index] += 1
            state.total += value
            state.count += 1

    def snapshot(self, **labels: Any) -> Dict[str, Any]:
        """``{"count", "sum", "mean"}`` for one label set (zeros if unseen)."""
        with self._lock:
            state = self._states.get(_labelset(labels))
            if state is None:
                return {"count": 0, "sum": 0.0, "mean": 0.0}
            mean = state.total / state.count if state.count else 0.0
            return {
                "count": state.count, "sum": state.total, "mean": mean,
            }

    def quantile(self, q: float, **labels: Any) -> Optional[float]:
        """Estimated ``q``-quantile for one label set, or None if empty.

        Linear interpolation inside the bucket holding the rank (the
        usual Prometheus ``histogram_quantile`` estimate); observations
        in the implicit ``+Inf`` bucket clamp to the largest finite
        bound, so callers get a finite — if pessimistically low —
        answer rather than infinity.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            state = self._states.get(_labelset(labels))
            if state is None or state.count == 0:
                return None
            rank = q * state.count
            running = 0
            for i, count in enumerate(state.bucket_counts):
                if count and running + count >= rank:
                    if i >= len(self.bounds):  # +Inf bucket: clamp
                        return self.bounds[-1]
                    hi = self.bounds[i]
                    lo = self.bounds[i - 1] if i else min(0.0, hi)
                    return lo + (hi - lo) * ((rank - running) / count)
                running += count
            return self.bounds[-1]

    def _label_keys(self) -> List[LabelSet]:
        with self._lock:
            return list(self._states)

    def filter_job(self, job_id: str) -> Optional["Histogram"]:
        with self._lock:
            states: Dict[LabelSet, _HistogramState] = {}
            for key, state in self._states.items():
                if not _has_job(key, job_id):
                    continue
                copy = _HistogramState(len(self.bounds) + 1)
                copy.bucket_counts = list(state.bucket_counts)
                copy.total = state.total
                copy.count = state.count
                states[key] = copy
        if not states:
            return None
        out = Histogram(self.name, self.help, buckets=self.bounds)
        out._states = states
        return out

    def rollup_job(self, job_id: str) -> int:
        """Merge ``job_id``'s series into the base series bucket-wise."""
        with self._lock:
            doomed = [k for k in self._states if _has_job(k, job_id)]
            for key in doomed:
                state = self._states.pop(key)
                base = _strip_job(key, job_id)
                target = self._states.get(base)
                if target is None:
                    target = self._states[base] = _HistogramState(
                        len(self.bounds) + 1
                    )
                for i, count in enumerate(state.bucket_counts):
                    target.bucket_counts[i] += count
                target.total += state.total
                target.count += state.count
        return len(doomed)

    def to_dict(self) -> Dict[str, Any]:
        values = {}
        with self._lock:
            for key, state in self._states.items():
                cumulative = []
                running = 0
                for count in state.bucket_counts:
                    running += count
                    cumulative.append(running)
                values[_format_labels(key) or ""] = {
                    "buckets": dict(
                        zip(
                            [str(b) for b in self.bounds] + ["+Inf"],
                            cumulative,
                        )
                    ),
                    "sum": state.total,
                    "count": state.count,
                }
        return {"type": self.kind, "help": self.help, "values": values}

    def exposition(self) -> List[str]:
        lines: List[str] = []
        with self._lock:
            for key, state in sorted(self._states.items()):
                running = 0
                for bound, count in zip(
                    list(self.bounds) + [math.inf], state.bucket_counts
                ):
                    running += count
                    le = _labelset({"le": _format_value(bound)})
                    lines.append(
                        f"{self.name}_bucket"
                        f"{_format_labels(key + le)} {running}"
                    )
                lines.append(
                    f"{self.name}_sum{_format_labels(key)} "
                    f"{_format_value(state.total)}"
                )
                lines.append(
                    f"{self.name}_count{_format_labels(key)} {state.count}"
                )
        return lines


class MetricsRegistry:
    """A named collection of metrics with JSON / Prometheus export.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers the metric, later calls return the same object (a
    conflicting re-registration — different type, or a histogram with
    different bucket bounds — raises).

    ``job_scoped=True`` makes every registered metric inject a
    ``job=<id>`` label at record time while a
    :class:`repro.obs.trace.JobContext` is active (see module
    docstring); only the global :data:`REGISTRY` opts in.
    """

    def __init__(self, job_scoped: bool = False) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()
        self.job_scoped = job_scoped

    # -- registration --------------------------------------------------
    def _get_or_create(self, cls, name: str, help_text: str,
                       **kwargs: Any) -> _Metric:
        """Register-or-return under the lock.

        A ``buckets=None`` kwarg means "whatever is registered": it
        skips the bounds check against an existing histogram and falls
        back to :data:`DEFAULT_BUCKETS` on first registration.  The
        peek-then-create sequence stays entirely inside the lock so
        concurrent first registrations cannot race.
        """
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                buckets = kwargs.get("buckets")
                if buckets is not None:
                    bounds = sorted(float(b) for b in buckets)
                    if bounds != existing.bounds:
                        raise ValueError(
                            f"histogram {name!r} already registered "
                            f"with buckets {existing.bounds}, not "
                            f"{bounds}"
                        )
                if help_text and not existing.help:
                    existing.help = help_text
                return existing
            if "buckets" in kwargs and kwargs["buckets"] is None:
                kwargs["buckets"] = DEFAULT_BUCKETS
            metric = cls(name, help_text, **kwargs)
            metric._job_scoped = self.job_scoped
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self, name: str, help_text: str = "",
        buckets: Optional[Iterable[float]] = None,
    ) -> Histogram:
        """Get-or-create; ``buckets=None`` means "whatever is
        registered" (:data:`DEFAULT_BUCKETS` on first registration),
        while explicit bounds must match an existing registration."""
        return self._get_or_create(
            Histogram, name, help_text, buckets=buckets
        )

    # -- introspection -------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def reset(self) -> None:
        """Drop every registered metric (tests and fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()

    # -- job label lifecycle -------------------------------------------
    def filter_job(self, job_id: str) -> "MetricsRegistry":
        """A detached registry holding only ``job_id``'s samples.

        Serves ``GET /jobs/{id}/metrics``: the copies keep their
        ``job=`` label and are snapshots — recording into them does not
        touch this registry.
        """
        out = MetricsRegistry()
        with self._lock:
            items = list(self._metrics.items())
        for name, metric in items:
            filtered = metric.filter_job(job_id)
            if filtered is not None:
                out._metrics[name] = filtered
        return out

    def rollup_job(self, job_id: str) -> int:
        """Fold ``job_id``'s label sets back into the base series.

        Counters and histograms merge additively (the global totals a
        scrape sees are unchanged); gauges are evicted.  Returns the
        number of label sets removed.  Called once per job after its
        observability artefacts are persisted on the job record, this
        bounds global scrape cardinality by the number of live jobs.
        """
        with self._lock:
            items = list(self._metrics.values())
        return sum(metric.rollup_job(job_id) for metric in items)

    def job_label_values(self) -> set:
        """Distinct ``job=`` label values present across all samples."""
        with self._lock:
            items = list(self._metrics.values())
        jobs = set()
        for metric in items:
            for key in metric._label_keys():
                for label, value in key:
                    if label == "job":
                        jobs.add(value)
        return jobs

    # -- export --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of every metric, name-sorted."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.to_dict() for name, metric in items}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            items = sorted(self._metrics.items())
        for name, metric in items:
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.exposition())
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-global registry every instrumented module records into.
#: Job-scoped: samples recorded inside a JobContext carry a job label.
REGISTRY = MetricsRegistry(job_scoped=True)


def counter(name: str, help_text: str = "") -> Counter:
    """Get-or-create a counter on the global :data:`REGISTRY`."""
    return REGISTRY.counter(name, help_text)


def gauge(name: str, help_text: str = "") -> Gauge:
    """Get-or-create a gauge on the global :data:`REGISTRY`."""
    return REGISTRY.gauge(name, help_text)


def histogram(
    name: str, help_text: str = "",
    buckets: Optional[Iterable[float]] = None,
) -> Histogram:
    """Get-or-create a histogram on the global :data:`REGISTRY`."""
    return REGISTRY.histogram(name, help_text, buckets=buckets)


# ----------------------------------------------------------------------
# Exposition parsing (round-trip support for tests / tooling)
# ----------------------------------------------------------------------
# The labels group walks label pairs token-wise (quoted strings consume
# escape pairs) so a '}' or '"' *inside* a quoted value cannot end the
# label block early.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[^\"}]|\"(?:[^\"\\]|\\.)*\")*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"'
)


def _unescape_label_value(value: str) -> str:
    """Invert :func:`_escape_label_value` (escape-pair walker)."""
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:  # unknown pair: keep verbatim (spec is lenient here)
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _unescape_help(text: str) -> str:
    """Invert :func:`_escape_help` for parsed HELP lines."""
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt == "\\":
                out.append("\\")
            else:
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse a text exposition back into ``{family: {...}}`` dicts.

    Families map to ``{"type", "help", "samples"}`` where ``samples``
    maps ``(metric_name, labelset)`` tuples to float values.  Histogram
    ``_bucket``/``_sum``/``_count`` samples are grouped under their base
    family name, mirroring how :meth:`MetricsRegistry.to_prometheus`
    writes them — so ``parse_prometheus(reg.to_prometheus())`` is a
    faithful round trip.
    """
    families: Dict[str, Dict[str, Any]] = {}
    current: Optional[str] = None

    def family(name: str) -> Dict[str, Any]:
        return families.setdefault(
            name, {"type": "untyped", "help": "", "samples": {}}
        )

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            family(name)["help"] = _unescape_help(help_text)
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            family(name)["type"] = kind.strip()
            current = name
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        sample_name = match.group("name")
        base = current
        if base is None or not sample_name.startswith(base):
            base = sample_name
            for suffix in ("_bucket", "_sum", "_count"):
                if sample_name.endswith(suffix):
                    base = sample_name[: -len(suffix)]
                    break
        labels = _labelset({
            m.group("key"): _unescape_label_value(m.group("val"))
            for m in _LABEL_RE.finditer(match.group("labels") or "")
        })
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        family(base)["samples"][(sample_name, labels)] = value
    return families
