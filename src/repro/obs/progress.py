"""Live progress tracking: smoothed throughput and remaining time.

:class:`ProgressTracker` turns the job engine's ``progress(done,
total)`` callbacks into an ETA.  Two estimators are blended:

* an **EWMA throughput** (jobs/second) updated on every chunk
  completion, which reacts quickly to the current machine load, and
* the **median per-job latency** from a private
  :class:`~repro.obs.metrics.Histogram` of completed-chunk latencies
  (via :meth:`~repro.obs.metrics.Histogram.quantile`), which is robust
  to one outlier chunk (a cold cache, a straggler worker).

Averaging the two damps both failure modes: pure EWMA over-reacts to a
single fast cache-hit chunk; a pure median lags a genuine slowdown.
When observability is enabled, each chunk's latency is also mirrored
into the global ``repro_runtime_stage_seconds`` stage histogram under
``stage="progress-chunk"`` so per-job scrapes expose the same data the
ETA is computed from.

The clock is injectable (tests drive a fake monotonic clock); nothing
here reads wall-clock time, so the tracker is safe in cache-key scope
even though it never feeds one.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["ProgressTracker"]

#: Weight of the newest rate sample in the EWMA blend.
_EWMA_ALPHA = 0.4

#: Floor on a chunk's measured latency, so a clock with coarse
#: resolution (or two back-to-back callbacks) cannot divide by zero.
_MIN_DT = 1e-9


class ProgressTracker:
    """Accumulate ``progress(done, total)`` callbacks into an ETA.

    ``done`` is clamped monotone (the engine's cache stage may report
    before the dispatch stage re-reports the same count); ``total``
    tracks the latest report so an up-front estimate can be refined.
    """

    def __init__(
        self,
        total: int = 0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self.reset(total)

    def reset(self, total: int = 0) -> None:
        """Discard all accumulated state for a fresh attempt.

        ``update`` clamps ``done`` monotone on purpose (the engine's
        cache stage may re-report a count), which means a *restarted*
        stage reusing a tracker would silently drop every report until
        it overtook the previous attempt — a frozen ETA built from
        stale throughput.  Restarts must call ``reset`` (or build a new
        tracker) so the count, the EWMA and the latency histogram all
        start from zero.
        """
        self.done = 0
        self.total = int(total)
        self._started = self._clock()
        self._last_time = self._started
        self._ewma_rate: Optional[float] = None
        # Private, unregistered, and *not* job-scoped: the tracker runs
        # on the manager thread inside the job's JobContext, and a
        # job-labelled state would hide from the label-less quantile()
        # read below.
        self._latency = obs_metrics.Histogram(
            "progress_chunk_seconds", "per-job completion latency"
        )

    # ------------------------------------------------------------------
    def update(self, done: int, total: int) -> None:
        """Fold one ``progress`` callback into the estimate."""
        if total > 0:
            self.total = int(total)
        done = int(done)
        now = self._clock()
        if done <= self.done:
            return
        delta = done - self.done
        dt = max(now - self._last_time, _MIN_DT)
        per_job = dt / delta
        self._latency.observe(per_job)
        if obs_trace.enabled():
            obs_metrics.histogram(
                "repro_runtime_stage_seconds",
                "wall seconds per runtime stage",
            ).observe(dt, stage="progress-chunk")
        rate = delta / dt
        if self._ewma_rate is None:
            self._ewma_rate = rate
        else:
            self._ewma_rate = (
                _EWMA_ALPHA * rate + (1.0 - _EWMA_ALPHA) * self._ewma_rate
            )
        self.done = done
        self._last_time = now

    # ------------------------------------------------------------------
    @property
    def throughput(self) -> Optional[float]:
        """Smoothed jobs/second, or None before the first completion."""
        return self._ewma_rate

    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to completion, or None if unknowable.

        None until the first completed chunk (no latency signal yet)
        or while ``total`` is unknown; ``0.0`` once ``done == total``.
        """
        if self._ewma_rate is None or self.total <= 0:
            return None
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        per_job_ewma = 1.0 / self._ewma_rate
        per_job_median = self._latency.quantile(0.5)
        if per_job_median is None:
            per_job = per_job_ewma
        else:
            per_job = 0.5 * (per_job_ewma + per_job_median)
        return remaining * per_job

    def elapsed_seconds(self) -> float:
        return self._clock() - self._started

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe summary carried on service ``progress`` events."""
        return {
            "done": self.done,
            "total": self.total,
            "elapsed_seconds": self.elapsed_seconds(),
            "throughput": self._ewma_rate,
            "eta_seconds": self.eta_seconds(),
        }
