"""Observability layer: span tracing, metrics registry, profiling hooks.

Zero-dependency (stdlib-only) instrumentation shared by the whole
simulator — see DESIGN.md S18.  Three parts:

* :mod:`repro.obs.trace` — contextvar-based spans with a process-local
  buffer, cross-process propagation through the job engine's chunk
  payloads, and a Chrome trace-event exporter (Perfetto /
  ``chrome://tracing``, one lane per worker pid);
* :mod:`repro.obs.metrics` — a process-global registry of counters /
  gauges / histograms with JSON and Prometheus text exposition;
  :class:`repro.runtime.metrics.RunMetrics` is a thin per-run facade
  over it;
* :mod:`repro.obs.report` — terminal rendering of saved traces (span
  tree + top-k table) and live job progress, surfaced by
  ``repro obs-report`` / ``repro jobs watch``;
* :mod:`repro.obs.progress` — ETA estimation from ``progress``
  callbacks (EWMA throughput blended with median chunk latency).

Work can be scoped to a job with :class:`repro.obs.trace.JobContext`:
spans and labelled metric samples recorded inside it carry the job id
(propagated to worker processes), which the service layer serves back
per job — see DESIGN.md S23.

Everything is **disabled by default** and the no-op path is a cached
singleton, so instrumented hot paths (the crossbar solver, the job
engine) pay a few hundred nanoseconds per call when off.  Turn it on
with :func:`enable`, the ``REPRO_TRACE=<file>`` environment variable,
or the CLI's global ``--trace FILE`` / ``--metrics FILE`` flags::

    import repro.obs as obs
    obs.enable()
    ... run a sweep ...
    obs.trace.export_chrome("sweep.trace.json")
    print(obs.report.render_report("sweep.trace.json"))
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs import metrics, progress, report, trace
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from repro.obs.progress import ProgressTracker
from repro.obs.trace import JobContext, Span, current_job, span

#: Environment variable: when set to a path, the CLI enables tracing and
#: writes the Chrome trace there on exit.
TRACE_ENV_VAR = "REPRO_TRACE"

#: Environment variable: truthy values also enable debug diagnostics
#: (per-iteration solver residuals and similar high-volume attributes).
DEBUG_ENV_VAR = "REPRO_OBS_DEBUG"

__all__ = [
    "trace",
    "metrics",
    "report",
    "progress",
    "span",
    "Span",
    "JobContext",
    "current_job",
    "ProgressTracker",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus",
    "enable",
    "disable",
    "enabled",
    "TRACE_ENV_VAR",
    "DEBUG_ENV_VAR",
    "trace_path_from_env",
    "debug_from_env",
]


def enable(*, debug: bool = False) -> None:
    """Enable span tracing and hot-path metrics collection."""
    trace.enable(debug=debug)


def disable() -> None:
    """Disable collection (buffers and the registry are left intact)."""
    trace.disable()


def enabled() -> bool:
    """Whether observability is currently collecting."""
    return trace.enabled()


def trace_path_from_env() -> Optional[str]:
    """The ``REPRO_TRACE`` target path, or None when unset/empty."""
    value = os.environ.get(TRACE_ENV_VAR, "").strip()
    return value or None


def debug_from_env() -> bool:
    """Whether ``REPRO_OBS_DEBUG`` asks for debug diagnostics."""
    value = os.environ.get(DEBUG_ENV_VAR, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")
