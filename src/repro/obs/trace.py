"""Contextvar-based span tracing with cross-process propagation.

A *span* is one timed region of work (a solver factorization, a job
chunk, a whole DSE sweep).  Spans nest through a :mod:`contextvars`
variable, so the tree mirrors the dynamic call structure — including
across ``await``-free thread switches — and every finished span lands in
a process-local buffer.

Design constraints (see DESIGN.md S18):

* **Disabled by default, near-zero overhead.**  :func:`span` returns a
  cached no-op singleton when tracing is off; the only cost is one
  global load and a function call.  Hot paths (the crossbar solver, the
  job engine's chunk loop) call it unconditionally.
* **Cross-process propagation.**  The job engine ships
  :func:`current_context` inside each chunk payload; the worker process
  calls :func:`activate` (adopting the parent span id and flags), runs
  the chunk, and returns :func:`collect`'s span dicts alongside the
  results.  The dispatcher then :func:`absorb`'s them, so one buffer
  holds the whole run with worker spans parented under the dispatching
  chunk span.
* **Two exporters.**  :func:`export_chrome` writes Chrome trace-event
  JSON (loadable in Perfetto / ``chrome://tracing``; one lane per
  process pid, span/parent ids preserved in ``args``) and
  :mod:`repro.obs.report` renders the same data as a terminal wall-time
  tree.

Span ids embed the pid, so ids minted in different processes never
collide.  Timestamps are wall-clock (``time.time``) so lanes from
different processes align; durations are measured with
``time.perf_counter`` for resolution.

**Job scoping.**  A :class:`JobContext` tags every span recorded while
it is active (and, via the job-scoped metrics registry, every labelled
metric sample) with a job id.  The id rides the same propagation
payload as the parent span id, so worker processes inherit it through
:func:`activate` — and unlike the enabled/debug flags it is honoured
even while tracing is off, because metric attribution must not depend
on whether spans are being collected.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Union
from contextvars import ContextVar

__all__ = [
    "Span",
    "span",
    "begin",
    "enable",
    "disable",
    "enabled",
    "debug_enabled",
    "clear",
    "spans",
    "collect",
    "absorb",
    "current_context",
    "activate",
    "export_chrome",
    "JobContext",
    "current_job",
    "spans_for_job",
    "take_job_spans",
]

_enabled = False
_debug = False

#: Finished spans of this process (dicts, oldest first).
_buffer: List[Dict[str, Any]] = []
_buffer_lock = threading.Lock()

#: The innermost live span of the current context (None at top level).
_current: ContextVar[Optional["Span"]] = ContextVar(
    "repro_obs_current_span", default=None
)

#: Parent span id adopted from another process via :func:`activate`.
_remote_parent: Optional[str] = None

#: The job id owning work in the current context (None outside a job).
_current_job: ContextVar[Optional[str]] = ContextVar(
    "repro_obs_current_job", default=None
)

#: Job id adopted from another process via :func:`activate`.
_remote_job: Optional[str] = None

_ids = itertools.count(1)


def _next_id() -> str:
    """A span id unique across processes (pid-prefixed counter)."""
    return f"{os.getpid():x}-{next(_ids):x}"


# ----------------------------------------------------------------------
# On/off switch
# ----------------------------------------------------------------------
def enable(*, debug: bool = False) -> None:
    """Turn span collection on (``debug=True`` also records residuals
    and other high-volume diagnostics the instrumented modules gate)."""
    global _enabled, _debug
    _enabled = True
    _debug = debug


def disable() -> None:
    """Turn span collection off; the buffer is kept until :func:`clear`."""
    global _enabled, _debug
    _enabled = False
    _debug = False


def enabled() -> bool:
    """Whether spans are being collected in this process."""
    return _enabled


def debug_enabled() -> bool:
    """Whether high-volume debug diagnostics should be recorded."""
    return _enabled and _debug


# ----------------------------------------------------------------------
# Job scoping
# ----------------------------------------------------------------------
class JobContext:
    """Scope work to a job id; spans and job-scoped metric samples
    recorded inside the ``with`` block are tagged with it.

    Active regardless of the tracing on/off switch: a disabled tracer
    still needs the job id so the metrics registry can label samples.
    Nesting restores the outer job on exit, and the id propagates to
    worker processes through :func:`current_context`/:func:`activate`
    exactly like the parent span id.
    """

    __slots__ = ("job_id", "_token")

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self._token = None

    def __enter__(self) -> "JobContext":
        self._token = _current_job.set(self.job_id)
        return self

    def __exit__(self, *_exc) -> bool:
        if self._token is not None:
            _current_job.reset(self._token)
            self._token = None
        return False


def current_job() -> Optional[str]:
    """The job id owning the current context, or None outside a job."""
    job = _current_job.get()
    return job if job is not None else _remote_job


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class Span:
    """One timed region; use as a context manager or via :func:`begin`.

    Attributes mirror the exported dict: ``name``, ``span_id``,
    ``parent_id``, ``pid``, ``start`` (epoch seconds), ``duration``
    (seconds), ``job`` (owning job id or None) and free-form ``attrs``.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "pid", "start", "duration",
        "attrs", "job", "_t0", "_token",
    )

    def __init__(
        self, name: str, attrs: Optional[Dict[str, Any]] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = attrs or {}
        self.span_id = _next_id()
        if parent_id is None:
            parent = _current.get()
            parent_id = parent.span_id if parent is not None else _remote_parent
        self.parent_id = parent_id
        self.pid = os.getpid()
        self.job = current_job()
        self.start = time.time()
        self.duration = 0.0
        self._t0 = time.perf_counter()
        self._token = None

    # -- context-manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        self._token = _current.set(self)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.finish()
        return False

    # -- manual protocol (async work: chunk dispatch) ------------------
    def finish(self) -> "Span":
        """Stop the clock and commit the span to the buffer."""
        self.duration = time.perf_counter() - self._t0
        with _buffer_lock:
            _buffer.append(self.to_dict())
        return self

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to a live span (chainable)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "job": self.job,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"duration={self.duration * 1e3:.3f}ms)"
        )


class _NoopSpan:
    """Cached do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def finish(self) -> "_NoopSpan":
        return self

    def set(self, **_attrs: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


def span(name: str, **attrs: Any) -> Union[Span, _NoopSpan]:
    """A context-managed span, or the no-op singleton when disabled."""
    if not _enabled:
        return _NOOP
    return Span(name, attrs)


def begin(name: str, **attrs: Any) -> Union[Span, _NoopSpan]:
    """Start a *manual* span (caller must ``finish()`` it).

    Unlike the context-manager form this does **not** make the span the
    current parent — it is meant for asynchronous work (e.g. a chunk
    in flight on a process pool) whose lifetime outlives the frame that
    started it.  The parent is whatever span is current right now.
    """
    if not _enabled:
        return _NOOP
    return Span(name, attrs)


# ----------------------------------------------------------------------
# Buffer access
# ----------------------------------------------------------------------
def clear() -> None:
    """Drop every buffered span."""
    with _buffer_lock:
        _buffer.clear()


def spans() -> List[Dict[str, Any]]:
    """A snapshot copy of the buffered span dicts (oldest first)."""
    with _buffer_lock:
        return list(_buffer)


def collect() -> List[Dict[str, Any]]:
    """Drain the buffer: return the spans and clear it.

    Workers call this after a chunk so each result ships exactly the
    spans that chunk produced (warm pools reuse processes across
    chunks).
    """
    with _buffer_lock:
        out = list(_buffer)
        _buffer.clear()
    return out


def absorb(span_dicts: Iterable[Dict[str, Any]]) -> None:
    """Append spans shipped back from another process to the buffer."""
    with _buffer_lock:
        _buffer.extend(span_dicts)


def spans_for_job(job_id: str) -> List[Dict[str, Any]]:
    """A snapshot of the buffered spans tagged with ``job_id``."""
    with _buffer_lock:
        return [s for s in _buffer if s.get("job") == job_id]


def take_job_spans(job_id: str) -> List[Dict[str, Any]]:
    """Drain ``job_id``'s spans from the buffer, leaving the rest.

    The service layer calls this once per finished job: the job's
    spans move into its record (served by ``GET /jobs/{id}/trace``)
    and stop occupying the shared buffer, so a long-running server's
    trace memory stays bounded by the *live* jobs.
    """
    with _buffer_lock:
        taken = [s for s in _buffer if s.get("job") == job_id]
        if taken:
            _buffer[:] = [s for s in _buffer if s.get("job") != job_id]
    return taken


# ----------------------------------------------------------------------
# Cross-process propagation
# ----------------------------------------------------------------------
def current_context() -> Optional[Dict[str, Any]]:
    """The propagation payload for a child process, or None when off.

    A small picklable dict: the enabled/debug flags, the would-be
    parent span id of work started "here" (the innermost live span),
    and the owning job id so workers keep attributing to the job.
    """
    if not _enabled:
        return None
    parent = _current.get()
    return {
        "enabled": True,
        "debug": _debug,
        "parent": parent.span_id if parent is not None else _remote_parent,
        "job": current_job(),
    }


def activate(context: Optional[Dict[str, Any]]) -> None:
    """Adopt a :func:`current_context` payload in a worker process.

    Enables collection and parents this process's top-level spans under
    the shipped span id.  ``None`` deactivates (spans stop being
    recorded), matching a dispatcher that has tracing off.

    On fork-start platforms a worker inherits the dispatcher's live
    contextvar (whatever span was open at fork time) and a copy of its
    buffer; both would corrupt the merged trace — stale parents and
    duplicated spans — so activation always resets them.
    """
    global _remote_parent, _remote_job, _enabled, _debug
    _current.set(None)
    _current_job.set(None)
    with _buffer_lock:
        _buffer.clear()
    if not context:
        _enabled = False
        _debug = False
        _remote_parent = None
        _remote_job = None
        return
    _enabled = True
    _debug = bool(context.get("debug", False))
    _remote_parent = context.get("parent")
    _remote_job = context.get("job")


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def to_chrome_events(
    span_dicts: Optional[Iterable[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    """Chrome trace-event list for the given (default: buffered) spans.

    Each span becomes one complete ("ph": "X") event with microsecond
    ``ts``/``dur``; the span and parent ids ride along in ``args`` so
    :mod:`repro.obs.report` can rebuild the tree from the saved file.
    One lane per process: ``pid`` is the real pid, and a metadata event
    names the main process vs. workers.
    """
    records = list(span_dicts) if span_dicts is not None else spans()
    events: List[Dict[str, Any]] = []
    pids = []
    for record in records:
        if record["pid"] not in pids:
            pids.append(record["pid"])
    main_pid = os.getpid()
    for pid in pids:
        label = "main" if pid == main_pid else f"worker-{pid}"
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        })
    for record in records:
        args = dict(record.get("attrs") or {})
        args["span_id"] = record["span_id"]
        if record.get("parent_id"):
            args["parent_id"] = record["parent_id"]
        if record.get("job"):
            args["job"] = record["job"]
        events.append({
            "name": record["name"],
            "ph": "X",
            "ts": record["start"] * 1e6,
            "dur": record["duration"] * 1e6,
            "pid": record["pid"],
            "tid": 0,
            "args": args,
        })
    return events


def export_chrome(
    path: Union[str, "os.PathLike[str]"],
    span_dicts: Optional[Iterable[Dict[str, Any]]] = None,
) -> str:
    """Write the Chrome trace-event JSON file; returns the path written."""
    payload = {
        "traceEvents": to_chrome_events(span_dicts),
        "displayTimeUnit": "ms",
    }
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return path
