"""SPICE netlist export."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.spice.netlist import generate_netlist


@pytest.fixture
def small_netlist():
    resistances = np.array([[1e5, 2e5], [3e5, 4e5]])
    inputs = np.array([0.5, 1.0])
    return generate_netlist(resistances, inputs, 0.25, 1e3, title="test")


def test_header_and_trailer(small_netlist):
    lines = small_netlist.splitlines()
    assert lines[0] == "* test"
    assert ".end" in small_netlist
    assert ".op" in small_netlist


def test_one_element_per_component(small_netlist):
    # 2 sources, 2 source wires, 4 cells, 2 wordline + 2 bitline
    # segments, 2 sense resistors.
    assert small_netlist.count("Vin") == 2
    assert small_netlist.count("Rcell") == 4
    assert small_netlist.count("Rwl") == 2
    assert small_netlist.count("Rbl") == 2
    assert small_netlist.count("\nRs") == 2


def test_values_embedded(small_netlist):
    assert "100000" in small_netlist  # 1e5 cell
    assert "DC 0.5" in small_netlist
    assert "1000" in small_netlist  # sense resistor


def test_print_statement_lists_outputs(small_netlist):
    assert "v(bl_1_0)" in small_netlist
    assert "v(bl_1_1)" in small_netlist


def test_component_count_scales():
    resistances = np.full((8, 8), 1e5)
    netlist = generate_netlist(resistances, np.ones(8), 0.25, 1e3)
    assert netlist.count("Rcell") == 64
    # 2MN wire segments minus the last row/column, plus source wires.
    assert netlist.count("Rwl") == 8 * 7
    assert netlist.count("Rbl") == 7 * 8


def test_invalid_arguments_raise():
    with pytest.raises(SolverError):
        generate_netlist(np.ones(3), np.ones(3), 1.0, 1e3)
    with pytest.raises(SolverError):
        generate_netlist(np.ones((2, 2)), np.ones(3), 1.0, 1e3)
    with pytest.raises(SolverError):
        generate_netlist(np.ones((2, 2)), np.ones(2), 0.0, 1e3)
