"""End-to-end HTTP API: submit, stream, fetch, byte-identity with CLI."""

import json
import threading

import pytest

from repro.cli import main
from repro.errors import ValidationError
from repro.obs.metrics import parse_prometheus
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobManager
from repro.service.server import serve

MC_PAYLOAD = {
    "kind": "montecarlo",
    "montecarlo": {"trials": 3, "seed": 1, "size": 8},
}


@pytest.fixture
def service():
    manager = JobManager()
    server = serve("127.0.0.1", 0, manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        "http://127.0.0.1:%d" % server.server_address[1]
    )
    yield client, manager
    server.shutdown()
    server.server_close()
    manager.shutdown()
    thread.join(timeout=5)


def test_healthz(service):
    client, _ = service
    assert client.healthz()


def test_submit_poll_result_and_dedupe(service, tmp_path):
    client, _ = service
    receipt = client.submit(MC_PAYLOAD)
    assert receipt["state"] in ("queued", "running", "done")
    assert receipt["deduplicated"] is False
    job_id = receipt["job_id"]

    status = client.wait(job_id, timeout=60)
    assert status["state"] == "done"
    assert status["done"] == status["total"] == 3

    body = client.result_bytes(job_id)
    doc = json.loads(body.decode("utf-8"))
    assert doc["schema"] == "service-result-v1"
    assert doc["kind"] == "montecarlo"
    assert len(doc["samples"]) == doc["summary"]["samples"]

    # Byte-identity with the CLI: the same parameters through
    # `repro montecarlo --output` must produce the same file.
    out = tmp_path / "cli.json"
    code = main([
        "-q", "montecarlo", "--trials", "3", "--seed", "1",
        "--size", "8", "--no-cache", "-o", str(out),
    ])
    assert code == 0
    assert out.read_bytes() == body

    # Second identical submission: deduplicated, served from the
    # stored record without another engine run.
    again = client.submit(MC_PAYLOAD)
    assert again["deduplicated"] is True
    assert again["job_id"] == job_id
    assert client.result_bytes(job_id) == body


def test_event_stream_reaches_terminal_state(service):
    client, _ = service
    job_id = client.submit(MC_PAYLOAD)["job_id"]
    events = list(client.iter_events(job_id))
    assert events, "stream must deliver at least the state events"
    assert events[-1]["state"] == "done"
    progress = [e for e in events if e["event"] == "progress"]
    assert progress and progress[-1]["done"] == progress[-1]["total"] == 3
    # Resume after a checkpoint: only newer events come back.
    last_seq = events[-1]["seq"]
    tail = list(client.iter_events(job_id, after=last_seq - 1))
    assert [e["seq"] for e in tail] == [last_seq]


def test_malformed_payload_rejected_with_path(service):
    client, manager = service
    with pytest.raises(ValidationError) as excinfo:
        client.submit({"kind": "montecarlo",
                       "montecarlo": {"trials": "many"}})
    err = excinfo.value
    assert err.path == "montecarlo.trials"
    assert err.value == "many"
    assert manager.snapshot() == [], "rejected payloads must not enqueue"

    with pytest.raises(ValidationError) as excinfo:
        client.submit({"kind": "warp-drive"})
    assert excinfo.value.path == "kind"
    assert "montecarlo" in excinfo.value.allowed


def test_unknown_routes_and_jobs(service):
    client, _ = service
    with pytest.raises(ServiceError) as excinfo:
        client.status("deadbeef")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client.result_bytes("deadbeef")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client._json("GET", "/nope")
    assert excinfo.value.status == 404


def test_result_conflict_until_done(service, monkeypatch):
    client, manager = service
    # Park the executor so the job stays queued.
    import repro.service.jobs as jobs_mod
    gate = threading.Event()
    original = jobs_mod.run_payload

    def slow(payload, **kwargs):
        gate.wait(timeout=10)
        return original(payload, **kwargs)

    monkeypatch.setattr(jobs_mod, "run_payload", slow)
    job_id = client.submit(MC_PAYLOAD)["job_id"]
    with pytest.raises(ServiceError) as excinfo:
        client.result_bytes(job_id)
    assert excinfo.value.status == 409
    gate.set()
    assert client.wait(job_id, timeout=60)["state"] == "done"


def test_cancel_endpoint(service, monkeypatch):
    client, _ = service
    import repro.service.jobs as jobs_mod
    gate = threading.Event()
    original = jobs_mod.run_payload

    def slow(payload, **kwargs):
        gate.wait(timeout=10)
        return original(payload, **kwargs)

    monkeypatch.setattr(jobs_mod, "run_payload", slow)
    blocker = client.submit(MC_PAYLOAD)["job_id"]
    queued = client.submit({
        "kind": "montecarlo",
        "montecarlo": {"trials": 3, "seed": 99, "size": 8},
    })["job_id"]
    reply = client.cancel(queued)
    assert reply["state"] == "cancelled"
    gate.set()
    assert client.wait(blocker, timeout=60)["state"] == "done"
    assert client.wait(queued, timeout=5)["state"] == "cancelled"


def test_event_stream_carries_eta_and_resources(service):
    client, _ = service
    job_id = client.submit(MC_PAYLOAD)["job_id"]
    events = list(client.iter_events(job_id))
    progress = [e for e in events if e["event"] == "progress"]
    dones = [e["done"] for e in progress]
    assert dones == sorted(dones), "done must be monotone"
    for event in progress:
        assert "eta_seconds" in event and "throughput" in event
    # Once work has completed, the estimate is a finite number.
    completed = [e for e in progress if e["done"] > 0]
    assert completed
    for event in completed:
        assert event["eta_seconds"] is not None
        assert event["eta_seconds"] < float("inf")
    final = progress[-1]
    assert final["done"] == final["total"] == 3
    assert final["eta_seconds"] == 0.0
    resources = final["resources"]
    assert resources["wall_seconds"] > 0
    assert resources["jobs_executed"] >= 1
    # The final done==total progress precedes the terminal state.
    assert events.index(final) < events.index(events[-1])
    assert events[-1]["event"] == "state"
    assert events[-1]["state"] == "done"


def test_per_job_metrics_endpoint(service):
    client, _ = service
    job_id = client.submit(MC_PAYLOAD)["job_id"]
    client.wait(job_id, timeout=60)
    doc = client.job_metrics(job_id)
    assert doc["job_id"] == job_id
    assert doc["state"] == "done"
    assert doc["families"], "a finished job has metric samples"
    assert doc["resources"]["jobs_executed"] == 3
    assert doc["run"]["counters"]["jobs_executed"] == 3
    text = client.job_metrics_text(job_id)
    families = parse_prometheus(text)
    assert families
    for family in families.values():
        for (_, labels) in family["samples"]:
            assert ("job", job_id) in labels, (
                "every per-job sample must carry the job label"
            )


def test_per_job_trace_endpoint_and_isolation():
    """Two jobs running concurrently must yield disjoint per-job
    traces with zero span leakage between them."""
    manager = JobManager(workers=2)
    server = serve("127.0.0.1", 0, manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        "http://127.0.0.1:%d" % server.server_address[1]
    )
    try:
        first = client.submit(MC_PAYLOAD)["job_id"]
        second = client.submit({
            "kind": "montecarlo",
            "montecarlo": {"trials": 4, "seed": 2, "size": 8},
        })["job_id"]
        client.wait(first, timeout=60)
        client.wait(second, timeout=60)
        traces = {}
        for job_id in (first, second):
            doc = client.job_trace(job_id)
            spans = [
                e for e in doc["traceEvents"] if e.get("ph") == "X"
            ]
            assert spans, "a finished job has a trace"
            names = {e["name"] for e in spans}
            assert "service.job" in names
            for event in spans:
                assert event["args"]["job"] == job_id, (
                    "span leaked across jobs"
                )
            traces[job_id] = {e["args"]["span_id"] for e in spans}
        assert not (traces[first] & traces[second])
    finally:
        server.shutdown()
        server.server_close()
        manager.shutdown()
        thread.join(timeout=5)


def test_global_cardinality_stable_across_jobs(service):
    """Completed jobs roll their label sets back into the base series,
    so the global scrape does not grow with job count."""
    client, _ = service

    def sample_count():
        families = parse_prometheus(client.metrics_text())
        return sum(len(f["samples"]) for f in families.values())

    counts = []
    for seed in (11, 12, 13):
        job_id = client.submit({
            "kind": "montecarlo",
            "montecarlo": {"trials": 3, "seed": seed, "size": 8},
        })["job_id"]
        client.wait(job_id, timeout=60)
        counts.append(sample_count())
    assert counts[0] == counts[1] == counts[2]
    assert 'job="' not in client.metrics_text()


def test_metrics_exposition(service):
    client, _ = service
    job_id = client.submit(MC_PAYLOAD)["job_id"]
    client.wait(job_id, timeout=60)
    text = client.metrics_text()
    families = parse_prometheus(text)
    assert "repro_service_jobs_total" in families
    samples = families["repro_service_jobs_total"]["samples"]
    submitted = [
        value for (name, labels), value in samples.items()
        if ("event", "submitted") in labels
    ]
    assert submitted and submitted[0] >= 1


def test_duplicate_json_keys_rejected_with_path(service):
    """Strict body parsing: a duplicate key is a structured 400.

    ``json.loads`` silently keeps the *last* binding, so a client
    typo like two ``montecarlo`` sections would previously run with
    whichever half survived; the strict parser refuses upfront and
    names the offending key's path.
    """
    import urllib.error
    import urllib.request

    client, manager = service
    body = (
        '{"kind": "montecarlo",'
        ' "montecarlo": {"trials": 2, "seed": 0, "size": 8},'
        ' "montecarlo": {"trials": 9999, "seed": 1, "size": 8}}'
    ).encode("utf-8")
    request = urllib.request.Request(
        client.base_url + "/jobs", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    response = excinfo.value
    assert response.code == 400
    error = json.loads(response.read().decode("utf-8"))["error"]
    assert error["path"] == "montecarlo"
    assert "duplicate" in error["message"]
    assert manager.snapshot() == [], "rejected payloads must not enqueue"
