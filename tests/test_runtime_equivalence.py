"""Engine guarantee: parallel / cached sweeps equal the serial sweep.

The `jobs=N` and `cache=` knobs must be pure go-faster buttons — same
`DesignPoint` list, same order, same float values.  These tests pin the
guarantee on a small-bank grid so they stay fast under `pytest -x`.
"""

import numpy as np
import pytest

from repro.accuracy.montecarlo import run_monte_carlo
from repro.config import SimConfig
from repro.dse.explorer import explore
from repro.dse.space import DesignSpace
from repro.nn.networks import validation_mlp
from repro.runtime.cache import ResultCache
from repro.runtime.metrics import RunMetrics
from repro.tech import get_memristor_model

SMALL_BANK_SPACE = DesignSpace(
    crossbar_sizes=(32, 64, 128),
    parallelism_degrees=(1, 8, 64),
    interconnect_nodes=(28, 45),
)


@pytest.fixture(scope="module")
def base_config():
    return SimConfig(cmos_tech=45, weight_bits=4)


@pytest.fixture(scope="module")
def network():
    return validation_mlp()


@pytest.fixture(scope="module")
def serial_points(base_config, network):
    return explore(base_config, network, SMALL_BANK_SPACE)


class TestExploreEquivalence:
    def test_parallel_equals_serial_exactly(self, base_config, network,
                                            serial_points):
        """Satellite: explore(jobs=4) == serial, same order, same values."""
        parallel = explore(base_config, network, SMALL_BANK_SPACE, jobs=4)
        assert parallel == serial_points

    def test_constraint_applied_identically(self, base_config, network):
        serial = explore(base_config, network, SMALL_BANK_SPACE,
                         max_error_rate=0.25)
        parallel = explore(base_config, network, SMALL_BANK_SPACE,
                           max_error_rate=0.25, jobs=4)
        assert parallel == serial

    def test_cache_round_trip_is_exact(self, base_config, network,
                                       serial_points, tmp_path):
        """Summaries must survive the JSON cache byte-identically."""
        with ResultCache(tmp_path / "cache") as cache:
            cold = explore(base_config, network, SMALL_BANK_SPACE,
                           cache=cache)
            warm_metrics = RunMetrics()
            warm = explore(base_config, network, SMALL_BANK_SPACE,
                           cache=cache, metrics=warm_metrics)
            assert cold == serial_points
            assert warm == serial_points
            assert warm_metrics.counters["cache_hits"] == len(
                list(SMALL_BANK_SPACE.valid_points())
            )

    def test_parallel_plus_cache(self, base_config, network, serial_points,
                                 tmp_path):
        with ResultCache(tmp_path / "cache") as cache:
            first = explore(base_config, network, SMALL_BANK_SPACE,
                            jobs=2, cache=cache)
            second = explore(base_config, network, SMALL_BANK_SPACE,
                             jobs=2, cache=cache)
        assert first == serial_points
        assert second == serial_points


class TestMonteCarloEquivalence:
    def test_parallel_equals_serial_bitwise(self):
        device = get_memristor_model("RRAM")
        serial = run_monte_carlo(device, 8, 0.25, seed=11, trials=6)
        parallel = run_monte_carlo(device, 8, 0.25, seed=11, trials=6,
                                   jobs=3)
        assert np.array_equal(serial.samples, parallel.samples)
