"""Functional simulation: mapping algebra and analog fidelity modes."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import ConfigError, MappingError
from repro.functional import (
    AnalogMode,
    FunctionalAccelerator,
    FunctionalBank,
    FunctionalCrossbar,
    FunctionalUnit,
)
from repro.nn.networks import caffenet, jpeg_autoencoder, mlp
from repro.nn.workloads import random_weights
from repro.tech import get_memristor_model


@pytest.fixture
def device():
    return get_memristor_model("RRAM")


@pytest.fixture
def config():
    return SimConfig(
        crossbar_size=32, cmos_tech=90, interconnect_tech=45,
        weight_bits=8, signal_bits=8,
    )


@pytest.fixture
def autoencoder(config, rng):
    network = jpeg_autoencoder()
    weights = random_weights(network, rng)
    return FunctionalAccelerator(config, network, weights)


class TestFunctionalCrossbar:
    def test_ideal_mvm_is_integer_product(self, device, rng):
        levels = rng.integers(0, device.levels, size=(8, 4))
        xbar = FunctionalCrossbar(levels, device)
        inputs = rng.integers(-128, 128, size=8)
        assert np.array_equal(xbar.ideal_mvm(inputs), inputs @ levels)

    def test_levels_validated(self, device):
        with pytest.raises(MappingError):
            FunctionalCrossbar(np.array([[device.levels]]), device)
        with pytest.raises(MappingError):
            FunctionalCrossbar(np.array([[-1]]), device)
        with pytest.raises(MappingError):
            FunctionalCrossbar(np.zeros(4), device)

    def test_resistances_within_window(self, device, rng):
        levels = rng.integers(0, device.levels, size=(4, 4))
        resist = FunctionalCrossbar(levels, device).resistances()
        assert np.all(resist >= device.r_min - 1e-9)
        assert np.all(resist <= device.r_max + 1e-9)

    def test_solver_errors_zero_for_zero_input(self, device):
        xbar = FunctionalCrossbar(np.full((4, 4), 10), device)
        errors = xbar.solver_relative_errors(
            np.zeros(4), 127, 0.25, 1000.0
        )
        assert np.array_equal(errors, np.zeros(4))

    def test_input_length_checked(self, device):
        xbar = FunctionalCrossbar(np.full((4, 4), 10), device)
        with pytest.raises(MappingError):
            xbar.ideal_mvm(np.zeros(5))


class TestFunctionalUnit:
    def test_signed_unit_subtracts_planes(self, device, rng):
        pos = rng.integers(0, 64, size=(6, 3))
        neg = rng.integers(0, 64, size=(6, 3))
        unit = FunctionalUnit(pos, neg, device)
        inputs = rng.integers(0, 100, size=6)
        expected = inputs @ pos - inputs @ neg
        assert np.array_equal(unit.partial_product(inputs), expected)

    def test_unsigned_unit_single_plane(self, device, rng):
        pos = rng.integers(0, 64, size=(6, 3))
        unit = FunctionalUnit(pos, None, device)
        inputs = rng.integers(0, 100, size=6)
        assert np.array_equal(unit.partial_product(inputs), inputs @ pos)

    def test_plane_shape_mismatch_rejected(self, device):
        with pytest.raises(MappingError):
            FunctionalUnit(np.zeros((4, 4)), np.zeros((4, 3)), device)

    def test_model_mode_requires_rng(self, device):
        unit = FunctionalUnit(np.full((4, 4), 10), None, device)
        with pytest.raises(ConfigError):
            unit.partial_product(
                np.ones(4), mode=AnalogMode.MODEL, epsilon=0.1
            )

    def test_model_mode_stays_in_band(self, device, rng):
        unit = FunctionalUnit(np.full((4, 4), 50), None, device)
        inputs = np.full(4, 10)
        exact = unit.partial_product(inputs)
        eps = 0.1
        for _ in range(20):
            noisy = unit.partial_product(
                inputs, mode=AnalogMode.MODEL, epsilon=eps, rng=rng
            )
            assert np.all(np.abs(noisy - exact) <= np.abs(exact) * eps + 1e-9)


class TestFunctionalBank:
    def test_unit_count_matches_performance_mapping(self, config, rng):
        from repro.arch.mapping import LayerMapping
        from repro.nn.layers import FullyConnectedLayer

        weights = rng.uniform(-0.2, 0.2, size=(40, 70))
        bank = FunctionalBank(weights, config)
        mapping = LayerMapping.for_layer(
            FullyConnectedLayer(70, 40), config
        )
        assert bank.num_units == mapping.units

    def test_effective_weights_close_to_originals(self, config, rng):
        weights = rng.uniform(-0.4, 0.4, size=(16, 16))
        bank = FunctionalBank(weights, config)
        step = 1.0 / 2 ** (config.weight_bits - 1)
        assert np.max(np.abs(bank.effective_weights() - weights)) <= (
            step / 2 + 1e-12
        )

    def test_unknown_activation_rejected(self, config, rng):
        with pytest.raises(ConfigError):
            FunctionalBank(rng.uniform(size=(4, 4)), config,
                           activation="tanh")

    def test_input_shape_checked(self, config, rng):
        bank = FunctionalBank(rng.uniform(size=(4, 8)), config)
        with pytest.raises(MappingError):
            bank.forward_levels(np.zeros(5))

    def test_unsigned_mapping_supported(self, rng):
        config = SimConfig(
            crossbar_size=32, weight_polarity=1, weight_bits=7,
        )
        weights = rng.uniform(0, 0.5, size=(8, 8))
        bank = FunctionalBank(weights, config, activation="none")
        out = bank.forward(rng.uniform(0, 1, size=8))
        assert out.shape == (8,)


class TestEndToEnd:
    def test_ideal_mode_matches_reference_exactly(self, autoencoder, rng):
        """The central algebra check: tiling + polarity + bit slicing +
        shift-add must be *exactly* the fixed-point matrix product."""
        inputs = rng.uniform(-1, 1, size=64)
        functional = autoencoder.forward(inputs)
        reference = autoencoder.reference_forward(inputs)
        for got, expected in zip(functional, reference):
            assert np.array_equal(got, expected)

    def test_ideal_exactness_across_tilings(self, rng):
        """Exactness must hold when the layer spans multiple tiles and
        multiple bit slices."""
        network = mlp([50, 30], name="odd-shapes")
        weights = random_weights(network, rng)
        config = SimConfig(
            crossbar_size=16, memristor_model="RRAM-4BIT", weight_bits=8,
        )
        functional = FunctionalAccelerator(config, network, weights)
        inputs = rng.uniform(-1, 1, size=50)
        assert np.array_equal(
            functional.forward(inputs)[-1],
            functional.reference_forward(inputs)[-1],
        )

    def test_model_mode_error_within_propagated_band(self, autoencoder, rng):
        inputs = rng.uniform(-1, 1, size=64)
        observed = autoencoder.relative_output_error(
            inputs, mode=AnalogMode.MODEL, rng=rng
        )
        # The per-tile band is +-epsilon per layer; after two layers the
        # output deviation cannot exceed the compounded band.
        eps = autoencoder.banks[0].epsilon
        bound = (1 + eps) ** len(autoencoder.banks) - 1
        assert 0 <= observed <= bound + 0.05

    def test_solver_mode_error_within_model_band(self, autoencoder, rng):
        """The physically-measured error must sit inside the worst-case
        band the behavior-level model predicts."""
        inputs = rng.uniform(-1, 1, size=64)
        observed = autoencoder.relative_output_error(
            inputs, mode=AnalogMode.SOLVER
        )
        eps = max(bank.epsilon for bank in autoencoder.banks)
        bound = (1 + eps) ** len(autoencoder.banks) - 1
        assert observed <= bound + 0.05

    def test_conv_networks_rejected(self, config, rng):
        network = caffenet()
        with pytest.raises(ConfigError):
            FunctionalAccelerator(
                config, network,
                [np.zeros(l.weight_shape) for l in network.layers],
            )

    def test_weight_count_checked(self, config):
        with pytest.raises(ConfigError):
            FunctionalAccelerator(config, jpeg_autoencoder(), [])


class TestBatchedForward:
    def test_batch_matches_per_sample(self, autoencoder, rng):
        batch = rng.uniform(-1, 1, size=(6, 64))
        batched = autoencoder.banks[0].forward(batch)
        single = np.stack(
            [autoencoder.banks[0].forward(row) for row in batch]
        )
        assert np.array_equal(batched, single)

    def test_batch_accelerator_forward(self, autoencoder, rng):
        batch = rng.uniform(-1, 1, size=(4, 64))
        outputs = autoencoder.forward(batch)
        assert outputs[-1].shape == (4, 64)

    def test_solver_mode_rejects_batches(self, autoencoder, rng):
        batch = rng.uniform(-1, 1, size=(2, 64))
        with pytest.raises(MappingError):
            autoencoder.banks[0].forward(batch, mode=AnalogMode.SOLVER)
