"""Campaign runner: reproducibility, caching, aggregation, CLI."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.faults.campaign import (
    CampaignSpec,
    CurvePoint,
    _parse_network_spec,
    run_campaign,
)
from repro.runtime.cache import ResultCache
from repro.runtime.metrics import RunMetrics


def _tiny_spec(**overrides):
    base = dict(
        networks=("crossbar",),
        fault_modes=("stuck_mixed",),
        fault_rates=(0.0, 0.1),
        trials=3,
        seed=5,
        size=6,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSpecValidation:
    def test_network_spec_parsing(self):
        assert _parse_network_spec("crossbar") is None
        assert _parse_network_spec("mlp:16,8,4") == (16, 8, 4)
        with pytest.raises(ConfigError):
            _parse_network_spec("mlp:16")
        with pytest.raises(ConfigError):
            _parse_network_spec("mlp:a,b")
        with pytest.raises(ConfigError):
            _parse_network_spec("resnet50")

    def test_line_modes_rejected_for_mlp(self):
        with pytest.raises(ConfigError):
            _tiny_spec(networks=("mlp:8,4",),
                       fault_modes=("line_open",))

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigError):
            _tiny_spec(trials=0)
        with pytest.raises(ConfigError):
            _tiny_spec(fault_rates=())
        with pytest.raises(ConfigError):
            _tiny_spec(fault_modes=("meteor",))
        with pytest.raises(ConfigError):
            _tiny_spec(fault_rates=(-0.1,))
        with pytest.raises(Exception):
            _tiny_spec(device="UNOBTAINIUM")


class TestReproducibility:
    def test_two_serial_runs_byte_identical(self):
        spec = _tiny_spec()
        assert run_campaign(spec).to_json() == run_campaign(spec).to_json()

    def test_parallel_matches_serial(self):
        spec = _tiny_spec(networks=("crossbar", "mlp:12,6,4"),
                          fault_modes=("stuck_mixed", "drift"),
                          fault_rates=(0.0, 0.05))
        serial = run_campaign(spec)
        parallel = run_campaign(spec, jobs=2)
        assert serial.to_json() == parallel.to_json()

    def test_different_seeds_differ(self):
        faulty = dict(fault_rates=(0.2,))
        a = run_campaign(_tiny_spec(seed=1, **faulty))
        b = run_campaign(_tiny_spec(seed=2, **faulty))
        assert a.to_json() != b.to_json()

    def test_json_is_valid_and_schema_stamped(self):
        result = run_campaign(_tiny_spec())
        payload = json.loads(result.to_json())
        assert payload["schema"] == "faults-campaign-v1"
        assert payload["spec"]["seed"] == 5
        assert len(payload["points"]) == 2


class TestCaching:
    def test_rerun_is_full_cache_hit(self, tmp_path):
        spec = _tiny_spec()
        cache = ResultCache(tmp_path)
        first = run_campaign(spec, cache=cache, metrics=RunMetrics())
        metrics = RunMetrics()
        second = run_campaign(spec, cache=cache, metrics=metrics)
        assert first.to_json() == second.to_json()
        counters = metrics.counters
        assert counters["jobs_total"] > 0
        assert counters["cache_hits"] == counters["jobs_total"]
        cache.close()


class TestAggregation:
    def test_zero_rate_point_is_clean(self):
        result = run_campaign(_tiny_spec(fault_rates=(0.0,)))
        (point,) = result.points
        assert point.failures == 0
        assert point.mean_fault_count == 0.0
        assert point.mean_error == pytest.approx(0.0, abs=1e-3)
        assert point.relative_accuracy == pytest.approx(1.0, abs=1e-3)

    def test_error_grows_with_fault_rate(self):
        result = run_campaign(_tiny_spec(
            fault_rates=(0.0, 0.3), trials=6, size=8,
        ))
        clean, faulty = result.points
        assert faulty.mean_fault_count > clean.mean_fault_count
        assert faulty.mean_error > clean.mean_error

    def test_failed_trials_counted_not_raised(self):
        # Aggressive open lines on a small array: some trials go
        # singular; the campaign must absorb them as failures.
        result = run_campaign(CampaignSpec(
            networks=("crossbar",), fault_modes=("line_open",),
            fault_rates=(0.6,), trials=8, seed=3, size=4,
        ))
        (point,) = result.points
        assert point.trials == 8
        assert 0 < point.failures <= 8
        if point.failures == 8:
            assert point.mean_error is None
            assert point.relative_accuracy is None

    def test_ci_fields_consistent(self):
        result = run_campaign(_tiny_spec(fault_rates=(0.1,), trials=5))
        (point,) = result.points
        assert isinstance(point, CurvePoint)
        assert point.std_error >= 0
        assert point.ci95 >= 0
        assert point.ci95 == pytest.approx(
            1.96 * point.std_error / np.sqrt(point.trials - point.failures)
        )


class TestMlpLevel:
    def test_mlp_curve_degrades_with_rate(self):
        result = run_campaign(CampaignSpec(
            networks=("mlp:16,8,4",), fault_modes=("open_cell",),
            fault_rates=(0.0, 0.3), trials=5, seed=8,
        ))
        clean, faulty = result.points
        assert clean.mean_error == pytest.approx(0.0, abs=1e-9)
        assert faulty.mean_error > 0
        assert faulty.failures == 0


class TestCli:
    def test_faults_table_and_output(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "campaign.json"
        args = [
            "faults", "--modes", "stuck_mixed", "--rates", "0", "0.1",
            "--trials", "2", "--seed", "4", "--size", "6",
            "--output", str(out_file),
        ]
        assert main(args) == 0
        table = capsys.readouterr().out
        assert "rel. accuracy" in table
        assert "stuck_mixed" in table
        first = out_file.read_bytes()
        assert main(args) == 0
        assert out_file.read_bytes() == first  # byte-reproducible

    def test_bad_mode_is_config_error_exit(self, capsys):
        from repro.cli import main

        code = main(["faults", "--modes", "gamma_ray", "--trials", "1"])
        assert code != 0


class TestBatchedParity:
    """Batched mask evaluation is byte-identical to the point-wise
    trial loop, including singular (failed) trials."""

    def test_batched_matches_pointwise_serial(self):
        from repro.runtime.pool import RunPolicy
        spec = _tiny_spec(networks=("crossbar", "mlp:12,6,4"),
                          fault_modes=("stuck_mixed", "open_cell"),
                          fault_rates=(0.0, 0.1))
        batched = run_campaign(spec)
        pointwise = run_campaign(
            spec, policy=RunPolicy(batch_within_chunk=False)
        )
        assert batched.to_json() == pointwise.to_json()

    def test_batched_matches_pointwise_parallel(self):
        from repro.runtime.pool import RunPolicy
        spec = _tiny_spec(fault_modes=("stuck_mixed", "drift"),
                          fault_rates=(0.05, 0.1))
        batched = run_campaign(spec, jobs=2)
        pointwise = run_campaign(
            spec, policy=RunPolicy(batch_within_chunk=False)
        )
        assert batched.to_json() == pointwise.to_json()

    def test_singular_trials_batched_identically(self):
        """line_open at high rate makes some systems singular; the
        mark-and-continue batch path must count the same failures."""
        from repro.runtime.pool import RunPolicy
        spec = _tiny_spec(fault_modes=("line_open",),
                          fault_rates=(0.3,), trials=8)
        batched = run_campaign(spec)
        pointwise = run_campaign(
            spec, policy=RunPolicy(batch_within_chunk=False)
        )
        assert batched.to_json() == pointwise.to_json()
        point = batched.points[0]
        assert point.failures > 0  # the scenario actually bites
