"""Cross-module integration tests: the validation flows of Sec. VII.A.

These mirror the paper's own validation methodology: the behavior-level
models are checked against the circuit-level solver (Table II) and
against error-injected reference inference (the JPEG-autoencoder
accuracy check).
"""

import numpy as np
import pytest

from repro.accuracy.interconnect import DEFAULT_SENSE_RESISTANCE
from repro.accuracy.model import AccuracyModel
from repro.arch.accelerator import Accelerator
from repro.config import SimConfig
from repro.nn.inference import MlpInference
from repro.nn.networks import jpeg_autoencoder, validation_mlp
from repro.nn.quantize import weight_to_cell_levels
from repro.spice.solver import CrossbarNetwork, ideal_output_voltages
from repro.tech.memristor import CellType


@pytest.fixture(scope="module")
def validation_config():
    """Table II setup: 90 nm CMOS, 128 crossbars."""
    return SimConfig(
        crossbar_size=128, cmos_tech=90, interconnect_tech=28,
        weight_bits=8, signal_bits=8,
    )


class TestModelVsSolverPower:
    """Table II: MNSIM's average-case power within ~10 % of circuit."""

    def test_crossbar_compute_power_matches_solver(self, validation_config):
        config = validation_config
        device = config.device
        size = config.crossbar_size
        rng = np.random.default_rng(42)

        # Random programmed cells over the full conductance range,
        # random inputs -- the paper's 20x100 random-sample protocol,
        # reduced to keep the test quick.
        segment = config.wire.segment_resistance(
            device.cell_pitch(config.cell_type)
        )
        powers = []
        for _trial in range(3):
            levels = rng.integers(0, device.levels, size=(size, size))
            resistances = np.vectorize(device.resistance_of_level)(levels)
            inputs = rng.uniform(0, device.read_voltage, size=size)
            network = CrossbarNetwork(
                resistances, segment, DEFAULT_SENSE_RESISTANCE, device=device
            )
            powers.append(network.solve(inputs).total_power)
        solver_power = float(np.mean(powers))

        from repro.circuits.crossbar import CrossbarModule

        model_power = CrossbarModule(
            device, config.cell_type, size, size, config.wire
        ).compute_power
        # The average-case substitution (harmonic-mean R, half-scale
        # inputs) should land within a small factor of the sampled
        # circuit-level power.
        assert model_power == pytest.approx(solver_power, rel=0.35)


class TestModelVsInference:
    """The JPEG-autoencoder accuracy validation (Sec. VII.A)."""

    def test_predicted_error_bounds_observed_error(self, rng):
        config = SimConfig(
            crossbar_size=64, cmos_tech=90, interconnect_tech=28,
            weight_bits=8, signal_bits=8,
        )
        network = jpeg_autoencoder()
        model = AccuracyModel(config)
        accelerator = Accelerator(config, network)
        layer_sizes = [b.mapping.typical_active_rows for b in accelerator.banks]
        eps_worst = [
            model.crossbar_epsilon(rows=s, cols=s, case="worst")
            for s in layer_sizes
        ]

        engine = MlpInference.with_random_weights(network, rng)
        inputs = rng.uniform(-1, 1, size=(50, 64))
        observed = engine.relative_output_error(inputs, eps_worst, rng=rng)
        predicted_worst = accelerator.accuracy().worst_error_rate

        # The worst-case model must not underestimate random-injection
        # behaviour by more than the quantization floor, and should stay
        # within the same order of magnitude (paper: model error < 1%).
        assert observed <= predicted_worst + 0.02
        assert abs(observed - predicted_worst) < 0.1


class TestMappedCrossbarComputesMvm:
    """End-to-end: mapped conductances on the solver actually perform
    the matrix-vector multiplication of Eq. 1/2."""

    def test_differential_mapping_recovers_signed_product(self, rng):
        config = SimConfig(crossbar_size=16, weight_bits=8)
        device = config.device
        weights = rng.uniform(-0.9, 0.9, size=(16, 16))
        inputs = rng.uniform(0, 1.0, size=16)

        slices = weight_to_cell_levels(weights, 8, device)
        assert len(slices) == 1
        pos, neg = slices[0]

        def column_outputs(levels):
            resist = np.vectorize(device.resistance_of_level)(levels)
            # Cells map (out, in); crossbar rows are inputs.
            return ideal_output_voltages(
                resist.T, inputs, DEFAULT_SENSE_RESISTANCE
            )

        differential = column_outputs(pos) - column_outputs(neg)
        expected = weights @ inputs
        # The crossbar computes the product up to the (shared) divider
        # gain; correlate instead of matching absolute scale.
        corr = np.corrcoef(differential, expected)[0, 1]
        assert corr > 0.99


class TestFullStack:
    def test_validation_workload_summary_is_sane(self, validation_config):
        accelerator = Accelerator(validation_config, validation_mlp())
        summary = accelerator.summary()
        # Magnitude window for a two-layer 128x128 design at 90 nm:
        # single-digit mm^2, sub-uJ..uJ energy, sub-10 us latency,
        # mW..W power, >90 % relative accuracy.
        assert 0.1e-6 < summary.area < 20e-6
        assert 1e-9 < summary.energy_per_sample < 10e-6
        assert 10e-9 < summary.sample_latency < 10e-6
        assert 1e-3 < summary.power < 10
        assert summary.relative_accuracy > 0.9

    def test_report_totals_match_summary(self, validation_config):
        accelerator = Accelerator(validation_config, validation_mlp())
        report = accelerator.report()
        summary = accelerator.summary()
        assert report.performance.area == pytest.approx(summary.area)
        child_area = sum(c.performance.area for c in report.children)
        assert child_area == pytest.approx(summary.area, rel=1e-9)
