"""Throughput / bottleneck analysis."""

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.throughput import (
    bus_lines_for_balance,
    throughput_report,
)
from repro.config import SimConfig
from repro.nn.networks import caffenet, mlp, validation_mlp


@pytest.fixture
def accelerator():
    config = SimConfig(crossbar_size=128, cmos_tech=45, interconnect_tech=45)
    return Accelerator(config, validation_mlp())


class TestReport:
    def test_stage_per_bank_plus_interfaces(self, accelerator):
        report = throughput_report(accelerator)
        names = {stage.name for stage in report.stages}
        assert "bank[0]" in names and "bank[1]" in names
        assert "input_interface" in names

    def test_bottleneck_is_the_slowest_stage(self, accelerator):
        report = throughput_report(accelerator)
        slowest = min(
            report.stages, key=lambda s: s.samples_per_second
        )
        assert report.bottleneck == slowest
        assert report.samples_per_second == pytest.approx(
            slowest.samples_per_second
        )

    def test_headroom_of_bottleneck_is_one(self, accelerator):
        report = throughput_report(accelerator)
        assert report.bottleneck.headroom(
            report.samples_per_second
        ) == pytest.approx(1.0)
        for stage in report.stages:
            assert stage.headroom(report.samples_per_second) >= 1.0 - 1e-12

    def test_render_marks_bottleneck(self, accelerator):
        text = throughput_report(accelerator).render()
        assert "<-- bottleneck" in text


class TestBottleneckIdentity:
    def test_small_fc_net_is_bus_bound(self, accelerator):
        """Two fast 128x128 banks behind a 128-line bus: the interface
        limits throughput."""
        report = throughput_report(accelerator)
        assert report.is_bus_bound

    def test_conv_network_is_compute_bound(self):
        """A conv bank runs thousands of passes per sample — the banks,
        not the bus, limit CNN throughput."""
        config = SimConfig(crossbar_size=128, cmos_tech=45,
                           interconnect_tech=45)
        report = throughput_report(Accelerator(config, caffenet()))
        assert not report.is_bus_bound
        assert report.bottleneck.name.startswith("bank")

    def test_serial_reads_shift_the_bottleneck(self):
        """Dropping the parallelism degree slows the banks until they
        overtake the bus as the bottleneck."""
        config = SimConfig(crossbar_size=128, cmos_tech=45,
                           interconnect_tech=45, parallelism_degree=1)
        report = throughput_report(Accelerator(config, validation_mlp()))
        assert not report.is_bus_bound


class TestBalancing:
    def test_balanced_lines_remove_bus_bottleneck(self, accelerator):
        in_lines, out_lines = bus_lines_for_balance(accelerator)
        rebalanced = Accelerator(
            accelerator.config.replace(
                interface_number=(in_lines, out_lines)
            ),
            validation_mlp(),
        )
        report = throughput_report(rebalanced)
        assert not report.is_bus_bound

    def test_compute_bound_design_keeps_its_lines(self):
        config = SimConfig(crossbar_size=128, cmos_tech=45,
                           interconnect_tech=45, parallelism_degree=1)
        accelerator = Accelerator(config, validation_mlp())
        assert bus_lines_for_balance(accelerator) == (128, 128)
